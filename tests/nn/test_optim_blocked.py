"""Cache-blocked fused optimizer sweeps: parity and the block-size hook.

PR 9 chunks the fused Adam/SGD/fleet flat-buffer update passes at
``repro.nn.optim._FUSED_BLOCK_ELEMS`` elements so one block of all the
step's arrays stays cache-resident across the ~14 ufunc passes.  Every
pass is elementwise, so blocking is a pure cache-behavior knob: these
tests pin that a blocked sweep is **bit-for-bit** identical to the
unblocked one at any block size, under both engine dtypes, and that the
``set_fused_block_elems`` hook restores cleanly.
"""

import numpy as np
import pytest

from repro.nn.optim import (
    SGD,
    Adam,
    _block_slices,
    set_fused_block_elems,
    clip_grad_norm,
)
from repro.nn.tensor import Tensor, using_dtype


@pytest.fixture
def restore_block_size():
    previous = set_fused_block_elems(0)
    set_fused_block_elems(previous)
    yield
    set_fused_block_elems(previous)


def _run_steps(opt_cls, kwargs, dtype, block_elems, steps=5):
    """Fused training trajectory at a given block size; returns final data."""
    previous = set_fused_block_elems(block_elems)
    try:
        with using_dtype(dtype):
            rng = np.random.default_rng(17)
            # Two large flats (several blocks at size 1000) + odd sizes
            # that leave a ragged tail block + small unblocked tensors.
            shapes = [(5000,), (3001,), (64, 33), (7,)]
            params = [Tensor(rng.normal(size=s), requires_grad=True) for s in shapes]
            optimizer = opt_cls(params, fused=True, **kwargs)
            grad_rng = np.random.default_rng(23)
            for _ in range(steps):
                for p in params:
                    p.grad = grad_rng.normal(size=p.data.shape).astype(p.data.dtype)
                clip_grad_norm(params, 5.0, fused=True)
                optimizer.step()
            return [p.data.copy() for p in params]
    finally:
        set_fused_block_elems(previous)


class TestBlockedParity:
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    @pytest.mark.parametrize(
        "opt_cls, kwargs",
        [
            (Adam, dict(lr=1e-2)),
            (Adam, dict(lr=3e-3, weight_decay=0.1)),
            (SGD, dict(lr=1e-2, momentum=0.9)),
            (SGD, dict(lr=1e-2, momentum=0.9, weight_decay=0.05)),
        ],
    )
    def test_bit_for_bit_vs_unblocked(self, opt_cls, kwargs, dtype, restore_block_size):
        unblocked = _run_steps(opt_cls, kwargs, dtype, block_elems=0)
        for block in (512, 1000, 4096):
            blocked = _run_steps(opt_cls, kwargs, dtype, block_elems=block)
            for a, b in zip(unblocked, blocked):
                np.testing.assert_array_equal(a, b)

    def test_block_smaller_than_every_tensor(self, restore_block_size):
        # Degenerate block size: every 1-D flat splits into many tiny
        # chunks; results must still be identical.
        unblocked = _run_steps(Adam, dict(lr=1e-2), "float64", block_elems=0, steps=2)
        blocked = _run_steps(Adam, dict(lr=1e-2), "float64", block_elems=3, steps=2)
        for a, b in zip(unblocked, blocked):
            np.testing.assert_array_equal(a, b)


class TestBlockSlices:
    def test_disabled_yields_identity(self, restore_block_size):
        set_fused_block_elems(0)
        assert list(_block_slices(10**6)) == [slice(None)]

    def test_small_buffer_yields_identity(self, restore_block_size):
        set_fused_block_elems(100)
        assert list(_block_slices(100)) == [slice(None)]
        assert list(_block_slices(7)) == [slice(None)]

    def test_chunks_cover_exactly_once(self, restore_block_size):
        set_fused_block_elems(100)
        slices = list(_block_slices(250))
        assert slices == [slice(0, 100), slice(100, 200), slice(200, 250)]
        marks = np.zeros(250, dtype=int)
        for sl in slices:
            marks[sl] += 1
        assert (marks == 1).all()

    def test_hook_returns_previous_value(self):
        first = set_fused_block_elems(123)
        assert set_fused_block_elems(first) == 123
