"""Tests for the ENAS-style header search (Phase 2-1)."""

import numpy as np
import pytest

from repro.core.nas import HeaderSearch, NASConfig, SharedOpPool
from repro.data import make_cifar100_like
from repro.models import ViTConfig, VisionTransformer
from repro.models.blocks import BlockSpec, HeaderSpec, num_operations
from repro.train import TrainConfig, train_model

FAST = NASConfig(
    num_blocks=2,
    search_epochs=1,
    children_per_epoch=2,
    shared_steps_per_child=1,
    controller_updates_per_epoch=2,
    derive_samples=2,
    batch_size=12,
    train_backbone=False,
    seed=0,
)


@pytest.fixture(scope="module")
def setup():
    gen = make_cifar100_like(num_classes=5, image_size=8)
    data = gen.generate(samples_per_class=16, seed=1)
    cfg = ViTConfig(image_size=8, patch_size=4, embed_dim=16, depth=3,
                    num_heads=4, num_classes=5)
    model = VisionTransformer(cfg, seed=0)
    train_model(model, data, TrainConfig(epochs=2, seed=0))
    return model, data


class TestSharedOpPool:
    def test_same_key_same_instance(self):
        pool = SharedOpPool(16, seed=0)
        a = pool.factory(0, 0, 1)
        b = pool.factory(0, 0, 1)
        assert a is b

    def test_different_keys_different_instances(self):
        pool = SharedOpPool(16, seed=0)
        assert pool.factory(0, 0, 1) is not pool.factory(0, 1, 1)
        assert pool.factory(0, 0, 1) is not pool.factory(1, 0, 1)

    def test_parameters_deduplicated(self):
        pool = SharedOpPool(16, seed=0)
        pool.factory(0, 0, 1)
        pool.factory(0, 0, 1)
        params = pool.parameters()
        assert len({id(p) for p in params}) == len(params)


class TestHeaderSearch:
    def test_search_returns_valid_spec(self, setup):
        model, data = setup
        search = HeaderSearch(model, 5, FAST)
        result = search.search(data)
        result.spec.validate(num_operations())
        assert 0.0 <= result.best_reward <= 1.0
        assert len(result.reward_history) == FAST.search_epochs

    def test_children_share_weights(self, setup):
        model, _data = setup
        search = HeaderSearch(model, 5, FAST)
        spec = HeaderSpec(blocks=(BlockSpec(0, 1, 1, 1), BlockSpec(1, 0, 2, 2)))
        a = search.build_child(spec)
        b = search.build_child(spec)
        assert a.classifier is b.classifier
        assert a.modules_list[0].blocks[0].op1 is b.modules_list[0].blocks[0].op1

    def test_evaluate_returns_accuracy(self, setup):
        model, data = setup
        search = HeaderSearch(model, 5, FAST)
        spec = HeaderSpec(blocks=(BlockSpec(0, 1, 3, 3), BlockSpec(2, 0, 3, 3)))
        acc = search.evaluate(spec, data)
        assert 0.0 <= acc <= 1.0

    def test_frozen_backbone_caches_features(self, setup):
        model, data = setup
        search = HeaderSearch(model, 5, FAST)
        spec = HeaderSpec(blocks=(BlockSpec(0, 1, 3, 3), BlockSpec(2, 0, 3, 3)))
        search.evaluate(spec, data)
        assert search._feature_cache
        first = len(search._feature_cache)
        search.evaluate(spec, data)
        assert len(search._feature_cache) == first  # hit, not re-insert

    def test_train_backbone_mode_does_not_cache(self, setup):
        model, data = setup
        config = NASConfig(**{**FAST.__dict__, "train_backbone": True})
        search = HeaderSearch(model, 5, config)
        spec = HeaderSpec(blocks=(BlockSpec(0, 1, 3, 3), BlockSpec(2, 0, 3, 3)))
        search.evaluate(spec, data)
        assert not search._feature_cache

    def test_materialize_header_copies_pool_weights(self, setup):
        model, data = setup
        search = HeaderSearch(model, 5, FAST)
        result = search.search(data)
        header = search.materialize_header(result.spec)
        # Standalone: not sharing modules with the pool.
        assert header.classifier is not search.classifier
        # But weights equal where positions overlap.
        np.testing.assert_allclose(
            header.classifier.state_dict()["layer0.weight"],
            search.classifier.state_dict()["layer0.weight"],
        )

    def test_search_trains_shared_weights(self, setup):
        """Shared-parameter training must actually move the pool weights."""
        model, data = setup
        search = HeaderSearch(model, 5, FAST)
        before = search.classifier.state_dict()["layer0.weight"].copy()
        search.search(data)
        after = search.classifier.state_dict()["layer0.weight"]
        assert not np.allclose(before, after)

    def test_search_improves_over_random_header(self, setup):
        """The searched header (after shared training) must beat an
        untrained random header on validation accuracy."""
        model, data = setup
        config = NASConfig(
            num_blocks=2,
            search_epochs=2,
            children_per_epoch=3,
            shared_steps_per_child=3,
            controller_updates_per_epoch=3,
            derive_samples=4,
            batch_size=16,
            train_backbone=False,
            seed=1,
        )
        search = HeaderSearch(model, 5, config)
        result = search.search(data)
        # An untrained pool gives chance-level accuracy (~1/5).
        fresh = HeaderSearch(model, 5, FAST)
        spec = result.spec
        untrained = fresh.evaluate(spec, data)
        assert result.best_reward >= untrained
