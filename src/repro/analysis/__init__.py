"""Correctness tooling: static invariant linting + runtime lock-order watch.

The engine's determinism and concurrency contracts — bit-for-bit
replay, thread/process parity, fork safety — are machine-checked here
instead of documented and hoped for:

* :mod:`repro.analysis.lint` (``python -m repro.analysis.lint``,
  ``tools/reprolint``) — AST rules over the tree; see ``ANALYSIS.md``
  for the catalogue and suppression syntax.
* :mod:`repro.analysis.registry` — :func:`register_lock`, the single
  source of truth for engine locks (fork re-init derives from it) and
  the :func:`hotpath` marker for allocation-free fused kernels.
* :mod:`repro.analysis.lockwatch` — opt-in runtime lock-order/deadlock
  detector over registered locks (``REPRO_LOCKWATCH=1`` arms it on the
  tier-1 concurrency modules).
"""

from repro.analysis.lockwatch import LockOrderError, watching
from repro.analysis.registry import hotpath, register_lock

__all__ = ["LockOrderError", "hotpath", "register_lock", "watching"]
