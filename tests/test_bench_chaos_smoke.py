"""Tier-1 smoke run of ``benchmarks/bench_chaos.py``.

The perf benches only run when a perf PR invokes them; this test drives
the chaos bench end to end in its ``--smoke`` mode (tiny shapes, no
floor assertions, ``BENCH_perf.json`` untouched) so the script itself
cannot rot between perf PRs — its imports, the fabric microbench, the
seeded 10%-drop campaign with its all-rounds-completed asserts, and the
record plumbing all execute on every test run.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestBenchChaosSmoke:
    def test_smoke_mode_runs_clean(self):
        trajectory = REPO_ROOT / "BENCH_perf.json"
        before = trajectory.read_bytes() if trajectory.exists() else None
        full_results = REPO_ROOT / "bench_results" / "bench_chaos.json"
        full_before = full_results.read_bytes() if full_results.exists() else None
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "benchmarks" / "bench_chaos.py"),
                "--smoke",
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, result.stderr
        assert "bench_chaos_smoke" in result.stdout
        assert "chaos_fabric_overhead" in result.stdout

        # Smoke mode must never touch the committed trajectory or the
        # full run's diagnostic records.
        after = trajectory.read_bytes() if trajectory.exists() else None
        assert before == after
        full_after = full_results.read_bytes() if full_results.exists() else None
        assert full_before == full_after

        # The smoke payload is the full machine-readable schema.
        payload = json.loads(
            (REPO_ROOT / "bench_results" / "bench_chaos_smoke.json").read_text()
        )
        assert payload["schema"] == "perf/v1"
        labels = {r["label"] for r in payload["results"]}
        assert {"chaos_fabric_overhead", "chaos_campaign_10pct_drop"} <= labels
        assert all(r.get("floor") is None for r in payload["results"])
        campaign = next(
            r for r in payload["results"] if r["label"] == "chaos_campaign_10pct_drop"
        )
        assert campaign["completed_rounds"] > 0
