"""Tests for the synthetic CIFAR-100 / Stanford Cars stand-ins."""

import numpy as np
import pytest

from repro.data import (
    SyntheticImageGenerator,
    SyntheticSpec,
    make_cifar100_like,
    make_stanford_cars_like,
)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticSpec(num_classes=4, fine_grained_groups=5)


class TestGenerator:
    def test_prototype_shape(self):
        gen = make_cifar100_like(num_classes=6, image_size=8)
        assert gen.prototypes.shape == (6, 3, 8, 8)

    def test_determinism(self):
        a = make_cifar100_like(num_classes=4, seed=3).generate(5, seed=1)
        b = make_cifar100_like(num_classes=4, seed=3).generate(5, seed=1)
        np.testing.assert_allclose(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_cifar100_like(num_classes=4, seed=1).generate(5)
        b = make_cifar100_like(num_classes=4, seed=2).generate(5)
        assert not np.allclose(a.images, b.images)

    def test_sample_counts(self):
        gen = make_cifar100_like(num_classes=5)
        data = gen.generate(samples_per_class=7)
        assert len(data) == 35
        np.testing.assert_array_equal(data.class_histogram(), np.full(5, 7))

    def test_class_subset(self):
        gen = make_cifar100_like(num_classes=6)
        data = gen.generate(4, class_subset=np.array([1, 3]))
        assert set(np.unique(data.labels)) == {1, 3}
        assert data.num_classes == 6

    def test_fresh_noise_per_seed(self):
        gen = make_cifar100_like(num_classes=4)
        a = gen.generate(5, seed=1)
        b = gen.generate(5, seed=2)
        assert not np.allclose(np.sort(a.images.ravel()), np.sort(b.images.ravel()))

    def test_samples_cluster_around_prototypes(self):
        """Samples must be closer to their own prototype than to others'."""
        gen = make_cifar100_like(num_classes=6, image_size=8)
        data = gen.generate(samples_per_class=12, seed=5)
        protos = gen.prototypes.reshape(6, -1)
        images = data.images.reshape(len(data), -1)
        dists = np.linalg.norm(images[:, None, :] - protos[None], axis=2)
        nearest = dists.argmin(axis=1)
        assert (nearest == data.labels).mean() > 0.8

    def test_learnable_by_linear_probe(self):
        """The task must be learnable — the substrate's core property."""
        from repro.nn import functional as F
        from repro.nn.layers import Linear
        from repro.nn.optim import Adam
        from repro.nn.tensor import Tensor

        gen = make_cifar100_like(num_classes=4, image_size=8)
        data = gen.generate(samples_per_class=25, seed=1)
        x = data.images.reshape(len(data), -1)
        probe = Linear(x.shape[1], 4, rng=np.random.default_rng(0))
        opt = Adam(probe.parameters(), lr=1e-2)
        for _ in range(40):
            opt.zero_grad()
            loss = F.cross_entropy(probe(Tensor(x)), data.labels)
            loss.backward()
            opt.step()
        acc = F.accuracy(probe(Tensor(x)), data.labels)
        assert acc > 0.9


class TestFineGrained:
    def test_stanford_cars_is_harder(self):
        """Fine-grained prototypes are more mutually similar than coarse ones."""

        def mean_pairwise_cosine(protos):
            flat = protos.reshape(protos.shape[0], -1)
            flat = flat / np.linalg.norm(flat, axis=1, keepdims=True)
            sims = flat @ flat.T
            n = len(flat)
            return (sims.sum() - n) / (n * (n - 1))

        coarse = make_cifar100_like(num_classes=12, seed=0)
        fine = make_stanford_cars_like(num_classes=12, seed=0)
        assert mean_pairwise_cosine(fine.prototypes) > mean_pairwise_cosine(
            coarse.prototypes
        ) + 0.1

    def test_group_structure(self):
        """Within-group prototype similarity exceeds across-group similarity."""
        gen = make_stanford_cars_like(num_classes=8, seed=1)
        groups = gen.spec.fine_grained_groups
        flat = gen.prototypes.reshape(8, -1)
        flat = flat / np.linalg.norm(flat, axis=1, keepdims=True)
        sims = flat @ flat.T
        within, across = [], []
        for i in range(8):
            for j in range(i + 1, 8):
                (within if i % groups == j % groups else across).append(sims[i, j])
        assert np.mean(within) > np.mean(across)
