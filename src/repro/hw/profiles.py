"""Device hardware profiles.

Each device ``n`` is the paper's tuple ``(G_n, C_n, θ_n)`` (§II-C) extended
with the coefficients its energy model needs (§II-B).  Profiles are
synthesized to mirror the evaluation testbed: clusters of devices with
similar capability, vCPUs from 3 to 7, and storage capacities of
200–400 MB (scaled to this reproduction's model sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class DeviceProfile:
    """Static attributes of one device.

    Attributes
    ----------
    device_id:
        Unique identifier within the fleet.
    gpu_capacity:
        ``G_n`` — compute capability (proxied by vCPU count in the paper's
        testbed); drives the power coefficients.
    storage_limit:
        ``C_n`` — maximum storable parameter count for the deployed model.
    num_patches:
        ``p_n`` — ViT patch count for this device's input resolution.
    batch_size:
        ``β`` — the batch size used for the GPU-energy estimate ``G^β_n``.
    base_power / power_per_layer:
        ``G_n``-derived terms of Eq. (2): idle power and the increment per
        additional effective Transformer layer (``ΔG_n ∝ G_n``).
    base_latency / latency_per_layer:
        ``L_n`` and ``ΔL_n ∝ L_n`` of Eq. (2), seconds per epoch.
    """

    device_id: int
    gpu_capacity: float
    storage_limit: int
    num_patches: int = 16
    batch_size: int = 32
    base_power: float = field(default=0.0)
    power_per_layer: float = field(default=0.0)
    base_latency: float = field(default=0.0)
    latency_per_layer: float = field(default=0.0)

    @staticmethod
    def synthesize(
        device_id: int,
        vcpus: int,
        storage_limit: int,
        rng: np.random.Generator,
        num_patches: int = 16,
        batch_size: int = 32,
    ) -> "DeviceProfile":
        """Build a profile from a vCPU class, with mild random variation.

        The proportionality constraints of Eq. (2) are enforced here:
        ``ΔG_n ∝ G_n`` and ``ΔL_n ∝ L_n`` (faster devices idle hotter but
        finish epochs sooner).
        """
        if vcpus < 1:
            raise ValueError(f"vcpus must be >= 1, got {vcpus}")
        gpu_capacity = float(vcpus)
        jitter = 1.0 + 0.05 * rng.standard_normal()
        base_power = 2.0 * gpu_capacity * jitter  # watts
        power_per_layer = 0.15 * base_power  # ΔG ∝ G
        base_latency = (8.0 / gpu_capacity) * (1.0 + 0.05 * rng.standard_normal())
        latency_per_layer = 0.25 * base_latency  # ΔL ∝ L
        return DeviceProfile(
            device_id=device_id,
            gpu_capacity=gpu_capacity,
            storage_limit=storage_limit,
            num_patches=num_patches,
            batch_size=batch_size,
            base_power=base_power,
            power_per_layer=power_per_layer,
            base_latency=base_latency,
            latency_per_layer=latency_per_layer,
        )


def make_fleet(
    num_clusters: int = 10,
    devices_per_cluster: int = 5,
    seed: int = 0,
    storage_levels: Sequence[int] = (200_000, 250_000, 300_000, 350_000, 400_000),
) -> List[List[DeviceProfile]]:
    """Synthesize the paper's testbed: clusters of similar devices.

    The paper configures 10 clusters of 5 VMs with vCPUs in [3, 7] and
    storage 200–400 MB.  Storage is expressed here in *parameter counts*
    scaled to the reproduction's model sizes (default levels span the sizes
    our scaled ViT actually reaches).

    Devices within a cluster share a vCPU class (clusters are formed by
    similarity of performance and storage) and step through the storage
    levels, exactly as in §IV-A.
    """
    rng = np.random.default_rng(seed)
    fleet: List[List[DeviceProfile]] = []
    device_id = 0
    for cluster_idx in range(num_clusters):
        vcpus = 3 + cluster_idx % 5  # 3..7, one class per cluster
        cluster = []
        for slot in range(devices_per_cluster):
            storage = storage_levels[slot % len(storage_levels)]
            cluster.append(
                DeviceProfile.synthesize(device_id, vcpus, storage, rng)
            )
            device_id += 1
        fleet.append(cluster)
    return fleet


def cluster_statistics(cluster: Sequence[DeviceProfile]) -> dict:
    """The statistical parameters an edge server uploads to the cloud.

    This is the *only* device information that leaves the edge in Phase 1 —
    a handful of floats, not data — which is what makes Table I's upload
    volume so small.
    """
    if not cluster:
        raise ValueError("cluster must contain at least one device")
    storages = np.array([d.storage_limit for d in cluster], dtype=float)
    capacities = np.array([d.gpu_capacity for d in cluster], dtype=float)
    return {
        "num_devices": len(cluster),
        "min_storage": float(storages.min()),
        "mean_storage": float(storages.mean()),
        "min_gpu_capacity": float(capacities.min()),
        "mean_gpu_capacity": float(capacities.mean()),
        "max_base_power": float(max(d.base_power for d in cluster)),
        "max_power_per_layer": float(max(d.power_per_layer for d in cluster)),
        "max_base_latency": float(max(d.base_latency for d in cluster)),
        "max_latency_per_layer": float(max(d.latency_per_layer for d in cluster)),
        "num_patches": int(cluster[0].num_patches),
        "batch_size": int(cluster[0].batch_size),
    }
