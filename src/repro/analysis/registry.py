"""Single source of truth for the engine's lock inventory.

Before this module existed, fork safety rested on a hand-maintained
list: every module-level engine lock had to be mirrored into
``procpool._reinit_locks_after_fork`` by whoever added it, and nothing
checked that the list was complete.  Now every engine lock is created
through :func:`register_lock`, which

* records module-level locks (``module=__name__, attr="_MY_LOCK"``) in
  a registry that :func:`reinit_locks_after_fork` replays — the process
  backend re-inits exactly the registered set, so a lock added anywhere
  in the tree is fork-safe without touching ``procpool.py``;
* hands every lock (module-level *and* per-instance) to
  :mod:`repro.analysis.lockwatch` so the armed lock-order detector sees
  it — disarmed, the returned object is a plain ``threading.Lock`` with
  zero overhead;
* gives the static linter a machine-checkable contract: reprolint's
  CONC rules flag any module-scope ``threading.Lock()`` that bypasses
  the registry and cross-check each ``register_lock`` call against the
  live registry by importing the module (see ``ANALYSIS.md``).

:func:`hotpath` is the companion marker for reprolint's ALLOC rule: a
zero-cost decorator that designates a function as a fused hot path, in
which bare binary-operator temporaries (``x = a + b``) are lint errors
— the fused optimizer sweeps must stay allocation-free.
"""

from __future__ import annotations

import sys
import threading
from typing import Callable, Dict, TypeVar

__all__ = [
    "LockRecord",
    "hotpath",
    "instance_lock_names",
    "lock_records",
    "register_lock",
    "reinit_locks_after_fork",
]

F = TypeVar("F", bound=Callable)


class LockRecord:
    """One registered module-level lock: where it lives and how to remake it."""

    __slots__ = ("name", "module", "attr", "factory")

    def __init__(self, name: str, module: str, attr: str, factory: Callable) -> None:
        self.name = name
        self.module = module
        self.attr = attr
        self.factory = factory

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LockRecord({self.name!r}, {self.module}.{self.attr})"


# Registered module-level locks by name.  Only mutated under
# _RECORDS_LOCK; read without it by fork re-init (single-threaded child)
# and lockwatch arming (which snapshots under its own guard).
# reprolint: guarded -- insertions serialized by _RECORDS_LOCK; post-fork reads are single-threaded
_RECORDS: Dict[str, LockRecord] = {}
#: Names seen for instance-scope registrations (diagnostics only).
# reprolint: guarded -- insertions serialized by _RECORDS_LOCK; read-only snapshots via instance_lock_names()
_INSTANCE_NAMES: Dict[str, int] = {}
# The registry's own guard cannot be created through itself; it is
# explicitly re-inited first thing in reinit_locks_after_fork().
# reprolint: unregistered-lock -- the registry bootstrap lock; re-inited by hand at the top of reinit_locks_after_fork
_RECORDS_LOCK = threading.Lock()


def register_lock(
    name: str,
    *,
    module: str = "",
    attr: str = "",
    factory: Callable = threading.Lock,
):
    """Create an engine lock and register it with the correctness tooling.

    Module-level locks pass ``module=__name__, attr="<GLOBAL NAME>"``:
    the (module, attr) pair is recorded so :func:`reinit_locks_after_fork`
    can rebind a fresh lock over the global after a fork, and so
    lockwatch can swap an order-recording proxy in while armed.  The
    *attr* must be the exact global the module binds the return value
    to — reprolint cross-checks the pair against the live registry.

    Instance locks (no ``module``/``attr``) skip fork re-init — worker
    tasks never reach them (see ``procpool._reinit_locks_after_fork``)
    — but are still wrapped by lockwatch while it is armed, under the
    given *name* (instances of one site share the name; lockwatch
    tracks object identity separately).

    Returns the lock: a plain ``factory()`` product when lockwatch is
    disarmed, a watched proxy when armed.
    """
    if bool(module) != bool(attr):
        raise ValueError("module and attr must be given together")
    lock = factory()
    with _RECORDS_LOCK:
        if module:
            existing = _RECORDS.get(name)
            if existing is not None and (existing.module, existing.attr) != (
                module,
                attr,
            ):
                raise ValueError(
                    f"lock name {name!r} already registered for "
                    f"{existing.module}.{existing.attr}; pick a unique name"
                )
            _RECORDS[name] = LockRecord(name, module, attr, factory)
        else:
            _INSTANCE_NAMES[name] = _INSTANCE_NAMES.get(name, 0) + 1
    from repro.analysis import lockwatch

    return lockwatch.wrap_if_armed(lock, name)


def lock_records() -> Dict[str, LockRecord]:
    """Snapshot of the module-level lock registry (name -> record)."""
    with _RECORDS_LOCK:
        return dict(_RECORDS)


def instance_lock_names() -> Dict[str, int]:
    """Names registered at instance scope and how often (diagnostics)."""
    with _RECORDS_LOCK:
        return dict(_INSTANCE_NAMES)


def reinit_locks_after_fork() -> None:
    """Rebind a fresh lock over every registered module-level lock.

    Called in a freshly forked child (single-threaded): another parent
    thread may have held any engine lock at fork time, and the owner no
    longer exists in the child, so every registered lock is replaced
    wholesale.  Lockwatch is reset first — the child runs unwatched (its
    held-stack/graph snapshots describe parent threads that do not
    exist here), and resetting also drops any watched proxies by
    rebinding plain locks over them.
    """
    global _RECORDS_LOCK
    _RECORDS_LOCK = threading.Lock()
    from repro.analysis import lockwatch

    lockwatch.reset_after_fork()
    for record in _RECORDS.values():
        mod = sys.modules.get(record.module)
        if mod is not None:
            setattr(mod, record.attr, record.factory())


def hotpath(fn: F) -> F:
    """Mark *fn* as a fused hot path for reprolint's ALLOC rule.

    Identity decorator — zero runtime cost.  Inside a marked function
    the linter flags bare binary-operator assignments (``x = a + b``
    allocates a temporary every step); use ``out=`` ufunc forms or
    augmented in-place updates instead.
    """
    return fn
