"""Convolution and pooling layers via im2col.

These power the CNN-style header blocks of the NAS search space (z×z
convolutions, average/max pooling, downsampling — see Fig. 5 of the paper).
Inputs follow the ``(N, C, H, W)`` layout.

The im2col/col2im gather-index arrays depend only on
``(channels, height, width, kernel, stride, padding)`` — not on the batch
or the values — so they are memoized in a process-wide LRU cache shared
by :class:`Conv2d`, :class:`MaxPool2d` and :class:`AvgPool2d`.  Repeated
forwards over same-shaped activations (every training/eval loop) skip the
index construction entirely.
"""

from __future__ import annotations

import functools
from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn import init
from repro.nn.layers import Module, Parameter
from repro.nn.tensor import Tensor, is_grad_enabled

_CACHE_ENABLED = True


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _build_indices(
    c: int, h: int, w: int, kh: int, kw: int, sh: int, sw: int, ph: int, pw: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {(kh, kw)} with stride {(sh, sw)}, padding {(ph, pw)} "
            f"does not fit input (C={c}, H={h}, W={w})"
        )

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = sh * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = sw * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    # Cached arrays are shared across forwards; freeze them so an
    # accidental in-place edit cannot corrupt every future convolution.
    for arr in (k, i, j):
        arr.setflags(write=False)
    return k, i, j, out_h, out_w


# Bounded by entry count, not bytes: an entry is O(C*kh*kw*out_h*out_w)
# int64, so the cap is kept small enough that even large-shape workloads
# stay in the tens of MB.  Call clear_im2col_cache() to release.
_cached_indices = functools.lru_cache(maxsize=128)(_build_indices)

# Thread-safety audit: the cache is shared by every thread running
# conv/pool forwards (parallel device loops hit it concurrently).
# CPython's C ``lru_cache`` is internally locked — lookups, insertion,
# ``cache_clear`` and ``cache_info`` are each atomic without any
# external lock (worst case two racing misses both build the same
# arrays) — and the entries are marked read-only above so sharing them
# across threads is safe.


def set_im2col_cache_enabled(enabled: bool) -> None:
    """Toggle the index cache (benchmarks disable it to measure cold cost)."""
    global _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)


def clear_im2col_cache() -> None:
    _cached_indices.cache_clear()


def im2col_cache_info():
    """``functools.lru_cache`` statistics of the shared index cache."""
    return _cached_indices.cache_info()


def _im2col_indices(
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Index arrays mapping padded input pixels to column-matrix entries."""
    _n, c, h, w = x_shape
    builder = _cached_indices if _CACHE_ENABLED else _build_indices
    return builder(c, h, w, *kernel, *stride, *padding)


def _zero_pad(data: np.ndarray, ph: int, pw: int) -> np.ndarray:
    """Spatial zero padding via slice assignment (much cheaper than np.pad)."""
    n, c, h, w = data.shape
    out = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=data.dtype)
    out[:, :, ph : ph + h, pw : pw + w] = data
    return out


def _windows(
    data: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    """Zero-copy ``(N, C, out_h, out_w, kh, kw)`` sliding-window view."""
    kh, kw = kernel
    if kh > data.shape[2] or kw > data.shape[3]:
        raise ValueError(
            f"kernel {kernel} does not fit input of shape {data.shape}"
        )
    return sliding_window_view(data, (kh, kw), axis=(2, 3))[
        :, :, :: stride[0], :: stride[1]
    ]


def im2col(x: Tensor, kernel, stride=1, padding=0) -> Tuple[Tensor, int, int]:
    """Unfold ``x`` into a ``(C*kh*kw, N*out_h*out_w)`` column tensor."""
    kernel = _pair(kernel)
    stride = _pair(stride)
    padding = _pair(padding)
    ph, pw = padding
    if ph or pw:
        x = x.pad(((0, 0), (0, 0), (ph, ph), (pw, pw)))
    k, i, j, out_h, out_w = _im2col_indices(x.shape, kernel, stride, (0, 0))
    cols = x[:, k, i, j]  # (N, C*kh*kw, out_h*out_w)
    n = x.shape[0]
    cols = cols.transpose((1, 2, 0)).reshape(k.shape[0], -1)
    return cols, out_h, out_w


class Conv2d(Module):
    """2-D convolution implemented with im2col + matmul."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        # Fall back to the shared per-thread stream (NOT a fresh
        # ``default_rng(0)``): convolutions built without an explicit rng
        # must not all receive identical weights.
        rng = rng if rng is not None else init.default_generator()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kh, kw), rng)
        )
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            return self._forward_inference(x)
        n = x.shape[0]
        cols, out_h, out_w = im2col(x, self.kernel_size, self.stride, self.padding)
        w_flat = self.weight.reshape(self.out_channels, -1)
        out = w_flat @ cols  # (out_channels, N*out_h*out_w)
        out = out.reshape(self.out_channels, out_h * out_w, n)
        out = out.transpose((2, 0, 1)).reshape(n, self.out_channels, out_h, out_w)
        if self.bias is not None:
            out = out + self.bias.reshape(1, self.out_channels, 1, 1)
        return out

    def _forward_inference(self, x: Tensor) -> Tensor:
        """Tape-free forward: strided sliding windows + a single GEMM.

        Computes the same sums of products as the taped im2col path but
        materializes the column matrix with one strided copy (no fancy
        indexing, no index arrays) and runs as a plain-numpy pipeline
        with no intermediate tensors or backward closures.
        """
        data = x.data
        n = data.shape[0]
        kh, kw = self.kernel_size
        ph, pw = self.padding
        if ph or pw:
            data = _zero_pad(data, ph, pw)
        view = _windows(data, self.kernel_size, self.stride)
        out_h, out_w = view.shape[2], view.shape[3]
        # (C, kh, kw, N, out_h, out_w) → rows match the weight layout.
        cols = view.transpose(1, 4, 5, 0, 2, 3).reshape(self.in_channels * kh * kw, -1)
        w_flat = self.weight.data.reshape(self.out_channels, -1)
        out = w_flat @ cols  # (out_channels, N*out_h*out_w)
        out = out.reshape(self.out_channels, n, out_h, out_w).transpose(1, 0, 2, 3)
        if self.bias is not None:
            out = out + self.bias.data.reshape(1, self.out_channels, 1, 1)
        return Tensor(out)


class _Pool2d(Module):
    """Shared machinery for max and average pooling."""

    def __init__(self, kernel_size, stride=None, padding=0) -> None:
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride) if stride is not None else self.kernel_size
        self.padding = _pair(padding)

    def _unfold(self, x: Tensor) -> Tuple[Tensor, int, int, int, int]:
        n, c, _h, _w = x.shape
        kh, kw = self.kernel_size
        # Pool each channel independently: reshape to (N*C, 1, H, W).
        x_flat = x.reshape(n * c, 1, x.shape[2], x.shape[3])
        cols, out_h, out_w = im2col(x_flat, self.kernel_size, self.stride, self.padding)
        # cols: (kh*kw, N*C*out_h*out_w)
        return cols, n, c, out_h, out_w

    def _windows_inference(self, x: Tensor) -> np.ndarray:
        """Tape-free ``(N, C, out_h, out_w, kh, kw)`` window view.

        Pooling reduces straight over the window axes — no column matrix
        is ever materialized.
        """
        data = x.data
        ph, pw = self.padding
        if ph or pw:
            data = _zero_pad(data, ph, pw)
        return _windows(data, self.kernel_size, self.stride)


class MaxPool2d(_Pool2d):
    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            return Tensor(self._windows_inference(x).max(axis=(-2, -1)))
        cols, n, c, out_h, out_w = self._unfold(x)
        pooled = cols.max(axis=0)
        pooled = pooled.reshape(out_h * out_w, n * c)
        return pooled.transpose((1, 0)).reshape(n, c, out_h, out_w)


class AvgPool2d(_Pool2d):
    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            return Tensor(self._windows_inference(x).mean(axis=(-2, -1)))
        cols, n, c, out_h, out_w = self._unfold(x)
        pooled = cols.mean(axis=0)
        pooled = pooled.reshape(out_h * out_w, n * c)
        return pooled.transpose((1, 0)).reshape(n, c, out_h, out_w)


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent → ``(N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))


class Downsample2d(Module):
    """Strided 1×1 convolution halving the spatial resolution.

    This is the "downsampling" operation in the header search space; it is
    the standard parameterized alternative to pooling.
    """

    def __init__(
        self,
        channels: int,
        stride: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.conv = Conv2d(channels, channels, kernel_size=1, stride=stride, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.conv(x)
