"""Evaluation helpers: accuracy and loss over datasets."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.models.headers import BackboneFeatures, Header
from repro.models.vit import VisionTransformer
from repro.nn import functional as F
from repro.nn.layers import Module
from repro.nn.tensor import Tensor, no_grad


def batch_metrics(logits: Tensor, labels: np.ndarray) -> tuple:
    """``(loss_sum, correct)`` of one logits batch — the shared metric
    kernel of the evaluation loops here and the batched serving runner
    (:mod:`repro.train.serving`)."""
    loss_sum = float(F.cross_entropy(logits, labels, reduction="sum").data)
    correct = int((logits.data.argmax(axis=-1) == labels).sum())
    return loss_sum, correct


def evaluate_model(
    model: Module,
    dataset: ArrayDataset,
    batch_size: int = 64,
    max_batches: Optional[int] = None,
) -> dict:
    """Accuracy and mean loss of an end-to-end model."""
    loader = DataLoader(
        # reprolint: fixed-rng -- shuffle=False never draws from this stream;
        # the pinned rng keeps eval loaders deterministic even if the set_seed
        # fallback default ever changes
        dataset, batch_size=batch_size, shuffle=False, rng=np.random.default_rng(0)
    )
    model.eval()
    correct, total, loss_sum = 0, 0, 0.0
    with no_grad():
        for batch_idx, (images, labels) in enumerate(loader):
            if max_batches is not None and batch_idx >= max_batches:
                break
            logits = model(Tensor(images))
            batch_loss, batch_correct = batch_metrics(logits, labels)
            loss_sum += batch_loss
            correct += batch_correct
            total += labels.shape[0]
    if total == 0:
        raise ValueError("no samples evaluated")
    return {"accuracy": correct / total, "loss": loss_sum / total, "samples": total}


def evaluate_header(
    backbone: VisionTransformer,
    header: Header,
    dataset: ArrayDataset,
    batch_size: int = 64,
    max_batches: Optional[int] = None,
) -> dict:
    """Accuracy and mean loss of a (backbone, header) pair."""
    loader = DataLoader(
        # reprolint: fixed-rng -- shuffle=False never draws from this stream;
        # the pinned rng keeps eval loaders deterministic even if the set_seed
        # fallback default ever changes
        dataset, batch_size=batch_size, shuffle=False, rng=np.random.default_rng(0)
    )
    header.eval()
    correct, total, loss_sum = 0, 0, 0.0
    with no_grad():
        for batch_idx, (images, labels) in enumerate(loader):
            if max_batches is not None and batch_idx >= max_batches:
                break
            cls, tokens, penult = backbone.forward_features_multi(Tensor(images))
            features = BackboneFeatures(cls, tokens, penult)
            logits = header(features)
            batch_loss, batch_correct = batch_metrics(logits, labels)
            loss_sum += batch_loss
            correct += batch_correct
            total += labels.shape[0]
    if total == 0:
        raise ValueError("no samples evaluated")
    return {"accuracy": correct / total, "loss": loss_sum / total, "samples": total}
