"""Knowledge distillation into a width- and depth-dynamic backbone (Eq. 9).

The teacher ``´θB`` is the importance-reordered full backbone; the student
``θB`` learns to work at *every* width/depth configuration: each training
step samples a sub-configuration (w, d), applies it to the student, and
minimizes

.. math:: L(´θ, θ) = λ_1 l(´y, y) + λ_2 l(´E, E) + l(´H, H)

matching logits, patch embeddings, and hidden states (student layer ``j``
is matched to the teacher layer at the same relative depth, the standard
depth-distillation alignment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.models.vit import VisionTransformer
from repro.nn import functional as F
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad


@dataclass
class DistillConfig:
    """Hyperparameters of the Eq. (9) distillation run."""

    width_choices: Sequence[float] = (0.25, 0.5, 0.75, 1.0)
    depth_choices: Optional[Sequence[int]] = None  # default: 1..teacher depth
    epochs: int = 2
    batch_size: int = 32
    lr: float = 1e-3
    lambda_logits: float = 1.0  # λ1
    lambda_embed: float = 0.5  # λ2
    grad_clip: float = 5.0
    seed: int = 0


@dataclass
class DistillReport:
    """Losses recorded over the distillation run."""

    step_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.step_losses[-1] if self.step_losses else float("nan")

    @property
    def initial_loss(self) -> float:
        return self.step_losses[0] if self.step_losses else float("nan")


def _forward_full(model: VisionTransformer, images: Tensor):
    """Run a ViT capturing embeddings, hidden states, and logits."""
    embedded = model._embed(images)
    out, hidden = model.encoder(embedded, collect_hidden=True)
    normed = model.norm(out)
    logits = model.head(normed[:, 0, :])
    return embedded, hidden, logits


def _align_hidden(student_hidden, teacher_hidden):
    """Pair each student layer with the teacher layer at equal relative depth."""
    d, t = len(student_hidden), len(teacher_hidden)
    pairs = []
    for j in range(d):
        teacher_idx = int(np.ceil((j + 1) * t / d)) - 1
        pairs.append((student_hidden[j], teacher_hidden[teacher_idx]))
    return pairs


def distill(
    teacher: VisionTransformer,
    student: VisionTransformer,
    dataset: ArrayDataset,
    config: Optional[DistillConfig] = None,
) -> DistillReport:
    """Train ``student`` to mimic ``teacher`` under sampled (w, d) configs.

    The teacher runs at full width and depth throughout; the student's
    masks are re-sampled per batch so every sub-network learns to stand on
    its own.  The student is restored to full configuration on return.
    """
    config = config or DistillConfig()
    rng = np.random.default_rng(config.seed)
    depth_choices = (
        list(config.depth_choices)
        if config.depth_choices is not None
        else list(range(1, teacher.config.depth + 1))
    )
    if not depth_choices or not config.width_choices:
        raise ValueError("need at least one width and one depth choice")

    teacher.eval()
    student.train()
    optimizer = Adam(student.parameters(), lr=config.lr)
    report = DistillReport()

    loader = DataLoader(
        dataset, batch_size=config.batch_size, shuffle=True, rng=rng
    )
    for _epoch in range(config.epochs):
        for images, _labels in loader:
            width = float(rng.choice(list(config.width_choices)))
            depth = int(rng.choice(depth_choices))
            student.scale(width, depth)

            x = Tensor(images)
            # The teacher provides fixed targets (every use below is
            # detached), so its forward runs tape-free.
            with no_grad():
                t_embed, t_hidden, t_logits = _forward_full(teacher, x)
            s_embed, s_hidden, s_logits = _forward_full(student, x)

            loss = config.lambda_logits * F.mse_loss(s_logits, t_logits.detach())
            loss = loss + config.lambda_embed * F.mse_loss(s_embed, t_embed.detach())
            for s_h, t_h in _align_hidden(s_hidden, t_hidden):
                loss = loss + F.mse_loss(s_h, t_h.detach())

            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(student.parameters(), config.grad_clip)
            optimizer.step()
            report.step_losses.append(float(loss.data))

    student.scale(1.0, teacher.config.depth)
    student.eval()
    return report
