"""Edge server node: the middle tier running both customization stages.

An edge server ``s`` manages a device cluster N_s and a shared dataset
(10-20% of the cluster's data, per §IV-A).  Its protocol role:

* **Phase 1** — upload cluster statistics, receive the assigned backbone.
* **Phase 2-1** — run the ENAS header search on the shared dataset and
  distribute (backbone, coarse header) to every device.
* **Phase 2-2** — drive the single loop of Algorithm 2: collect device
  importance sets, compute the Wasserstein similarity matrix from the
  devices' feature samples, aggregate (Eq. 21), and redistribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.aggregation import aggregate_importance_sets
from repro.core.nas import HeaderSearch, NASConfig
from repro.core.similarity import (
    distance_matrix,
    regularize_similarity,
    similarity_from_distances,
)
from repro.data.dataset import ArrayDataset
from repro.distributed.device import DeviceNode
from repro.distributed.executor import WorkerSpec, parallel_map
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import Network
from repro.hw.profiles import cluster_statistics
from repro.models.blocks import HeaderSpec
from repro.models.vit import VisionTransformer, ViTConfig
from repro.train import serving


@dataclass
class EdgeConfig:
    """Edge-side knobs."""

    #: Filled from ``seed`` in ``__post_init__`` when not given (the
    #: derived default depends on another field, so ``Optional`` +
    #: post-init rather than a default_factory).
    nas: Optional[NASConfig] = None
    aggregation_rounds: int = 2  # T in Algorithm 2
    keep_fraction: float = 0.7
    similarity_metric: str = "wasserstein"  # "wasserstein" (ours) or "js"
    #: Worker threads for the per-device fan-outs (importance rounds and
    #: finalize/eval).  ``None``/0/1 = serial; -1/"auto" = CPU count.
    #: Results are ordered by device, so any worker count reproduces the
    #: serial run exactly (see repro.distributed.executor).
    parallel_devices: WorkerSpec = None
    #: Serve the cluster's final evaluation through one batched backbone
    #: forward per round (repro.train.serving) when every device holds
    #: the same frozen backbone — numerically identical to per-device
    #: evaluation, but amortizes the Python/tape overhead the GIL keeps
    #: threads from overlapping.  Composes with ``parallel_devices``
    #: (fine-tuning still fans out across workers).
    batched_serving: bool = True
    #: Fleet-batched local **training**: run the cluster's per-device
    #: header updates (the aggregation loop's importance rounds and the
    #: finalize fine-tune) as one computation graph per round with a
    #: single fused fleet-optimizer step (:mod:`repro.train.fleet`).
    #: Bit-for-bit identical to the per-device loops under float64 —
    #: losses, weights, importance sets, and the traffic ledger.  When
    #: enabled it **replaces** the ``parallel_devices`` fan-out for
    #: those phases (the stacked graph already amortizes what the
    #: threads would); eligibility falls back to the per-device path for
    #: stochastic models or heterogeneous backbones.
    fleet_training: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nas is None:
            self.nas = NASConfig(seed=self.seed)


class EdgeServer:
    """One edge server ``s_s`` and its device cluster."""

    def __init__(
        self,
        index: int,
        devices: Sequence[DeviceNode],
        shared_dataset: ArrayDataset,
        network: Network,
        config: Optional[EdgeConfig] = None,
        cloud_name: str = "cloud",
    ) -> None:
        self.index = index
        self.devices = list(devices)
        self.shared_dataset = shared_dataset
        self.network = network
        self.config = config or EdgeConfig()
        self.cloud_name = cloud_name
        self.name = f"edge{index}"
        self.backbone: Optional[VisionTransformer] = None
        self.assigned_width: Optional[float] = None
        self.assigned_depth: Optional[int] = None
        self.header_spec: Optional[HeaderSpec] = None
        self.search: Optional[HeaderSearch] = None
        self.similarity: Optional[np.ndarray] = None
        self._pending_importance: Dict[int, np.ndarray] = {}
        self._feature_samples: Dict[int, np.ndarray] = {}
        network.register(self.name, self.handle)

    # ------------------------------------------------------------------
    def handle(self, message: Message) -> Optional[Message]:
        if message.kind is MessageKind.BACKBONE_ASSIGNMENT:
            return self._receive_backbone(message)
        if message.kind is MessageKind.IMPORTANCE_SET:
            return self._receive_importance(message)
        raise ValueError(f"{self.name} cannot handle {message.kind}")

    def _receive_backbone(self, message: Message) -> None:
        config: ViTConfig = message.payload["vit_config"]
        self.backbone = VisionTransformer(config, seed=0)
        self.backbone.load_state_dict(message.payload["backbone_state"])
        self.backbone.set_importance_orders(
            head_orders=message.payload["head_orders"],
            neuron_orders=message.payload["neuron_orders"],
        )
        self.assigned_width = float(message.payload["width"])
        self.assigned_depth = int(message.payload["depth"])
        self.backbone.scale(self.assigned_width, self.assigned_depth)
        return None

    def _receive_importance(self, message: Message) -> None:
        device_id = int(message.payload["device_id"])
        self._pending_importance[device_id] = message.payload["importance"]
        if "feature_sample" in message.payload:
            self._feature_samples[device_id] = message.payload["feature_sample"]
        return None

    # ------------------------------------------------------------------
    # Phase 1: cloud ↔ edge
    # ------------------------------------------------------------------
    def request_backbone(self) -> None:
        """Upload cluster statistics; the cloud replies with a backbone."""
        stats = cluster_statistics([d.profile for d in self.devices])
        self.network.send(
            Message(self.name, self.cloud_name, MessageKind.CLUSTER_STATS, {"stats": stats})
        )
        if self.backbone is None:
            raise RuntimeError("cloud did not assign a backbone")

    # ------------------------------------------------------------------
    # Phase 2-1: header search + distribution
    # ------------------------------------------------------------------
    def search_header(self) -> HeaderSpec:
        """ENAS search for the coarse header on the shared dataset."""
        assert self.backbone is not None, "request_backbone() first"
        num_classes = self.shared_dataset.num_classes
        self.search = HeaderSearch(self.backbone, num_classes, self.config.nas)
        result = self.search.search(self.shared_dataset)
        self.header_spec = result.spec
        return result.spec

    def distribute_models(self) -> None:
        """Send (backbone, coarse header) to every device in the cluster."""
        assert self.backbone is not None and self.header_spec is not None
        assert self.search is not None
        header = self.search.materialize_header(self.header_spec, seed=self.config.seed)
        payload_template = {
            "vit_config": self.backbone.config,
            "backbone_state": self.backbone.state_dict(),
            "head_orders": [o.copy() for o in self.backbone._head_orders],
            "neuron_orders": [o.copy() for o in self.backbone._neuron_orders],
            "width": self.assigned_width,
            "depth": self.assigned_depth,
            "header_spec": self.header_spec,
            "header_state": header.state_dict(),
            "keep_fraction": self.config.keep_fraction,
        }
        for device in self.devices:
            self.network.send(
                Message(self.name, device.name, MessageKind.MODEL_DISTRIBUTION, dict(payload_template))
            )

    # ------------------------------------------------------------------
    # Phase 2-2: the single loop (Algorithm 2)
    # ------------------------------------------------------------------
    def _compute_similarity(self) -> np.ndarray:
        """Eqs. (19)-(20) from the devices' uploaded feature samples."""
        samples = [
            self._feature_samples[d.profile.device_id] for d in self.devices
        ]
        distances = distance_matrix(
            samples, metric=self.config.similarity_metric, seed=self.config.seed
        )
        return regularize_similarity(
            similarity_from_distances(distances), temperature=0.05
        )

    def _fleet_ready(self, backbones_equal: Optional[bool] = None) -> bool:
        """Whether this cluster's local updates can run fleet-batched.

        The fleet trainer serves every device from one backbone instance
        and one stacked graph, so it needs ≥2 devices that all hold
        value-identical frozen backbones and RNG-free forwards.  Pass
        ``backbones_equal`` when the caller already ran the
        :func:`~repro.train.serving.backbones_equivalent` sweep — it is
        O(cluster × backbone params) and worth not repeating.
        """
        from repro.train import fleet

        devices = self.devices
        if not (
            self.config.fleet_training
            and len(devices) > 1
            and all(d.backbone is not None and d.header is not None for d in devices)
        ):
            return False
        if backbones_equal is None:
            backbones_equal = serving.backbones_equivalent(
                [d.backbone for d in devices]
            )
        return backbones_equal and fleet.fleet_supported(
            devices[0].backbone, [d.header for d in devices]
        )

    def aggregation_loop(self, num_rounds: Optional[int] = None) -> np.ndarray:
        """Run T single-loop rounds; returns the similarity matrix used."""
        from repro.train import fleet

        rounds = num_rounds if num_rounds is not None else self.config.aggregation_rounds
        # Eligibility is loop-invariant: backbones are frozen during the
        # aggregation rounds (only header masks/weights change), so run
        # the parameter-equivalence sweep once, not once per round.
        use_fleet = self._fleet_ready()
        for t in range(rounds):
            self._pending_importance.clear()
            include_features = self.similarity is None
            if use_fleet:
                # Fleet-batched local updates: every device's header
                # trains in one graph per round with a single fused
                # fleet-optimizer step; importance sets come back
                # bit-identical to the per-device rounds, and the wire
                # messages are built per device in device order so the
                # traffic ledger matches exactly.
                sets = fleet.fleet_importance_rounds(
                    self.devices[0].backbone,
                    [d.header for d in self.devices],
                    [d.dataset for d in self.devices],
                    [d.importance_config for d in self.devices],
                )
                messages = [
                    device.build_importance_message(
                        q, include_feature_sample=include_features
                    )
                    for device, q in zip(self.devices, sets)
                ]
            else:
                # The local importance rounds (header training + Taylor
                # accumulation) are independent per device — fan out.  The
                # network sends stay serial and in device order so the
                # traffic ledger and message sequence match the serial run.
                messages = parallel_map(
                    lambda device: device.importance_round(
                        include_feature_sample=include_features
                    ),
                    self.devices,
                    max_workers=self.config.parallel_devices,
                )
            for message in messages:
                message.receiver = self.name
                self.network.send(message)

            if self.similarity is None:
                self.similarity = self._compute_similarity()

            ordered = [
                self._pending_importance[d.profile.device_id] for d in self.devices
            ]
            personalized = aggregate_importance_sets(ordered, self.similarity)
            for device, q_prime in zip(self.devices, personalized):
                self.network.send(
                    Message(
                        self.name,
                        device.name,
                        MessageKind.PERSONALIZED_SET,
                        {"importance": q_prime.astype(np.float32)},
                    )
                )
        assert self.similarity is not None
        return self.similarity

    # ------------------------------------------------------------------
    #: Sentinel distinguishing "caller did not pass max_workers" (use the
    #: config) from an explicit ``None`` (serial, per the executor contract).
    _USE_CONFIG_WORKERS = object()

    def finalize(self, max_workers: WorkerSpec = _USE_CONFIG_WORKERS) -> List[dict]:
        """Final device-side fine-tuning and evaluation.

        Each device's finetune+eval touches only that device's state, so
        the loop fans out across ``max_workers`` threads; results stay in
        device order.  When the argument is omitted the config's
        ``parallel_devices`` applies; an explicit value — including
        ``None``/0/1 for serial — follows the
        :mod:`repro.distributed.executor` contract verbatim.

        With ``batched_serving`` (the default) and a cluster whose
        devices all hold the same frozen backbone — the invariant
        :meth:`distribute_models` establishes — the evaluation half is
        served through one batched backbone forward per round
        (:func:`repro.train.serving.batched_evaluate_headers`) instead of
        one forward per device; fine-tuning still fans out per device.
        Both halves are numerically identical to the per-device loop.
        """
        if max_workers is EdgeServer._USE_CONFIG_WORKERS:
            max_workers = self.config.parallel_devices
        devices = self.devices
        cluster_ready = len(devices) > 1 and all(
            d.backbone is not None and d.header is not None for d in devices
        )
        # One equivalence sweep feeds both the batched-serving and the
        # fleet eligibility checks.
        backbones_equal = cluster_ready and (
            self.config.batched_serving or self.config.fleet_training
        ) and serving.backbones_equivalent([d.backbone for d in devices])
        fleet_ready = self._fleet_ready(backbones_equal=backbones_equal)

        if fleet_ready:
            # Fleet-batched fine-tuning: one graph + one fused step per
            # round for the whole cluster, replacing the per-device
            # thread fan-out (bit-identical traces).  Independent of
            # ``batched_serving``, which only governs evaluation.
            from repro.train import fleet

            fleet.train_headers_fleet(
                devices[0].backbone,
                [d.header for d in devices],
                [d.dataset for d in devices],
                [d.finetune_config() for d in devices],
            )
        if self.config.batched_serving and backbones_equal:
            if not fleet_ready:
                parallel_map(
                    lambda device: device.finetune(),
                    devices,
                    max_workers=max_workers,
                )
            return serving.batched_evaluate_headers(
                devices[0].backbone,
                [d.header for d in devices],
                [d.eval_dataset() for d in devices],
            )
        if fleet_ready:
            return parallel_map(
                lambda device: device.evaluate(),
                devices,
                max_workers=max_workers,
            )
        return parallel_map(
            lambda device: device.finalize_round(),
            self.devices,
            max_workers=max_workers,
        )
