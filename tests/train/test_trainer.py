"""Tests for training and evaluation loops."""

import numpy as np
import pytest

from repro.data import make_cifar100_like
from repro.models import (
    DAGHeader,
    ViTConfig,
    VisionTransformer,
    build_fixed_header,
)
from repro.models.blocks import BlockSpec, HeaderSpec
from repro.train import (
    TrainConfig,
    evaluate_header,
    evaluate_model,
    train_header,
    train_model,
)


@pytest.fixture(scope="module")
def setup():
    gen = make_cifar100_like(num_classes=4, image_size=8)
    data = gen.generate(samples_per_class=16, seed=1)
    cfg = ViTConfig(image_size=8, patch_size=4, embed_dim=16, depth=2,
                    num_heads=4, num_classes=4)
    return cfg, data


class TestTrainModel:
    def test_accuracy_improves(self, setup):
        cfg, data = setup
        model = VisionTransformer(cfg, seed=0)
        report = train_model(model, data, TrainConfig(epochs=3, seed=0))
        assert report.epoch_accuracies[-1] > report.epoch_accuracies[0]
        assert report.final_accuracy == report.epoch_accuracies[-1]

    def test_max_batches_cap(self, setup):
        cfg, data = setup
        model = VisionTransformer(cfg, seed=0)
        report = train_model(
            model, data, TrainConfig(epochs=1, batch_size=8, max_batches_per_epoch=2)
        )
        assert len(report.epoch_losses) == 1

    def test_empty_report_is_nan(self):
        from repro.train.trainer import TrainReport

        report = TrainReport()
        assert np.isnan(report.final_loss)
        assert np.isnan(report.final_accuracy)

    def test_model_left_in_eval_mode(self, setup):
        cfg, data = setup
        model = VisionTransformer(cfg, seed=0)
        train_model(model, data, TrainConfig(epochs=1))
        assert not model.training


class TestTrainHeader:
    def test_frozen_backbone_unchanged(self, setup):
        cfg, data = setup
        model = VisionTransformer(cfg, seed=0)
        header = build_fixed_header("mlp", cfg.embed_dim, cfg.num_patches, 4)
        before = model.state_dict()
        train_header(model, header, data, TrainConfig(epochs=1), freeze_backbone=True)
        after = model.state_dict()
        for key in before:
            np.testing.assert_allclose(before[key], after[key])

    def test_unfrozen_backbone_changes(self, setup):
        cfg, data = setup
        model = VisionTransformer(cfg, seed=0)
        header = build_fixed_header("mlp", cfg.embed_dim, cfg.num_patches, 4)
        before = model.state_dict()
        train_header(model, header, data, TrainConfig(epochs=1), freeze_backbone=False)
        changed = any(
            not np.allclose(before[k], v) for k, v in model.state_dict().items()
        )
        assert changed

    def test_header_learns(self, setup):
        cfg, data = setup
        model = VisionTransformer(cfg, seed=0)
        train_model(model, data, TrainConfig(epochs=2, seed=0))
        header = build_fixed_header("cnn", cfg.embed_dim, cfg.num_patches, 4)
        report = train_header(model, header, data, TrainConfig(epochs=3, seed=0))
        assert report.final_accuracy > 0.5

    def test_mask_enforced_through_training(self, setup):
        cfg, data = setup
        model = VisionTransformer(cfg, seed=0)
        spec = HeaderSpec(blocks=(BlockSpec(0, 1, 1, 3),))
        header = DAGHeader(cfg.embed_dim, cfg.num_patches, 4, spec)
        count = header.parameter_count()
        keep = np.ones(count, dtype=bool)
        keep[:50] = False
        header.set_parameter_mask(keep)
        train_header(model, header, data, TrainConfig(epochs=1, seed=0))
        # Masked entries must remain exactly zero after optimizer steps.
        flat = header.parameter_vector()
        np.testing.assert_allclose(flat[:50], 0.0)


class TestEvaluate:
    def test_evaluate_model_fields(self, setup):
        cfg, data = setup
        model = VisionTransformer(cfg, seed=0)
        metrics = evaluate_model(model, data)
        assert set(metrics) == {"accuracy", "loss", "samples"}
        assert metrics["samples"] == len(data)

    def test_evaluate_model_max_batches(self, setup):
        cfg, data = setup
        model = VisionTransformer(cfg, seed=0)
        metrics = evaluate_model(model, data, batch_size=8, max_batches=1)
        assert metrics["samples"] == 8

    def test_evaluate_header(self, setup):
        cfg, data = setup
        model = VisionTransformer(cfg, seed=0)
        header = build_fixed_header("linear", cfg.embed_dim, cfg.num_patches, 4)
        metrics = evaluate_header(model, header, data)
        assert 0.0 <= metrics["accuracy"] <= 1.0

    def test_evaluate_empty_raises(self, setup):
        cfg, data = setup
        from repro.data import ArrayDataset

        model = VisionTransformer(cfg, seed=0)
        empty = ArrayDataset(np.zeros((0, 3, 8, 8)), np.zeros(0, dtype=int), 4)
        with pytest.raises(ValueError):
            evaluate_model(model, empty)
