"""Tests for protocol messages and the accounting network."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.distributed import Message, MessageKind, Network, payload_nbytes


class TestPayloadAccounting:
    def test_array_payload(self):
        arr = np.zeros(100, dtype=np.float64)
        assert payload_nbytes({"x": arr}) == 800

    def test_float32_is_half(self):
        assert payload_nbytes({"x": np.zeros(100, dtype=np.float32)}) == 400

    def test_state_dict_payload(self):
        state = {"w": np.zeros((10, 10)), "b": np.zeros(10)}
        size = payload_nbytes({"state": state})
        assert size >= 880  # arrays + manifest

    def test_dataset_payload_uses_nbytes(self):
        ds = ArrayDataset(np.zeros((4, 1, 2, 2)), np.zeros(4, dtype=int), 2)
        assert payload_nbytes({"dataset": ds}) == ds.nbytes()

    def test_scalar_metadata_is_cheap(self):
        size = payload_nbytes({"width": 0.5, "depth": 3})
        assert 0 < size < 100

    def test_array_lists(self):
        arrays = [np.zeros(10), np.zeros(20)]
        assert payload_nbytes({"orders": arrays}) >= 240


class TestMessage:
    def test_auto_size(self):
        msg = Message("a", "b", MessageKind.IMPORTANCE_SET, {"q": np.zeros(50)})
        assert msg.nbytes == 400

    def test_explicit_size_preserved(self):
        msg = Message("a", "b", MessageKind.ACK, nbytes=7)
        assert msg.nbytes == 7

    def test_sequence_monotone(self):
        a = Message("a", "b", MessageKind.ACK, nbytes=1)
        b = Message("a", "b", MessageKind.ACK, nbytes=1)
        assert b.sequence > a.sequence

    def test_upload_classification(self):
        assert MessageKind.CLUSTER_STATS.is_upload
        assert MessageKind.IMPORTANCE_SET.is_upload
        assert MessageKind.DATASET_UPLOAD.is_upload
        assert not MessageKind.BACKBONE_ASSIGNMENT.is_upload
        assert not MessageKind.MODEL_DISTRIBUTION.is_upload
        assert not MessageKind.PERSONALIZED_SET.is_upload


class TestNetwork:
    def test_routing(self):
        net = Network()
        received = []
        net.register("sink", lambda m: received.append(m))
        net.send(Message("src", "sink", MessageKind.ACK, nbytes=5))
        assert len(received) == 1

    def test_unknown_receiver(self):
        net = Network()
        with pytest.raises(KeyError):
            net.send(Message("a", "nowhere", MessageKind.ACK, nbytes=1))

    def test_duplicate_registration(self):
        net = Network()
        net.register("x", lambda m: None)
        with pytest.raises(ValueError):
            net.register("x", lambda m: None)

    def test_stats_accumulate(self):
        net = Network()
        net.register("sink", lambda m: None)
        net.send(Message("a", "sink", MessageKind.IMPORTANCE_SET, {"q": np.zeros(10)}))
        net.send(Message("a", "sink", MessageKind.PERSONALIZED_SET, {"q": np.zeros(10)}))
        assert net.stats.message_count == 2
        assert net.stats.upload_bytes == 80
        assert net.stats.download_bytes == 80
        assert net.stats.total_bytes == 160

    def test_by_kind_and_pair(self):
        net = Network()
        net.register("sink", lambda m: None)
        net.send(Message("a", "sink", MessageKind.ACK, nbytes=3))
        net.send(Message("b", "sink", MessageKind.ACK, nbytes=4))
        assert net.stats.by_kind["ack"] == 7
        assert net.stats.by_pair[("a", "sink")] == 3
        assert net.stats.by_pair[("b", "sink")] == 4

    def test_kind_sequence(self):
        net = Network()
        net.register("sink", lambda m: None)
        net.send(Message("a", "sink", MessageKind.CLUSTER_STATS, nbytes=1))
        net.send(Message("a", "sink", MessageKind.ACK, nbytes=1))
        assert net.kind_sequence() == ["cluster_stats", "ack"]

    def test_reset(self):
        net = Network()
        net.register("sink", lambda m: None)
        net.send(Message("a", "sink", MessageKind.ACK, nbytes=3))
        net.reset_stats()
        assert net.stats.total_bytes == 0
        assert net.log == []

    def test_nested_send_in_handler(self):
        """Handlers may send follow-up messages (cloud replies to edges)."""
        net = Network()
        net.register("b", lambda m: None)

        def relay(message):
            net.send(Message("a", "b", MessageKind.ACK, nbytes=2))

        net.register("a", relay)
        net.send(Message("x", "a", MessageKind.CLUSTER_STATS, nbytes=1))
        assert net.stats.message_count == 2

    def test_megabyte_helpers(self):
        net = Network()
        net.register("sink", lambda m: None)
        net.send(Message("a", "sink", MessageKind.DATASET_UPLOAD, nbytes=2_000_000))
        assert net.stats.upload_megabytes() == pytest.approx(2.0)
        assert net.stats.total_megabytes() == pytest.approx(2.0)
