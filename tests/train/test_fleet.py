"""Fleet-batched training reproduces the serial per-device path exactly.

:mod:`repro.train.fleet` trains many headers over one shared frozen
backbone in one computation graph per round (stacked logits, per-member
block-diagonal loss masking, one fused fleet-optimizer step).  These
tests assert the float64 bit-for-bit contract against the serial
reference paths (:func:`repro.train.trainer.train_header`,
:func:`repro.core.header_importance.compute_importance_set`) across
heterogeneous batch counts, epochs, empty datasets and partial-round
schedules, plus the segmented-loss and fleet-optimizer primitives.
"""

import numpy as np
import pytest

from repro.core.header_importance import ImportanceConfig, compute_importance_set
from repro.data.dataset import ArrayDataset
from repro.data.synthetic import make_cifar100_like
from repro.models.blocks import HeaderSpec
from repro.models.header_dag import DAGHeader
from repro.models.headers import MLPHeader
from repro.models.vit import VisionTransformer, ViTConfig
from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear, Sequential
from repro.nn.optim import Adam, FleetOptimizer
from repro.nn.tensor import Tensor, concatenate, using_dtype
from repro.train.fleet import fleet_importance_rounds, fleet_supported, train_headers_fleet
from repro.train.trainer import TrainConfig, train_header

VIT = ViTConfig(num_classes=6, depth=1, embed_dim=16, num_heads=4, image_size=16)
SPEC = HeaderSpec.from_sequence([0, 1, 0, 2, 1, 2, 2, 0])


@pytest.fixture(scope="module")
def backbone():
    from tests.helpers import reset_engine_state

    reset_engine_state()
    return VisionTransformer(VIT, seed=0)


def _datasets(sizes, seed0=10):
    gen = make_cifar100_like(num_classes=VIT.num_classes, image_size=VIT.image_size, seed=0)
    out = []
    for i, n in enumerate(sizes):
        if n == 0:
            ds = gen.generate(samples_per_class=1, seed=seed0 + i)
            out.append(ArrayDataset(ds.images[:0], ds.labels[:0], ds.num_classes, name="empty"))
        else:
            out.append(gen.generate(samples_per_class=n, seed=seed0 + i))
    return out


def _dag_headers(count, seed0=50):
    return [
        DAGHeader(VIT.embed_dim, VIT.num_patches, VIT.num_classes, SPEC,
                  rng=np.random.default_rng(seed0 + i))
        for i in range(count)
    ]


def _mlp_headers(count, seed0=70):
    return [
        MLPHeader(VIT.embed_dim, VIT.num_patches, VIT.num_classes,
                  rng=np.random.default_rng(seed0 + i))
        for i in range(count)
    ]


def _assert_headers_equal(serial_headers, fleet_headers):
    for s, f in zip(serial_headers, fleet_headers):
        for (name, a), (_, b) in zip(s.named_parameters(), f.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)


class TestTrainFleetParity:
    def test_heterogeneous_batch_counts_bit_for_bit(self, backbone):
        """Members with different dataset sizes (and so different batch
        counts per epoch) drop out of late rounds; every trace must still
        match the serial loop exactly."""
        datasets = _datasets([4, 7, 3])
        configs = [TrainConfig(epochs=2, batch_size=8, seed=7 + i) for i in range(3)]
        serial = _dag_headers(3)
        reports_serial = [
            train_header(backbone, h, d, config=c, freeze_backbone=True)
            for h, d, c in zip(serial, datasets, configs)
        ]
        fleet = _dag_headers(3)
        reports_fleet = train_headers_fleet(backbone, fleet, datasets, configs)
        for rs, rf in zip(reports_serial, reports_fleet):
            assert rs.epoch_losses == rf.epoch_losses
            assert rs.epoch_accuracies == rf.epoch_accuracies
        _assert_headers_equal(serial, fleet)

    def test_heterogeneous_epochs_and_batch_caps(self, backbone):
        datasets = _datasets([5, 5, 5], seed0=20)
        configs = [
            TrainConfig(epochs=1, batch_size=8, seed=1),
            TrainConfig(epochs=3, batch_size=4, seed=2, max_batches_per_epoch=2),
            TrainConfig(epochs=2, batch_size=16, seed=3),
        ]
        serial = _mlp_headers(3)
        reports_serial = [
            train_header(backbone, h, d, config=c, freeze_backbone=True)
            for h, d, c in zip(serial, datasets, configs)
        ]
        fleet = _mlp_headers(3)
        reports_fleet = train_headers_fleet(backbone, fleet, datasets, configs)
        for rs, rf in zip(reports_serial, reports_fleet):
            assert rs.epoch_losses == rf.epoch_losses
            assert rs.epoch_accuracies == rf.epoch_accuracies
        _assert_headers_equal(serial, fleet)

    def test_empty_dataset_member(self, backbone):
        """An empty member records nan losses / zero accuracy for every
        epoch, never steps, and leaves the other members' traces
        untouched — matching the serial loop member by member."""
        datasets = _datasets([4, 0, 3], seed0=30)
        configs = [TrainConfig(epochs=2, batch_size=8, seed=5 + i) for i in range(3)]
        serial = _mlp_headers(3, seed0=90)
        reports_serial = [
            train_header(backbone, h, d, config=c, freeze_backbone=True)
            for h, d, c in zip(serial, datasets, configs)
        ]
        fleet = _mlp_headers(3, seed0=90)
        reports_fleet = train_headers_fleet(backbone, fleet, datasets, configs)
        for rs, rf in zip(reports_serial, reports_fleet):
            np.testing.assert_array_equal(rs.epoch_losses, rf.epoch_losses)
            assert rs.epoch_accuracies == rf.epoch_accuracies
        assert all(np.isnan(reports_fleet[1].epoch_losses))
        assert reports_fleet[1].epoch_accuracies == [0.0, 0.0]
        _assert_headers_equal(serial, fleet)

    def test_stochastic_header_falls_back_to_serial(self, backbone):
        datasets = _datasets([4, 4], seed0=40)

        def build():
            headers = _mlp_headers(2, seed0=110)
            headers[1].dropout = Dropout(p=0.5, seed=3)
            return headers

        assert not fleet_supported(backbone, build())
        configs = [TrainConfig(epochs=1, batch_size=8, seed=i) for i in range(2)]
        serial = build()
        reports_serial = [
            train_header(backbone, h, d, config=c, freeze_backbone=True)
            for h, d, c in zip(serial, datasets, configs)
        ]
        fleet = build()
        reports_fleet = train_headers_fleet(backbone, fleet, datasets, configs)
        for rs, rf in zip(reports_serial, reports_fleet):
            assert rs.epoch_losses == rf.epoch_losses
        _assert_headers_equal(serial, fleet)

    def test_member_opt_out_trains_serially_rest_fleet(self, backbone, monkeypatch):
        """An opted-out member routes through the serial loop; the rest
        still fleet-batch, and every trace matches the serial path."""
        datasets = _datasets([4, 4, 4], seed0=45)
        configs = [
            TrainConfig(epochs=1, batch_size=8, seed=0),
            TrainConfig(epochs=1, batch_size=8, seed=1, fleet_training=False),
            TrainConfig(epochs=1, batch_size=8, seed=2),
        ]
        serial = _mlp_headers(3, seed0=120)
        reports_serial = [
            train_header(backbone, h, d, config=c, freeze_backbone=True)
            for h, d, c in zip(serial, datasets, configs)
        ]

        calls = []
        import repro.train.fleet as fleet_mod

        original = fleet_mod.train_header

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(fleet_mod, "train_header", counting)
        fleet = _mlp_headers(3, seed0=120)
        reports_fleet = train_headers_fleet(backbone, fleet, datasets, configs)
        assert len(calls) == 1  # only the opted-out member went serial
        for rs, rf in zip(reports_serial, reports_fleet):
            assert rs.epoch_losses == rf.epoch_losses
            assert rs.epoch_accuracies == rf.epoch_accuracies
        _assert_headers_equal(serial, fleet)

    def test_length_mismatch_raises(self, backbone):
        with pytest.raises(ValueError, match="headers"):
            train_headers_fleet(backbone, _mlp_headers(2), _datasets([4]))


class TestImportanceFleetParity:
    def test_importance_sets_bit_for_bit(self, backbone):
        datasets = _datasets([4, 6, 3], seed0=60)
        configs = [ImportanceConfig(seed=3 + i) for i in range(3)]
        serial = _dag_headers(3, seed0=130)
        sets_serial = [
            compute_importance_set(backbone, h, d, config=c)
            for h, d, c in zip(serial, datasets, configs)
        ]
        fleet = _dag_headers(3, seed0=130)
        sets_fleet = fleet_importance_rounds(backbone, fleet, datasets, configs)
        for a, b in zip(sets_serial, sets_fleet):
            np.testing.assert_array_equal(a, b)
        _assert_headers_equal(serial, fleet)

    def test_second_round_continues_from_trained_state(self, backbone):
        """Aggregation runs several importance rounds back to back; each
        fleet round must continue bit-for-bit from the previous one."""
        datasets = _datasets([4, 5], seed0=65)
        configs = [ImportanceConfig(seed=1 + i) for i in range(2)]
        serial = _dag_headers(2, seed0=140)
        fleet = _dag_headers(2, seed0=140)
        for _round in range(2):
            sets_serial = [
                compute_importance_set(backbone, h, d, config=c)
                for h, d, c in zip(serial, datasets, configs)
            ]
            sets_fleet = fleet_importance_rounds(backbone, fleet, datasets, configs)
            for a, b in zip(sets_serial, sets_fleet):
                np.testing.assert_array_equal(a, b)
        _assert_headers_equal(serial, fleet)

    def test_empty_dataset_raises_like_serial(self, backbone):
        datasets = _datasets([4, 0], seed0=68)
        with pytest.raises(ValueError, match="no batches"):
            fleet_importance_rounds(
                backbone, _dag_headers(2, seed0=150), datasets,
                [ImportanceConfig(seed=0)] * 2,
            )


class TestFleetCrossEntropy:
    def test_matches_per_slice_cross_entropy(self):
        # Exact-equality sum comparison against a Python-float
        # accumulator: only holds when the tensor total is float64 too.
        with using_dtype("float64"):
            rng = np.random.default_rng(0)
            logits_data = rng.normal(size=(12, 5))
            targets = rng.integers(0, 5, size=12)
            segments = [(0, 4), (4, 9), (9, 12)]

            stacked = Tensor(logits_data.copy(), requires_grad=True)
            total, losses = F.fleet_cross_entropy(stacked, targets, segments)
            total.backward()

            acc = 0.0
            for (lo, hi), seg_loss in zip(segments, losses):
                ref = Tensor(logits_data[lo:hi].copy(), requires_grad=True)
                ref_loss = F.cross_entropy(ref, targets[lo:hi])
                ref_loss.backward()
                assert seg_loss == float(ref_loss.data)
                np.testing.assert_array_equal(stacked.grad[lo:hi], ref.grad)
                acc = acc + float(ref_loss.data)
            assert float(total.data) == acc

    def test_block_diagonal_masking(self):
        """A segment's gradient rows depend only on that segment's own
        rows: perturbing another segment leaves them bit-identical."""
        rng = np.random.default_rng(1)
        base = rng.normal(size=(6, 3))
        targets = np.array([0, 1, 2, 0, 1, 2])

        def grad_of(data):
            logits = Tensor(data.copy(), requires_grad=True)
            total, _losses = F.fleet_cross_entropy(logits, targets, [(0, 3), (3, 6)])
            total.backward()
            return logits.grad

        perturbed = base.copy()
        perturbed[3:] += rng.normal(size=(3, 3))
        np.testing.assert_array_equal(grad_of(base)[:3], grad_of(perturbed)[:3])
        assert np.any(grad_of(base)[3:] != grad_of(perturbed)[3:])

    def test_non_partitioning_segments_raise(self):
        logits = Tensor(np.zeros((4, 2)), requires_grad=True)
        with pytest.raises(ValueError, match="segment"):
            F.fleet_cross_entropy(logits, np.zeros(4, dtype=int), [(0, 2)])
        with pytest.raises(ValueError, match="segment"):
            F.fleet_cross_entropy(logits, np.zeros(4, dtype=int), [(0, 2), (3, 4)])


class TestFleetOptimizer:
    def _members(self, seed0=0, count=4):
        return [Linear(5, 3, rng=np.random.default_rng(seed0 + i)) for i in range(count)]

    def test_partial_round_schedule_matches_per_member_adam(self):
        rng = np.random.default_rng(0)
        Xs = [rng.normal(size=(6, 5)) for _ in range(4)]
        ys = [rng.integers(0, 3, size=6) for _ in range(4)]
        schedule = [[0, 1, 2, 3], [0, 2], [1], [0, 1, 2, 3], [3], [0, 1, 2, 3]]

        serial = self._members()
        opts = [Adam(m.parameters(), lr=1e-2) for m in serial]
        fleet = self._members()
        fopt = FleetOptimizer([m.parameters() for m in fleet], lr=1e-2)
        for active in schedule:
            for m in active:
                loss = F.cross_entropy(serial[m](Tensor(Xs[m])), ys[m])
                opts[m].zero_grad()
                loss.backward()
                opts[m].step()
            logits = [fleet[m](Tensor(Xs[m])) for m in active]
            stacked = concatenate(logits, axis=0) if len(logits) > 1 else logits[0]
            bounds = np.concatenate(([0], np.cumsum([Xs[m].shape[0] for m in active])))
            total, _losses = F.fleet_cross_entropy(
                stacked,
                np.concatenate([ys[m] for m in active]),
                list(zip(bounds[:-1], bounds[1:])),
            )
            fopt.zero_grad(active)
            total.backward()
            fopt.step(active)
        for s, f in zip(serial, fleet):
            np.testing.assert_array_equal(s.weight.data, f.weight.data)
            np.testing.assert_array_equal(s.bias.data, f.bias.data)

    def test_per_member_learning_rates(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(6, 5))
        y = rng.integers(0, 3, size=6)
        lrs = [1e-2, 5e-3]
        serial = self._members(seed0=30, count=2)
        opts = [Adam(m.parameters(), lr=lr) for m, lr in zip(serial, lrs)]
        fleet = self._members(seed0=30, count=2)
        fopt = FleetOptimizer([m.parameters() for m in fleet], lr=lrs)
        for _ in range(3):
            for m, opt in zip(serial, opts):
                loss = F.cross_entropy(m(Tensor(X)), y)
                opt.zero_grad()
                loss.backward()
                opt.step()
            logits = [m(Tensor(X)) for m in fleet]
            stacked = concatenate(logits, axis=0)
            total, _losses = F.fleet_cross_entropy(
                stacked, np.concatenate([y, y]), [(0, 6), (6, 12)]
            )
            fopt.zero_grad()
            total.backward()
            fopt.step()
        for s, f in zip(serial, fleet):
            np.testing.assert_array_equal(s.weight.data, f.weight.data)

    def test_shared_parameters_rejected(self):
        member = Linear(4, 2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="share"):
            FleetOptimizer([member.parameters(), member.parameters()], lr=1e-3)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="no parameters"):
            FleetOptimizer([], lr=1e-3)

    def test_mask_rebind_synced_before_step(self):
        """A parameter rebound between rounds (e.g. mask installation)
        is copied back into the flat buffer before stepping."""
        fleet = self._members(seed0=60, count=2)
        fopt = FleetOptimizer([m.parameters() for m in fleet], lr=1e-2)
        rng = np.random.default_rng(1)
        X = rng.normal(size=(4, 5))
        y = rng.integers(0, 3, size=4)

        def one_round():
            logits = [m(Tensor(X)) for m in fleet]
            stacked = concatenate(logits, axis=0)
            total, _losses = F.fleet_cross_entropy(
                stacked, np.concatenate([y, y]), [(0, 4), (4, 8)]
            )
            fopt.zero_grad()
            total.backward()
            fopt.step()

        one_round()
        # Rebind one parameter's storage, like DAGHeader.set_parameter_mask.
        w = fleet[0].weight
        w.data = w.data * np.ones_like(w.data)
        rebound = w.data
        one_round()
        assert w.data is not rebound  # re-adopted into the flat buffer
        assert any(
            w.data is view
            for group in fopt._groups
            for view in group.data_views
        )
