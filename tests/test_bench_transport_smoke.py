"""Tier-1 smoke run of ``benchmarks/bench_transport.py``.

The perf benches only run when a perf PR invokes them; this test drives
the transport bench end to end in its ``--smoke`` mode (tiny shapes, no
floor assertions, ``BENCH_perf.json`` untouched) so the script itself
cannot rot between perf PRs — its imports, the loopback-vs-TCP campaign
with its bit-parity asserts, the wire-codec-vs-npz loops, and the
record plumbing all execute on every test run.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestBenchTransportSmoke:
    def test_smoke_mode_runs_clean(self):
        trajectory = REPO_ROOT / "BENCH_perf.json"
        before = trajectory.read_bytes() if trajectory.exists() else None
        full_results = REPO_ROOT / "bench_results" / "bench_transport.json"
        full_before = full_results.read_bytes() if full_results.exists() else None
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "benchmarks" / "bench_transport.py"),
                "--smoke",
            ],
            capture_output=True,
            text=True,
            timeout=500,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, result.stderr
        assert "bench_transport_smoke" in result.stdout
        assert "transport_tcp_overhead" in result.stdout

        # Smoke mode must never touch the committed trajectory or the
        # full run's diagnostic records.
        after = trajectory.read_bytes() if trajectory.exists() else None
        assert before == after
        full_after = full_results.read_bytes() if full_results.exists() else None
        assert full_before == full_after

        # The smoke payload is the full machine-readable schema.
        payload = json.loads(
            (REPO_ROOT / "bench_results" / "bench_transport_smoke.json").read_text()
        )
        assert payload["schema"] == "perf/v1"
        labels = {r["label"] for r in payload["results"]}
        assert {"transport_tcp_overhead", "wire_codec_vs_npz"} <= labels
        assert all(r.get("floor") is None for r in payload["results"])
        overhead = next(
            r for r in payload["results"] if r["label"] == "transport_tcp_overhead"
        )
        # The bench asserted bit-parity before recording; both legs ran.
        assert overhead["tcp_s"] > 0 and overhead["loopback_s"] > 0
        assert overhead["messages"] > 0
