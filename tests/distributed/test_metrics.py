"""Tests for system-level metrics."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.distributed import (
    NormalizedTradeoff,
    centralized_upload_bytes,
    energy_efficiency_ratio,
    relative_upload,
    size_efficiency_ratio,
)


def dataset(n=10):
    return ArrayDataset(np.zeros((n, 1, 2, 2)), np.zeros(n, dtype=int), 2)


class TestRatios:
    def test_energy_efficiency(self):
        assert energy_efficiency_ratio(0.8, 2.0) == pytest.approx(0.4)

    def test_size_efficiency(self):
        assert size_efficiency_ratio(0.9, 3.0) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            energy_efficiency_ratio(0.5, 0.0)
        with pytest.raises(ValueError):
            size_efficiency_ratio(0.5, -1.0)


class TestTradeoff:
    def test_score_normalizes(self):
        t = NormalizedTradeoff(loss_scale=2.0, energy_scale=4.0, size_scale=8.0)
        assert t.score(2.0, 4.0, 8.0) == pytest.approx(3.0)

    def test_inverse(self):
        t = NormalizedTradeoff(1.0, 1.0, 1.0)
        assert t.inverse(1.0, 1.0, 2.0) == pytest.approx(0.25)

    def test_lower_is_better(self):
        t = NormalizedTradeoff(1.0, 1.0, 1.0)
        good = t.score(0.5, 0.5, 0.5)
        bad = t.score(1.0, 1.0, 1.0)
        assert good < bad


class TestUploadAccounting:
    def test_centralized_sums_datasets(self):
        sets = [dataset(5), dataset(10)]
        expected = sets[0].nbytes() + sets[1].nbytes()
        assert centralized_upload_bytes(sets) == expected

    def test_relative_upload(self):
        sets = [dataset(100)]
        baseline = centralized_upload_bytes(sets)
        assert relative_upload(baseline // 10, sets) == pytest.approx(0.1, rel=0.01)

    def test_relative_upload_zero_baseline(self):
        empty = ArrayDataset(np.zeros((0, 1, 2, 2)), np.zeros(0, dtype=int), 2)
        with pytest.raises(ValueError):
            relative_upload(100, [empty])
