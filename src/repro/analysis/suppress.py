"""Per-line suppression comments for reprolint.

Syntax (one comment, one or more rule tokens, a mandatory one-line
justification after ``--``)::

    risky_line()  # reprolint: <token>[, <token>...] -- <why this is correct>

A trailing comment suppresses findings on its own line; a comment that
stands alone on its line suppresses findings on the **next code line**
— intervening blank lines and plain continuation comments are skipped,
so the suppression may open a multi-line comment block whose remaining
lines elaborate on the justification.  Tokens name rules by
their suppression token (e.g. ``fixed-rng`` for DET002, ``broad-except``
for EXC001 — catalogue in ``ANALYSIS.md``).

Suppressions are themselves linted: a missing justification is SUP001,
an unknown token is SUP002, and a suppression that matches no finding
on its line is SUP003 — so every suppression in the tree is both
justified and load-bearing, and deleting the finding it covers without
deleting the comment fails the lint.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import List, Set, Tuple

__all__ = ["Suppression", "scan_suppressions"]

_PATTERN = re.compile(r"#\s*reprolint:\s*(?P<body>.*)$")
_TOKEN_SPLIT = re.compile(r"[,\s]+")


@dataclass
class Suppression:
    """One parsed ``# reprolint:`` comment."""

    #: Line the suppression applies to (the comment's own line for a
    #: trailing comment, the next line for a standalone comment line).
    line: int
    #: Physical line of the comment itself (where SUP findings anchor).
    comment_line: int
    tokens: Tuple[str, ...]
    justification: str
    #: Rule tokens that actually absorbed a finding (driver bookkeeping).
    used_tokens: Set[str] = field(default_factory=set)

    @property
    def used(self) -> bool:
        return bool(self.used_tokens)


def scan_suppressions(source: str) -> List[Suppression]:
    """Extract every reprolint suppression comment from *source*.

    Comments are found with :mod:`tokenize`, so ``# reprolint:`` text
    inside string literals (docstrings, rule fixtures) is never
    misread as a suppression.  Returns an empty list for source that
    does not tokenize — the lint driver reports the parse error
    separately.
    """
    out: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(tok.string)
        if match is None:
            continue
        body = match.group("body").strip()
        head, sep, justification = body.partition("--")
        names = tuple(t for t in _TOKEN_SPLIT.split(head.strip()) if t)
        comment_line = tok.start[0]
        standalone = tok.line.strip().startswith("#")
        target = comment_line
        if standalone:
            # Bind to the next code line, stepping over the rest of the
            # comment block and any blank lines.
            target = comment_line + 1
            while target <= len(lines):
                stripped = lines[target - 1].strip()
                if stripped and not stripped.startswith("#"):
                    break
                target += 1
        out.append(
            Suppression(
                line=target,
                comment_line=comment_line,
                tokens=names,
                justification=justification.strip() if sep else "",
            )
        )
    return out
