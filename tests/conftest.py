"""Suite-wide fixtures: deterministic engine state and a hang guard.

The autouse engine fixture makes each test start from the same engine
state (fallback-init stream at seed 0, the float32 engine default,
grad on, cold caches),
so the suite is order-independent: tests that build unseeded modules
draw from a freshly reset stream instead of inheriting whatever
position the previous test left it at.  This is what keeps the suite
safe under random test ordering without requiring ``-p no:randomly``.

The autouse timeout guard bounds every test with a SIGALRM timer
(``pytest-timeout`` is not a dependency of this repo).  The transport
layer's tests exercise sockets, heartbeats and child processes — the
guard turns any regression that would hang (a lost wakeup, an unreaped
child, a blocked read) into a clean failure naming the test.  Override
the 600 s default with ``REPRO_TEST_TIMEOUT`` (seconds; ``0`` disables).

With ``REPRO_LOCKWATCH=1`` the lock-order watchdog
(:mod:`repro.analysis.lockwatch`) is armed for the heaviest concurrency
modules: every registered engine lock is proxied, per-thread acquisition
order is recorded, and an inconsistent lock ordering raises
:class:`~repro.analysis.lockwatch.LockOrderError` naming both sites
instead of deadlocking in CI.  Disarmed (the default), registered locks
are plain ``threading.Lock`` objects — zero overhead.
"""

import os
import signal
import threading

import pytest

from tests.helpers import reset_engine_state

#: Modules whose tests overlap engine locks across threads (cross-edge
#: parallel phases, the TCP transport, the process-pool backend).
_LOCKWATCH_MODULES = (
    "test_cross_edge_parallel",
    "test_transport",
    "test_transport_chaos",
    "test_transport_kill",
    "test_process_backend",
    "test_parallel_system",
)


@pytest.fixture(autouse=True)
def _deterministic_engine_state():
    reset_engine_state()
    yield


@pytest.fixture(autouse=True)
def _lockwatch_guard(request):
    if os.environ.get("REPRO_LOCKWATCH") != "1" or not any(
        request.node.nodeid.startswith(f"tests/distributed/{mod}.py")
        for mod in _LOCKWATCH_MODULES
    ):
        yield
        return
    from repro.analysis import lockwatch

    with lockwatch.watching():
        yield


def _timeout_seconds() -> float:
    try:
        return float(os.environ.get("REPRO_TEST_TIMEOUT", "600"))
    except ValueError:
        return 600.0


@pytest.fixture(autouse=True)
def _test_timeout_guard(request):
    seconds = _timeout_seconds()
    if (
        seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"test exceeded the {seconds:g}s suite timeout guard "
            f"({request.node.nodeid}); likely a hang — see tests/conftest.py"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
