"""Early-exit inference with a multi-exit ViT (§V related work, runnable).

Attaches an intermediate exit header to a backbone, trains all exits
jointly, and shows the accuracy/compute trade-off as the early-exit
confidence threshold varies.

Run:  python examples/early_exit.py
"""

import numpy as np

from repro.data import make_cifar100_like
from repro.models import MultiExitViT, ViTConfig, VisionTransformer
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


def main() -> None:
    generator = make_cifar100_like(num_classes=8, image_size=16)
    train_data = generator.generate(samples_per_class=30, seed=1)
    test_data = generator.generate(samples_per_class=12, seed=2)

    config = ViTConfig(num_classes=8, embed_dim=32, depth=6, num_heads=4)
    backbone = VisionTransformer(config, seed=0)
    model = MultiExitViT(backbone, exit_layers=(2, 4), header_kind="mlp", seed=0)
    print(f"exits after layers {model.exit_layers} of a depth-{backbone.depth} backbone")

    print("joint training (all exits share the backbone pass) ...")
    optimizer = Adam(model.parameters(), lr=2e-3)
    x = Tensor(train_data.images)
    for epoch in range(20):
        optimizer.zero_grad()
        loss = model.joint_loss(x, train_data.labels)
        loss.backward()
        optimizer.step()
    print(f"  final joint loss: {float(loss.data):.3f}")

    x_test = Tensor(test_data.images)
    for i, logits in enumerate(model.forward_all_exits(x_test)):
        acc = (logits.data.argmax(-1) == test_data.labels).mean()
        print(f"  exit {i} (after layer {model.exit_layers[i]}): accuracy {acc:.3f}")

    print("\nearly-exit threshold sweep (accuracy vs mean executed depth):")
    for threshold in (0.5, 0.7, 0.9, 0.99):
        result = model.predict_early_exit(x_test, threshold=threshold)
        acc = (result.predictions == test_data.labels).mean()
        depth = result.mean_exit_depth(model.exit_layers)
        early = (result.exit_indices < len(model.exit_layers) - 1).mean()
        print(f"  τ={threshold:4}: accuracy {acc:.3f}, mean depth {depth:.2f}, "
              f"{early:.0%} answered early")


if __name__ == "__main__":
    main()
