"""Synthetic stand-ins for CIFAR-100 and Stanford Cars.

The offline environment has no dataset files, so the evaluation workloads
are generated: each class is a smooth random *prototype image* (low-frequency
Gaussian random field) and samples are noisy copies of their class prototype.
Two knobs control difficulty:

* ``class_separation`` — scale of the prototypes relative to the noise;
  smaller values → classes overlap more → the task is harder;
* ``fine_grained_groups`` — classes are organized into coarse groups whose
  members share most of their prototype, mimicking fine-grained recognition
  (Stanford Cars: many visually similar classes).

These two generators preserve the *relative* phenomena the paper's figures
rely on: accuracy grows then saturates with model capacity, fine-grained
data is harder than coarse data, and devices holding different class subsets
have measurably different feature distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset

try:  # scipy is a declared dependency; guard only for minimal installs
    from scipy.ndimage import gaussian_filter

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _HAVE_SCIPY = False


def _smooth(field: np.ndarray, sigma: float) -> np.ndarray:
    """Low-pass filter a random field to create image-like structure."""
    if _HAVE_SCIPY:
        return gaussian_filter(field, sigma=sigma, mode="wrap")
    # Fallback: separable box blur, repeated for approximate Gaussian.
    out = field
    width = max(1, int(sigma))
    kernel = np.ones(2 * width + 1) / (2 * width + 1)
    for axis in range(out.ndim):
        out = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="same"), axis, out
        )
    return out


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a synthetic image classification dataset."""

    num_classes: int
    image_size: int = 16
    channels: int = 3
    class_separation: float = 1.0
    noise_scale: float = 0.7
    fine_grained_groups: Optional[int] = None
    smoothing_sigma: float = 2.0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.fine_grained_groups is not None and not (
            1 <= self.fine_grained_groups <= self.num_classes
        ):
            raise ValueError("fine_grained_groups must be in [1, num_classes]")


class SyntheticImageGenerator:
    """Generates datasets from a :class:`SyntheticSpec` deterministically.

    A generator instance fixes the class prototypes once (from ``seed``);
    repeated calls to :meth:`generate` draw fresh noise but keep the same
    underlying classification problem, so train/test splits and per-device
    shards are mutually consistent.
    """

    def __init__(self, spec: SyntheticSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        self._prototypes = self._build_prototypes(np.random.default_rng(seed))

    @property
    def prototypes(self) -> np.ndarray:
        """Class prototype images, shape ``(num_classes, C, H, W)``."""
        return self._prototypes

    def _build_prototypes(self, rng: np.random.Generator) -> np.ndarray:
        spec = self.spec
        shape = (spec.channels, spec.image_size, spec.image_size)

        def random_field() -> np.ndarray:
            raw = rng.normal(size=shape)
            smooth = np.stack(
                [_smooth(raw[c], spec.smoothing_sigma) for c in range(spec.channels)]
            )
            # Re-standardize: smoothing shrinks variance.
            return (smooth - smooth.mean()) / (smooth.std() + 1e-12)

        if spec.fine_grained_groups is None:
            protos = np.stack([random_field() for _ in range(spec.num_classes)])
            return protos * spec.class_separation

        # Fine-grained: classes within a group share a base prototype and
        # differ only by a small detail component.
        groups = spec.fine_grained_groups
        bases = [random_field() for _ in range(groups)]
        protos = []
        for cls in range(spec.num_classes):
            base = bases[cls % groups]
            detail = random_field() * 0.35
            protos.append(base + detail)
        return np.stack(protos) * spec.class_separation

    def generate(
        self,
        samples_per_class: int,
        seed: int = 1,
        name: str = "synthetic",
        class_subset: Optional[np.ndarray] = None,
    ) -> ArrayDataset:
        """Draw a dataset with ``samples_per_class`` noisy samples per class.

        Parameters
        ----------
        class_subset:
            If given, only these class labels are generated (the dataset still
            reports the full ``num_classes`` label space).
        """
        spec = self.spec
        rng = np.random.default_rng((self.seed, seed))
        classes = (
            np.arange(spec.num_classes)
            if class_subset is None
            else np.asarray(class_subset, dtype=np.int64)
        )
        images = []
        labels = []
        for cls in classes:
            noise = rng.normal(
                scale=spec.noise_scale,
                size=(samples_per_class, spec.channels, spec.image_size, spec.image_size),
            )
            images.append(self._prototypes[cls][None] + noise)
            labels.append(np.full(samples_per_class, cls, dtype=np.int64))
        dataset = ArrayDataset(
            np.concatenate(images, axis=0),
            np.concatenate(labels, axis=0),
            num_classes=spec.num_classes,
            name=name,
        )
        # Shuffle so batches mix classes even without loader shuffling.
        order = rng.permutation(len(dataset))
        return dataset.subset(order, name=name)


def make_cifar100_like(
    num_classes: int = 20,
    image_size: int = 16,
    seed: int = 0,
) -> SyntheticImageGenerator:
    """CIFAR-100 stand-in: coarse-grained, moderately separated classes.

    The class count defaults to a scaled-down 20 (vs. the paper's 100) so CPU
    training completes quickly; pass ``num_classes=100`` for the full-width
    label space.
    """
    spec = SyntheticSpec(
        num_classes=num_classes,
        image_size=image_size,
        channels=3,
        class_separation=1.0,
        noise_scale=0.7,
        fine_grained_groups=None,
    )
    return SyntheticImageGenerator(spec, seed=seed)


def make_stanford_cars_like(
    num_classes: int = 24,
    image_size: int = 16,
    seed: int = 0,
) -> SyntheticImageGenerator:
    """Stanford-Cars stand-in: fine-grained classes in few coarse groups.

    Classes share group-level structure (cars all look like cars) and differ
    in small details, making the task harder at equal class count — matching
    the paper's observation that header quality matters more here (Fig. 13).
    """
    spec = SyntheticSpec(
        num_classes=num_classes,
        image_size=image_size,
        channels=3,
        class_separation=0.9,
        noise_scale=0.75,
        fine_grained_groups=max(2, num_classes // 4),
    )
    return SyntheticImageGenerator(spec, seed=seed)
