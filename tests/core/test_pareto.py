"""Tests for the Pareto Front Grid (Eqs. 10-13, Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import (
    Candidate,
    build_pfg,
    dominates,
    grid_coordinates,
    pareto_front,
    pfg_members,
    select_model,
)


def candidate(w, d, loss, energy, size):
    return Candidate(w, d, (loss, energy, size))


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1, 1, 1), (2, 2, 2))
        assert dominates((1, 2, 2), (2, 2, 2))

    def test_no_self_dominance(self):
        assert not dominates((1, 1, 1), (1, 1, 1))

    def test_incomparable(self):
        assert not dominates((1, 3, 1), (2, 2, 2))
        assert not dominates((2, 2, 2), (1, 3, 1))


class TestParetoFront:
    def test_simple_front(self):
        cands = [
            candidate(1, 1, 1.0, 3.0, 3.0),
            candidate(1, 2, 2.0, 2.0, 2.0),
            candidate(1, 3, 3.0, 1.0, 1.0),
            candidate(1, 4, 3.0, 3.0, 3.0),  # dominated
        ]
        front = pareto_front(cands)
        assert front == [0, 1, 2]

    def test_single_candidate(self):
        assert pareto_front([candidate(1, 1, 1, 1, 1)]) == [0]


class TestGridCoordinates:
    def test_bounds(self):
        values = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [0.5, 0.5, 0.5]])
        coords = grid_coordinates(values, values.min(0), values.max(0), 4)
        assert coords.min() >= 1 and coords.max() <= 4
        # The worst point lands in the last interval, the best in the first.
        assert (coords[1] == 4).all()
        assert (coords[0] == 1).all()

    def test_monotone(self):
        values = np.array([[0.1, 0, 0], [0.9, 0, 0]])
        coords = grid_coordinates(values, np.zeros(3), np.ones(3), 10)
        assert coords[0, 0] < coords[1, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_coordinates(np.zeros((1, 3)), np.zeros(3), np.ones(3), 0)


class TestBuildPFG:
    def grid(self):
        rng = np.random.default_rng(0)
        cands = []
        for w in (0.25, 0.5, 0.75, 1.0):
            for d in range(1, 7):
                loss = 2.0 / (w * d) + 0.05 * rng.random()  # bigger → better
                energy = 1.0 + w * d  # bigger → costlier
                size = 100 * w * d
                cands.append(candidate(w, d, loss, energy, size))
        return cands

    def test_members_nonempty_and_valid(self):
        pfg = build_pfg(self.grid(), performance_window=0.1)
        assert pfg.members
        assert all(0 <= i < len(pfg.candidates) for i in pfg.members)

    def test_pfg_contains_true_pareto_front(self):
        """The PFG must cover the exact Pareto front (it approximates it
        from above, never dropping a non-dominated point's cell)."""
        cands = self.grid()
        pfg = build_pfg(cands, performance_window=0.05)
        exact = set(pareto_front(cands))
        # Every exact-front candidate's grid cell must host a PFG member
        # with equal-or-better coordinates on all objectives.
        for idx in exact:
            cell = pfg.grid_coords[idx]
            assert any(
                (pfg.grid_coords[m] <= cell).all() for m in pfg.members
            ), f"front point {idx} not covered"

    def test_window_controls_resolution(self):
        coarse = build_pfg(self.grid(), performance_window=1.0)
        fine = build_pfg(self.grid(), performance_window=0.01)
        assert fine.num_intervals > coarse.num_intervals

    def test_validation(self):
        with pytest.raises(ValueError):
            build_pfg([], performance_window=0.1)
        with pytest.raises(ValueError):
            build_pfg(self.grid(), performance_window=0.0)

    def test_pfg_members_helper(self):
        pfg = build_pfg(self.grid(), performance_window=0.1)
        members = pfg_members(pfg)
        assert len(members) == len(pfg.members)
        assert all(isinstance(m, Candidate) for m in members)


class TestSelectModel:
    def grid(self):
        cands = []
        for w in (0.25, 0.5, 0.75, 1.0):
            for d in range(1, 7):
                cands.append(
                    candidate(w, d, 2.0 / (w * d), 1.0 + w * d, 100 * w * d)
                )
        return cands

    def test_respects_storage_constraint(self):
        pfg = build_pfg(self.grid(), performance_window=0.1)
        chosen = select_model(pfg, storage_limit=200)
        assert chosen.size < 200

    def test_unsatisfiable_constraint(self):
        pfg = build_pfg(self.grid(), performance_window=0.1)
        with pytest.raises(ValueError):
            select_model(pfg, storage_limit=1.0)

    def test_larger_budget_never_hurts_performance(self):
        pfg = build_pfg(self.grid(), performance_window=0.1)
        small = select_model(pfg, storage_limit=150)
        large = select_model(pfg, storage_limit=500)
        assert large.loss <= small.loss + 1e-9

    def test_selected_is_member(self):
        pfg = build_pfg(self.grid(), performance_window=0.1)
        chosen = select_model(pfg, storage_limit=300)
        assert any(
            pfg.candidates[i] is chosen for i in pfg.members
        )


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.floats(0.1, 5), st.floats(0.1, 5), st.floats(1, 500)),
                min_size=2, max_size=30))
def test_property_pfg_selection_feasible(objs):
    cands = [candidate(1.0, i + 1, *o) for i, o in enumerate(objs)]
    pfg = build_pfg(cands, performance_window=0.5)
    limit = max(o[2] for o in objs) + 1
    chosen = select_model(pfg, storage_limit=limit)
    assert chosen.size < limit


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)),
                min_size=1, max_size=20))
def test_property_front_is_mutually_nondominated(objs):
    cands = [candidate(1.0, i + 1, *o) for i, o in enumerate(objs)]
    front = pareto_front(cands)
    for i in front:
        for j in front:
            if i != j:
                assert not dominates(cands[i].objectives, cands[j].objectives)
