"""Table I — cost-efficiency of ACME vs a centralized system (CS).

Two columns per system, four fleet sizes:

* **Search space (10³)** — analytic, from Eq. (14) and the Table I
  accounting model: CS jointly searches (backbone grid × header space) per
  device; ACME runs header NAS once per edge server.
* **Upload data (MB)** — measured by running the real protocol (with
  training truncated to one batch per importance round — payload sizes
  depend on array shapes, not values) and the CS baseline (raw dataset
  upload).

Paper's shape: ACME search space ≈ 1% of CS; upload ≈ 6% of CS; both grow
linearly in N.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import emit, emit_json, table
from repro.core.header_importance import ImportanceConfig
from repro.core.search_space import table1_search_space_row
from repro.distributed import ACMEConfig, ACMESystem
from repro.models import ViTConfig

FLEET_SIZES = (10, 20, 30, 40)
CLASSES = 8
# Per-device shard targets ~700 images so the byte ratio reflects the
# paper's data-rich devices (see DESIGN.md substitution table).
IMAGES_PER_DEVICE = 700


def run_row(num_devices: int) -> dict:
    devices_per_cluster = 5
    num_clusters = num_devices // devices_per_cluster
    samples_per_class = IMAGES_PER_DEVICE * num_devices // CLASSES

    config = ACMEConfig(
        num_clusters=num_clusters,
        devices_per_cluster=devices_per_cluster,
        num_classes=CLASSES,
        samples_per_class=samples_per_class,
        vit=ViTConfig(num_classes=CLASSES, depth=4, embed_dim=32),
        device_importance=ImportanceConfig(epochs=1, max_batches_per_epoch=1),
        finalize=False,
        seed=0,
    )
    system = ACMESystem(config)
    result = system.run()
    cs_traffic = system.run_centralized_baseline()

    space = table1_search_space_row(num_devices, devices_per_cluster=devices_per_cluster)
    return {
        "N": num_devices,
        "cs_space_k": space["cs_thousands"],
        "ours_space_k": space["ours_thousands"],
        "cs_upload_mb": cs_traffic.upload_megabytes(),
        "ours_upload_mb": result.traffic.upload_megabytes(),
        "upload_ratio": result.traffic.upload_bytes / cs_traffic.upload_bytes,
        "space_ratio": space["ratio"],
    }


def test_table1_cost_efficiency(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_row(n) for n in FLEET_SIZES], rounds=1, iterations=1
    )

    lines = table(
        ["N", "CS space (10^3)", "Ours space (10^3)", "CS upload (MB)", "Ours upload (MB)",
         "space ratio", "upload ratio"],
        [
            [r["N"], r["cs_space_k"], r["ours_space_k"], r["cs_upload_mb"],
             r["ours_upload_mb"], r["space_ratio"], r["upload_ratio"]]
            for r in rows
        ],
    )
    lines.append("paper: search-space ratio ≈ 1%, upload ratio ≈ 6%")
    emit("table1_cost_efficiency", lines)
    emit_json("table1_cost_efficiency", rows)

    # Shape assertions.
    for r in rows:
        assert r["space_ratio"] < 0.05, "ACME search space must be ≈1% of CS"
        assert r["upload_ratio"] < 0.20, "ACME upload must be a small fraction of CS"
    # CS costs grow exactly linearly in N (per-device data is constant).
    cs_spaces = [r["cs_space_k"] for r in rows]
    assert cs_spaces == sorted(cs_spaces)
    cs_uploads = [r["cs_upload_mb"] for r in rows]
    assert cs_uploads == sorted(cs_uploads)
    # ACME's upload depends on each edge's *searched* header size, so it is
    # only approximately linear: check the per-device cost stays in a band.
    per_device = [r["ours_upload_mb"] / r["N"] for r in rows]
    assert max(per_device) / min(per_device) < 6.0
