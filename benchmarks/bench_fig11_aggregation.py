"""Fig. 11 — accuracy improvement of four aggregation methods under four
data-distribution regimes (IID and the confusion levels C1 < C2 < C3).

Protocol (matching §III-D's premise of *limited* device data): a 5-device
cluster splits a small pool per regime; each device trains the coarse
header on its little shard and is evaluated on a held-out sample of its
own distribution.  Headers are refined by one of: Alone (local importance
only), Average (uniform), JS (Jensen-Shannon-weighted), Ours
(Wasserstein-weighted, Eqs. 19-21).  The metric is the held-out accuracy
improvement over the un-refined header, averaged over devices and three
partition seeds.

Shape targets: every method yields a positive improvement; the
distribution-aware weighting (Ours) matches or beats uniform Averaging,
with the gap widening on the non-IID regimes.  (In this scaled-down
substrate the Alone baseline is stronger than in the paper — devices'
importance estimates are less noisy than at ViT-B scale; recorded as a
deviation in EXPERIMENTS.md.)
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import emit, emit_json, table
from repro.core.aggregation import (
    AGGREGATION_METHODS,
    personalized_architecture_aggregation,
)
from repro.core.header_importance import ImportanceConfig
from repro.core.segmentation import clone_model
from repro.data import ConfusionLevel, partition_confusion
from repro.models.blocks import BlockSpec, HeaderSpec
from repro.models.header_dag import DAGHeader
from repro.train import TrainConfig, evaluate_header, train_header

REGIMES = (ConfusionLevel.IID, ConfusionLevel.C1, ConfusionLevel.C2, ConfusionLevel.C3)
NUM_DEVICES = 5
SEEDS = (3, 5, 7)
SPEC = HeaderSpec(blocks=(BlockSpec(0, 1, 1, 3), BlockSpec(1, 2, 2, 5)))


def _one_cell(backbone, cfg, shards_train, shards_test, method):
    base_headers, base_accs = [], []
    for i, train_shard in enumerate(shards_train):
        header = DAGHeader(cfg.embed_dim, cfg.num_patches, cfg.num_classes,
                           SPEC, rng=np.random.default_rng(i))
        train_header(backbone, header, train_shard, TrainConfig(epochs=2, seed=i))
        base_headers.append(header)
        base_accs.append(
            evaluate_header(backbone, header, shards_test[i])["accuracy"]
        )

    headers = []
    for i, base in enumerate(base_headers):
        clone = DAGHeader(cfg.embed_dim, cfg.num_patches, cfg.num_classes,
                          SPEC, rng=np.random.default_rng(i))
        clone.load_state_dict(base.state_dict())
        headers.append(clone)
    personalized_architecture_aggregation(
        backbone, headers, shards_train, num_rounds=1, keep_fraction=0.6,
        method=method,
        importance_config=ImportanceConfig(max_batches_per_epoch=2, batch_size=8, seed=0),
        seed=0,
    )
    improvements = []
    for header, train_shard, test_shard, base_acc in zip(
        headers, shards_train, shards_test, base_accs
    ):
        train_header(backbone, header, train_shard, TrainConfig(epochs=1, seed=0))
        acc = evaluate_header(backbone, header, test_shard)["accuracy"]
        improvements.append(acc - base_acc)
    return float(np.mean(improvements))


def run_fig11(backbone_result, cifar_like):
    backbone = clone_model(backbone_result.backbone)
    backbone.scale(0.75, 4)
    cfg = backbone.config
    pool = cifar_like.generate(samples_per_class=16, seed=11, name="fig11")

    results = {}
    for regime in REGIMES:
        sums = {m: 0.0 for m in AGGREGATION_METHODS}
        for seed in SEEDS:
            shards = partition_confusion(
                pool, NUM_DEVICES, regime, np.random.default_rng(seed)
            )
            splits = [s.split(0.6, np.random.default_rng(9 + i))
                      for i, s in enumerate(shards)]
            trains = [a for a, _b in splits]
            tests = [b for _a, b in splits]
            for method in AGGREGATION_METHODS:
                sums[method] += _one_cell(backbone, cfg, trains, tests, method)
        results[regime.value] = {m: sums[m] / len(SEEDS) for m in AGGREGATION_METHODS}
    return results


def test_fig11_aggregation(benchmark, dynamic_backbone, cifar_like):
    results = benchmark.pedantic(
        run_fig11, args=(dynamic_backbone, cifar_like), rounds=1, iterations=1
    )
    lines = table(
        ["regime", *AGGREGATION_METHODS],
        [[regime, *[results[regime][m] for m in AGGREGATION_METHODS]]
         for regime in results],
    )
    non_iid = [r.value for r in REGIMES[1:]]
    mean = {
        m: float(np.mean([results[r][m] for r in non_iid]))
        for m in AGGREGATION_METHODS
    }
    lines.append(
        "non-IID means — "
        + ", ".join(f"{m}: {mean[m]:+.4f}" for m in AGGREGATION_METHODS)
    )
    lines.append("paper: ours best across all regimes; Avg loses its edge as confusion grows")
    emit("fig11_aggregation", lines)
    emit_json("fig11_aggregation", results)

    # Shape assertions.
    # Every method improves on the un-refined header, on every regime.
    for regime, row in results.items():
        for method, value in row.items():
            assert value > -0.01, f"{method} must not degrade under {regime}"
    # Distribution-aware weighting at least matches uniform averaging on
    # the non-IID regimes (the paper's differential claim).
    assert mean["ours"] >= mean["average"] - 0.005
    # And the most confused regime must not favor uniform averaging.
    assert results["c3"]["ours"] >= results["c3"]["average"] - 0.01
