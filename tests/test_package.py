"""Package-level smoke tests: public API surface and version."""

import importlib

import pytest


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize(
    "module",
    [
        "repro.nn",
        "repro.data",
        "repro.models",
        "repro.hw",
        "repro.core",
        "repro.distributed",
        "repro.train",
        "repro.cli",
    ],
)
def test_subpackages_importable(module):
    importlib.import_module(module)


@pytest.mark.parametrize(
    "module",
    [
        "repro.nn",
        "repro.data",
        "repro.models",
        "repro.hw",
        "repro.core",
        "repro.distributed",
        "repro.train",
    ],
)
def test_all_exports_resolve(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.__all__ lists missing name {name!r}"


def test_core_symbols_are_callable_or_classes():
    import repro.core as core

    for name in ("generate_backbone", "build_pfg", "select_model",
                 "compute_importance_set", "prune_by_importance",
                 "personalized_architecture_aggregation",
                 "header_search_space_size"):
        assert callable(getattr(core, name))
