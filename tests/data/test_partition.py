"""Tests for non-IID partitioners, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    ArrayDataset,
    ConfusionLevel,
    partition_by_classes,
    partition_confusion,
    partition_dirichlet,
    partition_iid,
    partition_two_groups,
)


def make_dataset(n=60, classes=6, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.repeat(np.arange(classes), n // classes)
    return ArrayDataset(
        rng.normal(size=(len(labels), 1, 4, 4)), labels, num_classes=classes
    )


def assert_partition(dataset, shards):
    """Shards are disjoint and cover the dataset exactly."""
    total = sum(len(s) for s in shards)
    assert total == len(dataset)
    seen = []
    for shard in shards:
        seen.extend(img.tobytes() for img in shard.images)
    assert len(seen) == len(set(seen)) == len(dataset)


class TestIID:
    def test_partition_properties(self):
        ds = make_dataset()
        shards = partition_iid(ds, 4, np.random.default_rng(0))
        assert_partition(ds, shards)
        assert len(shards) == 4

    def test_every_device_sees_most_classes(self):
        ds = make_dataset(120, classes=4)
        shards = partition_iid(ds, 3, np.random.default_rng(0))
        for shard in shards:
            assert len(np.unique(shard.labels)) == 4

    def test_validation(self):
        ds = make_dataset(6)
        with pytest.raises(ValueError):
            partition_iid(ds, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            partition_iid(ds, 100, np.random.default_rng(0))


class TestByClasses:
    def test_partition_covers_held_classes(self):
        ds = make_dataset(60, classes=6)
        shards = partition_by_classes(ds, 3, classes_per_device=2, rng=np.random.default_rng(1))
        for shard in shards:
            assert len(np.unique(shard.labels)) <= 2

    def test_bounds(self):
        ds = make_dataset()
        with pytest.raises(ValueError):
            partition_by_classes(ds, 2, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            partition_by_classes(ds, 2, 7, np.random.default_rng(0))

    def test_disjoint_samples(self):
        ds = make_dataset(60, classes=6)
        shards = partition_by_classes(ds, 4, 3, np.random.default_rng(2))
        seen = []
        for shard in shards:
            seen.extend(img.tobytes() for img in shard.images)
        assert len(seen) == len(set(seen))


class TestDirichlet:
    def test_partition_properties(self):
        ds = make_dataset(120, classes=6)
        shards = partition_dirichlet(ds, 5, alpha=0.5, rng=np.random.default_rng(0))
        assert_partition(ds, shards)

    def test_min_samples_respected(self):
        ds = make_dataset(120, classes=6)
        shards = partition_dirichlet(
            ds, 6, alpha=0.1, rng=np.random.default_rng(3), min_samples=4
        )
        assert all(len(s) >= 4 for s in shards)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            partition_dirichlet(make_dataset(), 2, alpha=0.0, rng=np.random.default_rng(0))

    def test_lower_alpha_is_more_skewed(self):
        """Smaller α concentrates classes on fewer devices (more confusion)."""
        ds = make_dataset(600, classes=6)

        def mean_entropy(alpha, seed):
            shards = partition_dirichlet(ds, 5, alpha, np.random.default_rng(seed))
            entropies = []
            for shard in shards:
                p = shard.class_distribution()
                p = p[p > 0]
                entropies.append(-(p * np.log(p)).sum())
            return np.mean(entropies)

        high = np.mean([mean_entropy(5.0, s) for s in range(3)])
        low = np.mean([mean_entropy(0.1, s) for s in range(3)])
        assert low < high


class TestConfusionLevels:
    def test_iid_level(self):
        ds = make_dataset()
        shards = partition_confusion(ds, 3, ConfusionLevel.IID, np.random.default_rng(0))
        assert_partition(ds, shards)

    @pytest.mark.parametrize("level", [ConfusionLevel.C1, ConfusionLevel.C2, ConfusionLevel.C3])
    def test_non_iid_levels(self, level):
        ds = make_dataset(120)
        shards = partition_confusion(ds, 4, level, np.random.default_rng(0))
        assert_partition(ds, shards)

    def test_alpha_ordering(self):
        """C1 → C3 must have decreasing Dirichlet concentration."""
        alphas = [
            ConfusionLevel.C1.dirichlet_alpha,
            ConfusionLevel.C2.dirichlet_alpha,
            ConfusionLevel.C3.dirichlet_alpha,
        ]
        assert alphas == sorted(alphas, reverse=True)
        assert ConfusionLevel.IID.dirichlet_alpha is None


class TestTwoGroups:
    def test_fig10_layout(self):
        """Devices 0-2 share one distribution; 3-4 share another."""
        ds = make_dataset(300, classes=6)
        devices = partition_two_groups(ds, (3, 2), np.random.default_rng(0))
        assert len(devices) == 5
        group_a = set(np.unique(np.concatenate([d.labels for d in devices[:3]])))
        group_b = set(np.unique(np.concatenate([d.labels for d in devices[3:]])))
        assert group_a.isdisjoint(group_b)

    def test_needs_two_groups(self):
        with pytest.raises(ValueError):
            partition_two_groups(make_dataset(), (5,), np.random.default_rng(0))


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(12, 60))
def test_property_iid_partition_conserves(devices, n):
    n = (n // devices) * devices + devices  # ensure n >= devices
    rng = np.random.default_rng(devices * 100 + n)
    ds = ArrayDataset(
        rng.normal(size=(n, 1, 2, 2)), rng.integers(0, 3, size=n), num_classes=3
    )
    shards = partition_iid(ds, devices, rng)
    assert sum(len(s) for s in shards) == n


@settings(max_examples=15, deadline=None)
@given(st.floats(0.1, 5.0), st.integers(2, 5))
def test_property_dirichlet_partition_conserves(alpha, devices):
    rng = np.random.default_rng(int(alpha * 10) + devices)
    ds = ArrayDataset(
        rng.normal(size=(80, 1, 2, 2)),
        np.repeat(np.arange(4), 20),
        num_classes=4,
    )
    shards = partition_dirichlet(ds, devices, alpha, rng)
    assert sum(len(s) for s in shards) == 80
