"""Data-distribution similarity between devices (Eqs. 19-20, Fig. 10).

The edge server compares devices by the distributions of *features* a
pre-trained model extracts from small samples of their local data:

* **Wasserstein** (ours) — the p-Wasserstein distance with an L1 ground
  metric, estimated by the sliced method: average the exact 1-D Wasserstein
  distance over random projections.  (For 1-D inputs this is exact.)
* **Jensen-Shannon** (baseline) — JS divergence between per-dimension
  feature histograms.

From raw pairwise distances ``w̃_ij`` the similarity matrix is built as
``w_ij = 1 / (1 + w̃_ij)`` (Eq. 19), then regularized by symmetrization
``W̄ = sqrt(W·Wᵀ)`` (elementwise) and row-softmax normalization (Eq. 20).

Performance: both metrics run fully vectorized.  Sliced Wasserstein
batches all projections into a single ``(n, dims) @ (dims, P)`` matmul and
sorts each feature set's projections **once**, reusing them across all
O(n²) pairs in :func:`distance_matrix`; JS bins every dimension in one
``bincount``.  The original per-projection / per-dimension loops are kept
as ``_sliced_wasserstein_loop`` / ``_js_divergence_loop`` reference
implementations (used by equivalence tests and the perf benches) and can
be re-activated globally with :func:`set_vectorized` for A/B timing.
"""

from __future__ import annotations

from typing import Dict, Final, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.stats import wasserstein_distance

from repro.analysis.registry import register_lock
from repro.data.dataset import ArrayDataset
from repro.models.vit import VisionTransformer
from repro.nn.tensor import Tensor, no_grad

_VECTORIZED = True


def set_vectorized(enabled: bool) -> None:
    """Toggle the vectorized kernels (benchmarks flip this for baselines)."""
    global _VECTORIZED
    _VECTORIZED = bool(enabled)


# Projection directions depend only on (dims, num_projections, seed) and
# are deterministic, so repeated aggregation rounds / edge clusters reuse
# them instead of re-sampling.  The cache is shared across the executor's
# worker threads — the lock keeps insertion atomic, and cached arrays are
# frozen read-only so concurrent readers cannot corrupt them.
_PROJECTION_CACHE: Final[Dict[Tuple[int, int, int], np.ndarray]] = {}
_PROJECTION_CACHE_LOCK = register_lock(
    "similarity.projection-cache", module=__name__, attr="_PROJECTION_CACHE_LOCK"
)
_PROJECTION_CACHE_MAX = 64


def clear_projection_cache() -> None:
    """Drop all memoized projection-direction matrices."""
    with _PROJECTION_CACHE_LOCK:
        _PROJECTION_CACHE.clear()


def _cached_projections(dims: int, num_projections: int, seed: int) -> np.ndarray:
    key = (int(dims), int(num_projections), int(seed))
    with _PROJECTION_CACHE_LOCK:
        cached = _PROJECTION_CACHE.get(key)
        if cached is not None:
            return cached
    directions = _sample_projections(dims, num_projections, np.random.default_rng(seed))
    directions.setflags(write=False)
    with _PROJECTION_CACHE_LOCK:
        if len(_PROJECTION_CACHE) >= _PROJECTION_CACHE_MAX:
            _PROJECTION_CACHE.clear()
        _PROJECTION_CACHE[key] = directions
    return directions


def extract_features(
    model: VisionTransformer, dataset: ArrayDataset, max_samples: int = 64, seed: int = 0
) -> np.ndarray:
    """CLS-token features of a small random sample (the P(D̃) of Eq. 19)."""
    rng = np.random.default_rng(seed)
    sample = dataset.sample(max_samples, rng)
    with no_grad():
        cls, _tokens = model.forward_features(Tensor(sample.images))
    return cls.data


# ----------------------------------------------------------------------
# Sliced Wasserstein
# ----------------------------------------------------------------------
def _sample_projections(
    dims: int, num_projections: int, rng: np.random.Generator
) -> np.ndarray:
    """``(dims, P)`` unit directions, drawn exactly like the per-pair loop
    did (one ``rng.normal(size=dims)`` per projection, in order)."""
    directions = rng.normal(size=(num_projections, dims))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    return (directions / (norms + 1e-12)).T


def _wasserstein_1d_sorted(pa: np.ndarray, pb: np.ndarray) -> np.ndarray:
    """Per-projection W1 between equal-sized samples sorted along axis 0.

    With equal sample counts the 1-D optimal transport plan pairs order
    statistics, so W1 reduces to the mean absolute difference of sorted
    projections — O(n) per pair once each set is sorted.
    """
    return np.abs(pa - pb).mean(axis=0)


def _wasserstein_1d_general(pa: np.ndarray, pb: np.ndarray) -> np.ndarray:
    """Per-projection W1 for arbitrary sample counts, batched over columns.

    Implements the CDF-difference formulation (the same algorithm scipy's
    ``wasserstein_distance`` uses) simultaneously for all projections:
    merge both samples, and integrate ``|F_a - F_b|`` between consecutive
    merged values.
    """
    na, p = pa.shape
    nb = pb.shape[0]
    all_vals = np.concatenate([pa, pb], axis=0).T  # (P, na+nb)
    order = np.argsort(all_vals, axis=1, kind="stable")
    sorted_vals = np.take_along_axis(all_vals, order, axis=1)
    deltas = np.diff(sorted_vals, axis=1)
    from_a = order < na
    cdf_a = np.cumsum(from_a, axis=1)[:, :-1] / na
    cdf_b = np.cumsum(~from_a, axis=1)[:, :-1] / nb
    return (np.abs(cdf_a - cdf_b) * deltas).sum(axis=1)


def _validate_pair(a: np.ndarray, b: np.ndarray, p: int):
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"feature dims differ: {a.shape[1]} vs {b.shape[1]}")
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return a, b


def sliced_wasserstein(
    a: np.ndarray,
    b: np.ndarray,
    num_projections: int = 32,
    p: int = 1,
    seed: int = 0,
    projections: Optional[np.ndarray] = None,
) -> float:
    """Sliced p-Wasserstein distance between feature clouds ``a`` and ``b``.

    Projects both clouds onto shared random unit directions and averages the
    exact 1-D Wasserstein distance; the L1 ground metric of the paper
    corresponds to ``p=1``.  Pass ``projections`` (a ``(dims, P)`` matrix,
    e.g. from :func:`distance_matrix`) to share directions across many
    pairs instead of re-sampling them from ``seed``.
    """
    a, b = _validate_pair(a, b, p)
    if not _VECTORIZED and projections is None:
        return _sliced_wasserstein_loop(a, b, num_projections=num_projections, p=p, seed=seed)
    if projections is None:
        projections = _cached_projections(a.shape[1], num_projections, seed)
    pa = a @ projections  # (na, P)
    pb = b @ projections  # (nb, P)
    if p == 1:
        if pa.shape[0] == pb.shape[0]:
            dists = _wasserstein_1d_sorted(np.sort(pa, axis=0), np.sort(pb, axis=0))
        else:
            dists = _wasserstein_1d_general(pa, pb)
        return float(dists.mean())
    # General p: quantile-function formulation of 1-D OT, batched.
    qs = np.linspace(0.0, 1.0, 101)
    qa = np.quantile(pa, qs, axis=0)  # (101, P)
    qb = np.quantile(pb, qs, axis=0)
    dists = np.mean(np.abs(qa - qb) ** p, axis=0) ** (1.0 / p)
    return float(dists.mean())


def _sliced_wasserstein_loop(
    a: np.ndarray,
    b: np.ndarray,
    num_projections: int = 32,
    p: int = 1,
    seed: int = 0,
) -> float:
    """Reference implementation: one projection at a time (pre-perf-PR)."""
    a, b = _validate_pair(a, b, p)
    rng = np.random.default_rng(seed)
    dims = a.shape[1]
    total = 0.0
    for _ in range(num_projections):
        direction = rng.normal(size=dims)
        direction /= np.linalg.norm(direction) + 1e-12
        pa = a @ direction
        pb = b @ direction
        if p == 1:
            total += wasserstein_distance(pa, pb)
        else:
            qs = np.linspace(0.0, 1.0, 101)
            qa = np.quantile(pa, qs)
            qb = np.quantile(pb, qs)
            total += float(np.mean(np.abs(qa - qb) ** p) ** (1.0 / p))
    return total / num_projections


# ----------------------------------------------------------------------
# Jensen-Shannon
# ----------------------------------------------------------------------
def js_divergence(a: np.ndarray, b: np.ndarray, bins: int = 16) -> float:
    """Jensen-Shannon divergence between per-dimension feature histograms."""
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"feature dims differ: {a.shape[1]} vs {b.shape[1]}")
    if not _VECTORIZED:
        return _js_divergence_loop(a, b, bins=bins)
    n_dims = a.shape[1]
    lo = np.minimum(a.min(axis=0), b.min(axis=0))
    hi = np.maximum(a.max(axis=0), b.max(axis=0))
    valid = hi > lo
    if not valid.any():
        return 0.0
    width = np.where(valid, hi - lo, 1.0)
    offsets = np.arange(n_dims) * bins

    def histograms(x: np.ndarray) -> np.ndarray:
        idx = ((x - lo) / width * bins).astype(np.int64)
        np.clip(idx, 0, bins - 1, out=idx)
        counts = np.bincount((idx + offsets).ravel(), minlength=n_dims * bins)
        return counts.reshape(n_dims, bins).astype(np.float64)

    ca = histograms(a)
    cb = histograms(b)
    pa = ca / np.maximum(1, ca.sum(axis=1, keepdims=True)) + 1e-12
    pb = cb / np.maximum(1, cb.sum(axis=1, keepdims=True)) + 1e-12
    m = 0.5 * (pa + pb)
    per_dim = 0.5 * (
        (pa * np.log(pa / m)).sum(axis=1) + (pb * np.log(pb / m)).sum(axis=1)
    )
    return float(per_dim[valid].sum() / n_dims)


def _js_divergence_loop(a: np.ndarray, b: np.ndarray, bins: int = 16) -> float:
    """Reference implementation: one dimension at a time (pre-perf-PR)."""
    total = 0.0
    for dim in range(a.shape[1]):
        lo = min(a[:, dim].min(), b[:, dim].min())
        hi = max(a[:, dim].max(), b[:, dim].max())
        if hi <= lo:
            continue
        edges = np.linspace(lo, hi, bins + 1)
        pa, _ = np.histogram(a[:, dim], bins=edges)
        pb, _ = np.histogram(b[:, dim], bins=edges)
        pa = pa / max(1, pa.sum()) + 1e-12
        pb = pb / max(1, pb.sum()) + 1e-12
        m = 0.5 * (pa + pb)
        total += 0.5 * float((pa * np.log(pa / m)).sum() + (pb * np.log(pb / m)).sum())
    return total / a.shape[1]


# ----------------------------------------------------------------------
# Pairwise matrices
# ----------------------------------------------------------------------
def distance_matrix(
    feature_sets: Sequence[np.ndarray],
    metric: str = "wasserstein",
    seed: int = 0,
    num_projections: int = 32,
) -> np.ndarray:
    """Pairwise distances ``w̃_ij`` under the chosen metric.

    For the Wasserstein metric, random projection directions are sampled
    **once** here and shared by every pair (they were already identical
    per pair before, since each pair re-seeded the same generator), and
    each feature set is projected and sorted exactly once — the O(n²)
    pair loop then only touches pre-sorted 1-D samples.
    """
    n = len(feature_sets)
    if n < 2:
        raise ValueError("need at least two devices to compare")
    out = np.zeros((n, n))
    if metric == "wasserstein":
        arrays = [np.atleast_2d(np.asarray(f, dtype=np.float64)) for f in feature_sets]
        dims = arrays[0].shape[1]
        for f in arrays[1:]:
            if f.shape[1] != dims:
                raise ValueError(f"feature dims differ: {dims} vs {f.shape[1]}")
        if not _VECTORIZED:
            for i in range(n):
                for j in range(i + 1, n):
                    d = _sliced_wasserstein_loop(
                        arrays[i], arrays[j], num_projections=num_projections, seed=seed
                    )
                    out[i, j] = out[j, i] = d
            return out
        projections = _cached_projections(dims, num_projections, seed)
        projected = [np.sort(f @ projections, axis=0) for f in arrays]
        for i in range(n):
            for j in range(i + 1, n):
                pa, pb = projected[i], projected[j]
                if pa.shape[0] == pb.shape[0]:
                    d = float(_wasserstein_1d_sorted(pa, pb).mean())
                else:
                    d = float(_wasserstein_1d_general(pa, pb).mean())
                out[i, j] = out[j, i] = d
        return out
    if metric == "js":
        for i in range(n):
            for j in range(i + 1, n):
                d = js_divergence(feature_sets[i], feature_sets[j])
                out[i, j] = out[j, i] = d
        return out
    raise ValueError(f"unknown metric {metric!r}")


def similarity_from_distances(distances: np.ndarray) -> np.ndarray:
    """Eq. (19): ``w_ij = 1 / (1 + w̃_ij)``; diagonal similarity is 1."""
    distances = np.asarray(distances, dtype=np.float64)
    if (distances < 0).any():
        raise ValueError("distances must be non-negative")
    return 1.0 / (1.0 + distances)


def regularize_similarity(similarity: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Eq. (20): symmetrize by ``sqrt(W·Wᵀ)`` then row-softmax normalize.

    ``temperature`` scales the logits before the softmax.  At 1.0 this is
    Eq. (20) verbatim; smaller values sharpen the weights.  The paper's
    feature spreads are O(1) so the plain exponential discriminates well;
    this reproduction's scaled-down features have smaller spreads, so the
    aggregation path uses a sub-unit temperature to recover the same
    contrast (documented in DESIGN.md).
    """
    w = np.asarray(similarity, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ValueError(f"similarity must be square, got shape {w.shape}")
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    symmetric = np.sqrt(np.maximum(w @ w.T, 0.0)) / temperature
    exp = np.exp(symmetric - symmetric.max(axis=1, keepdims=True))
    return exp / exp.sum(axis=1, keepdims=True)


def build_similarity_matrix(
    model: VisionTransformer,
    datasets: Sequence[ArrayDataset],
    metric: str = "wasserstein",
    max_samples: int = 64,
    seed: int = 0,
    temperature: float = 0.05,
    max_workers: Union[int, str, None] = None,
    batched: bool = True,
    backend: str = "thread",
) -> np.ndarray:
    """End-to-end Eq. (19)+(20): Ŵ_s from device datasets.

    Returns the row-stochastic matrix used as aggregation weights in
    Eq. (21).  See :func:`regularize_similarity` for the temperature.

    With ``batched`` (the default) all datasets' feature samples are
    served through **one** stacked tape-free forward of the shared model
    (:func:`repro.train.serving.batched_extract_features`) — per-sample
    results, and hence the matrix, are identical to per-dataset forwards.
    Otherwise extraction is an independent forward per dataset, fanned
    out across ``max_workers`` executor workers (``backend`` selects
    threads or forked processes; extraction is read-only, so the
    process backend needs no shared state) with features kept in
    dataset order, so any worker count yields the same matrix.  If the shared
    model would consume module-local RNG during forwards (a
    training-mode ``Dropout`` with ``p > 0``), batching is skipped and
    the fan-out drops to serial so a single deterministic stream is
    preserved.
    """
    from repro.distributed.executor import parallel_map  # lazy: avoids import cycle
    from repro.nn.layers import has_active_stochastic_modules

    if batched and not has_active_stochastic_modules(model):
        from repro.train.serving import batched_extract_features

        features = batched_extract_features(
            model, list(datasets), max_samples=max_samples, seed=seed
        )
    else:
        features = parallel_map(
            lambda pair: extract_features(
                model, pair[1], max_samples=max_samples, seed=seed + pair[0]
            ),
            list(enumerate(datasets)),
            max_workers=max_workers,
            serial_if_stochastic=(model,),
            backend=backend,
        )
    distances = distance_matrix(features, metric=metric, seed=seed)
    return regularize_similarity(
        similarity_from_distances(distances), temperature=temperature
    )
