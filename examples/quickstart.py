"""Quickstart: customize a Vision Transformer for a constrained device.

Walks the core ACME loop on one device in under a minute:

1. generate a synthetic workload and pretrain the reference model θ0;
2. score heads/neurons with Taylor importance and distill a dynamic
   backbone;
3. pick (width, depth) under a storage constraint with the Pareto Front
   Grid;
4. attach and train a task header, then evaluate.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.distill import DistillConfig
from repro.core.pareto import Candidate, build_pfg, select_model
from repro.core.segmentation import clone_model, generate_backbone
from repro.data import make_cifar100_like
from repro.hw.energy import energy
from repro.hw.profiles import DeviceProfile
from repro.models import ViTConfig, VisionTransformer, build_fixed_header
from repro.train import TrainConfig, evaluate_header, evaluate_model, train_header, train_model

STORAGE_LIMIT = 30_000  # the device can hold at most this many parameters


def main() -> None:
    # 1. Data + reference model --------------------------------------
    generator = make_cifar100_like(num_classes=8, image_size=16)
    train_data = generator.generate(samples_per_class=30, seed=1)
    test_data = generator.generate(samples_per_class=10, seed=2)

    config = ViTConfig(num_classes=8, embed_dim=32, depth=6, num_heads=4)
    reference = VisionTransformer(config, seed=0)
    print("pretraining the reference model θ0 ...")
    report = train_model(reference, train_data, TrainConfig(epochs=4, seed=0))
    print(f"  reference accuracy: {report.final_accuracy:.3f}")

    # 2. Backbone generation (importance + distillation) -------------
    print("generating the width/depth-dynamic backbone ...")
    result = generate_backbone(
        reference, train_data, distill_config=DistillConfig(epochs=1, seed=0)
    )
    backbone = result.backbone

    # 3. Pareto-Front-Grid selection under the storage constraint ----
    device = DeviceProfile.synthesize(0, vcpus=5, storage_limit=STORAGE_LIMIT,
                                      rng=np.random.default_rng(0))
    candidates = []
    for width in (0.25, 0.5, 0.75, 1.0):
        for depth in range(1, config.depth + 1):
            probe = clone_model(backbone)
            probe.scale(width, depth)
            loss = evaluate_model(probe, test_data, max_batches=2)["loss"]
            joules = energy(device, width, depth, epochs=5).energy_joules
            candidates.append(
                Candidate(width, depth, (loss, joules, config.zeta(width, depth)))
            )
    chosen = select_model(build_pfg(candidates, performance_window=0.2),
                          storage_limit=STORAGE_LIMIT * 0.7)
    print(f"  selected (w={chosen.width}, d={chosen.depth}) "
          f"with ζ={chosen.size:.0f} params, energy={chosen.energy:.1f} J")

    # 4. Header + final evaluation ------------------------------------
    deployed = clone_model(backbone)
    deployed.scale(chosen.width, chosen.depth)
    header = build_fixed_header("hybrid", config.embed_dim, config.num_patches,
                                config.num_classes)
    train_header(deployed, header, train_data, TrainConfig(epochs=3, seed=0))
    metrics = evaluate_header(deployed, header, test_data)
    total = chosen.size + header.num_parameters()
    print(f"deployed model: accuracy={metrics['accuracy']:.3f}, "
          f"total params={total:.0f} (limit {STORAGE_LIMIT})")


if __name__ == "__main__":
    main()
