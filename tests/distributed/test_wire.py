"""Wire-format round-trip tests: every MessageKind payload, bit-exactly.

The contract under test (ISSUE satellite 1): for each protocol payload
shape — including numpy arrays of every dtype the system uses, 0-d
arrays, empty sets, and float32/float64 mixes — ``decode(encode(x))``
reproduces ``x`` with identical dtype, shape and bytes; and malformed
input (truncated frames, corrupted CRC, garbage tags) raises a clean
:class:`~repro.distributed.wire.WireError`, never hangs and never
returns partial data.
"""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.distributed import wire
from repro.distributed.messages import Message, MessageKind
from repro.distributed.wire import (
    WireError,
    decode_frame,
    decode_message,
    decode_value,
    encode_message,
    encode_value,
    frame,
)
from repro.hw.profiles import DeviceProfile, cluster_statistics
from repro.models.blocks import HeaderSpec
from repro.models.header_dag import DAGHeader
from repro.models.vit import ViTConfig, VisionTransformer


def roundtrip(value):
    return decode_value(encode_value(value))


def assert_array_identical(a, b):
    assert isinstance(b, np.ndarray)
    assert a.dtype == b.dtype
    assert a.shape == b.shape
    assert a.tobytes() == b.tobytes()


def _profile(device_id=0):
    return DeviceProfile(
        device_id=device_id,
        gpu_capacity=2.5,
        storage_limit=80.0,
        num_patches=16,
        batch_size=8,
        base_power=1.5,
        power_per_layer=0.25,
        base_latency=10.0,
        latency_per_layer=1.75,
    )


@pytest.fixture(scope="module")
def small_model():
    config = ViTConfig(embed_dim=16, depth=2, num_heads=2, num_classes=4)
    return config, VisionTransformer(config, seed=0)


@pytest.fixture(scope="module")
def header_state(small_model):
    config, _ = small_model
    spec = HeaderSpec.from_sequence([0, 0, 1, 2, 1, 0, 3, 0], repeats=2)
    header = DAGHeader(
        config.embed_dim,
        config.num_patches,
        config.num_classes,
        spec,
        rng=np.random.default_rng(0),
    )
    return spec, header.state_dict()


class TestScalarsAndContainers:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            -(2**70),  # wider than int64: the bigint path
            3.141592653589793,
            float("inf"),
            "",
            "edge0->cloud",
            "ünïcode✓",
            b"",
            b"\x00\xff raw",
            [],
            [1, [2, [3, None]]],
            (),
            (1, "a", (2.5,)),
            {},
            {"k": [1, 2], "nested": {"x": b"y"}},
            {1: "int-key", ("t", 2): "tuple-key"},
            set(),
            {1, 2, 3},
            frozenset(),
            frozenset({"a", "b"}),
        ],
    )
    def test_roundtrip_identity(self, value):
        out = roundtrip(value)
        assert out == value
        assert type(out) is type(value)

    def test_nan_roundtrips(self):
        out = roundtrip(float("nan"))
        assert isinstance(out, float) and np.isnan(out)

    def test_float_is_bit_exact(self):
        value = 0.1 + 0.2  # not representable as a short decimal
        assert roundtrip(value).hex() == value.hex()


class TestArrays:
    @pytest.mark.parametrize(
        "dtype",
        ["float32", "float64", "int64", "int32", "uint8", "bool", ">f8", "<f4"],
    )
    def test_dtype_exact(self, dtype):
        arr = np.arange(12).reshape(3, 4).astype(dtype)
        assert_array_identical(arr, roundtrip(arr))

    def test_zero_d_array(self):
        arr = np.array(3.5, dtype=np.float32)
        out = roundtrip(arr)
        assert out.shape == () and out.dtype == np.float32
        assert out.tobytes() == arr.tobytes()

    def test_empty_array(self):
        arr = np.empty((0, 5), dtype=np.float64)
        assert_array_identical(arr, roundtrip(arr))

    def test_fortran_order_normalizes_to_c(self):
        arr = np.asfortranarray(np.arange(6.0).reshape(2, 3))
        out = roundtrip(arr)
        assert out.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(arr, out)

    def test_numpy_scalars(self):
        for scalar in (np.float32(1.25), np.int64(-7), np.float64(2.0**-52)):
            out = roundtrip(scalar)
            assert out.dtype == scalar.dtype
            assert out.tobytes() == scalar.tobytes()

    def test_float32_float64_mix_preserved(self):
        payload = {
            "importance": np.linspace(0, 1, 7, dtype=np.float32),
            "weights": np.linspace(0, 1, 7, dtype=np.float64),
            "mask": np.array([True, False, True]),
        }
        out = roundtrip(payload)
        for key in payload:
            assert_array_identical(payload[key], out[key])

    def test_object_dtype_rejected(self):
        with pytest.raises(WireError, match="dtype"):
            encode_value(np.array([object()]))


class TestRegisteredCodecs:
    def test_vit_config(self, small_model):
        config, _ = small_model
        assert roundtrip(config) == config

    def test_header_spec(self, header_state):
        spec, _ = header_state
        out = roundtrip(spec)
        assert out.to_sequence() == spec.to_sequence()
        assert out.repeats == spec.repeats

    def test_device_profile(self):
        assert roundtrip(_profile(3)) == _profile(3)

    def test_array_dataset(self):
        rng = np.random.default_rng(0)
        ds = ArrayDataset(
            rng.normal(size=(4, 3, 8, 8)).astype(np.float32),
            rng.integers(0, 4, size=4).astype(np.int64),
            num_classes=4,
            name="device3",
        )
        out = roundtrip(ds)
        assert_array_identical(ds.images, out.images)
        assert_array_identical(ds.labels, out.labels)
        assert out.num_classes == ds.num_classes and out.name == ds.name

    def test_unregistered_type_rejected(self):
        class Alien:
            pass

        with pytest.raises(WireError, match="register a codec"):
            encode_value(Alien())


def _state_arrays(model):
    return model.state_dict()


class TestEveryMessageKind:
    """One realistic payload per protocol kind, round-tripped bit-exactly."""

    def _messages(self, small_model, header_state):
        config, model = small_model
        spec, hstate = header_state
        state = _state_arrays(model)
        orders = {"head_orders": [[0, 1]] * 2, "neuron_orders": [[1, 0, 2]] * 2}
        rng = np.random.default_rng(1)
        dataset = ArrayDataset(
            rng.normal(size=(3, 3, 8, 8)).astype(np.float32),
            np.array([0, 1, 2], dtype=np.int64),
            num_classes=4,
            name="d0",
        )
        return {
            MessageKind.CLUSTER_STATS: {
                "stats": cluster_statistics([_profile(0), _profile(1)])
            },
            MessageKind.BACKBONE_ASSIGNMENT: {
                "vit_config": config,
                "backbone_state": state,
                **orders,
                "width": 0.75,
                "depth": 2,
                "objectives": ["storage", "power"],
            },
            MessageKind.MODEL_DISTRIBUTION: {
                "vit_config": config,
                "backbone_state": state,
                **orders,
                "width": 0.5,
                "depth": 1,
                "header_spec": spec,
                "header_state": hstate,
                "keep_fraction": 0.7,
            },
            MessageKind.IMPORTANCE_SET: {
                "importance": rng.normal(size=11).astype(np.float32),
                "round": 1,
                "device_id": 4,
                "feature_sample": rng.normal(size=(2, 16)).astype(np.float32),
            },
            MessageKind.PERSONALIZED_SET: {
                "importance": rng.normal(size=11).astype(np.float32)
            },
            MessageKind.DATASET_UPLOAD: {"dataset": dataset, "device_id": 0},
            MessageKind.ACK: {},
        }

    @pytest.mark.parametrize("kind", list(MessageKind))
    def test_kind_payload_roundtrip(self, kind, small_model, header_state):
        payload = self._messages(small_model, header_state)[kind]
        message = Message("edge0", "cloud", kind, payload)
        out = decode_message(encode_message(message))
        assert out.sender == message.sender
        assert out.receiver == message.receiver
        assert out.kind is kind
        assert out.nbytes == message.nbytes
        assert out.sequence == message.sequence
        assert out.checksum == message.checksum
        assert out.attempts == message.attempts
        assert set(out.payload) == set(payload)
        flat_in = encode_value(payload)
        flat_out = encode_value(out.payload)
        assert flat_in == flat_out  # canonical form identical → bit-exact

    def test_checksum_still_verifies_after_roundtrip(
        self, small_model, header_state
    ):
        payload = self._messages(small_model, header_state)[
            MessageKind.IMPORTANCE_SET
        ]
        message = Message("d0", "edge0", MessageKind.IMPORTANCE_SET, payload)
        out = decode_message(encode_message(message))
        assert out.compute_checksum() == out.checksum


class TestFraming:
    def test_frame_roundtrip(self):
        value = {"a": np.arange(5), "b": {1, 2}}
        data = frame(encode_value(value))
        out, rest = decode_frame(data)
        assert rest == b""
        np.testing.assert_array_equal(out["a"], value["a"])
        assert out["b"] == value["b"]

    def test_concatenated_frames(self):
        data = frame(encode_value("first")) + frame(encode_value("second"))
        one, rest = decode_frame(data)
        two, rest = decode_frame(rest)
        assert (one, two) == ("first", "second") and rest == b""

    @pytest.mark.parametrize("cut", [0, 1, 4, 11, -1])
    def test_truncated_frame_raises(self, cut):
        data = frame(encode_value([1, 2, 3]))
        truncated = data[: cut if cut >= 0 else len(data) - 1]
        with pytest.raises(WireError):
            decode_frame(truncated)

    def test_bad_magic_raises(self):
        data = bytearray(frame(encode_value("x")))
        data[0] ^= 0xFF
        with pytest.raises(WireError, match="magic"):
            decode_frame(bytes(data))

    def test_corrupted_body_fails_crc(self):
        data = bytearray(frame(encode_value("payload")))
        data[-1] ^= 0x01
        with pytest.raises(WireError, match="CRC"):
            decode_frame(bytes(data))

    def test_garbage_tag_raises(self):
        with pytest.raises(WireError):
            decode_value(b"\xfe\x00\x00")

    def test_trailing_bytes_rejected(self):
        with pytest.raises(WireError, match="trailing"):
            decode_value(encode_value(1) + b"\x00")

    def test_declared_length_beyond_buffer_raises(self):
        # A string tag claiming more bytes than exist must not read OOB.
        encoded = bytearray(encode_value("abcdef"))
        encoded[1:5] = (2**31 - 1).to_bytes(4, "big")
        with pytest.raises(WireError):
            decode_value(bytes(encoded))

    def test_oversized_frame_rejected(self):
        import struct

        header = struct.pack(">4sII", wire.MAGIC, wire.MAX_FRAME + 1, 0)
        with pytest.raises(WireError, match="exceeds"):
            decode_frame(header)

    def test_oversized_body_refused_at_frame_time(self):
        with pytest.raises(WireError, match="exceeds"):
            frame(b"\x00" * (wire.MAX_FRAME + 1))
