"""LSTM cell and single-layer LSTM for the NAS controller.

The paper's ENAS-style controller (§III-C2) is a single-layer LSTM with
100 hidden units that consumes one-hot encoded architecture decisions and
emits logits over the next decision.  Only the pieces that controller needs
are implemented: a cell, a sequence wrapper, and explicit state threading.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor


class LSTMCell(Module):
    """A single LSTM step: ``(x, (h, c)) -> (h', c')``.

    Gates follow the standard formulation; the four gates are computed with
    one fused affine map for efficiency.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_generator()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.ih = Linear(input_size, 4 * hidden_size, rng=rng)
        self.hh = Linear(hidden_size, 4 * hidden_size, bias=False, rng=rng)

    def forward(
        self, x: Tensor, state: Optional[Tuple[Tensor, Tensor]] = None
    ) -> Tuple[Tensor, Tensor]:
        n = x.shape[0]
        if state is None:
            h = Tensor(np.zeros((n, self.hidden_size)))
            c = Tensor(np.zeros((n, self.hidden_size)))
        else:
            h, c = state

        gates = self.ih(x) + self.hh(h)
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()

        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """Single-layer LSTM unrolled over a ``(N, T, F)`` input sequence."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self, x: Tensor, state: Optional[Tuple[Tensor, Tensor]] = None
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        """Run the sequence; returns (final hidden state, (h, c))."""
        n, t, _f = x.shape
        h_c = state
        h = None
        for step in range(t):
            h, c = self.cell(x[:, step, :], h_c)
            h_c = (h, c)
        assert h is not None and h_c is not None
        return h, h_c
