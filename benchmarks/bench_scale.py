"""Fleet-scale benchmark: 10⁴–10⁵ devices through the real protocol.

Drives :func:`repro.distributed.scale.run_scale_campaign` — lazy LRU
device state, streaming aggregation, deadline stragglers, seeded churn
and drops, micro-batched serving — and records three floored throughput
/memory figures into ``BENCH_perf.json``:

* ``scale_devices_per_round_s`` — device contributions folded per
  second across the 10k-device aggregation rounds (speedup field holds
  devices/s against a 1 s/device strawman, so the floor is an absolute
  throughput floor);
* ``scale_eval_requests_s`` — serving requests completed per second
  through the micro-batched :class:`~repro.train.serving.ServingFront`;
* ``scale_lazy_memory`` — tracemalloc peak of the lazy 10k campaign
  vs. the always-live peak *projected* from its measured per-device
  marginal (the eager fleet cannot be materialized at 10k on CI —
  that being the point); the speedup field is the memory ratio.

A 100k-device single-round leg runs unfloored as a diagnostic record.

``--smoke``: 400 devices, no floors, ``BENCH_perf.json`` untouched —
wired into tier-1 via ``tests/test_bench_scale_smoke.py``.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit_perf, perf_record, timed  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.distributed.scale import ScaleConfig, run_scale_campaign  # noqa: E402

#: The lazy 10k campaign must fit under this tracemalloc peak; the
#: projected always-live peak must exceed it (asserted below).
MEMORY_BUDGET_MB = 512.0

ONE_RUN = {"repeats": 1, "warmup": 0}


def campaign_config(num_devices: int, rounds: int = 3, **overrides) -> ScaleConfig:
    base = dict(
        num_devices=num_devices,
        num_clusters=8,
        rounds=rounds,
        lru_capacity=64,
        eval_requests=16,
        deadline_quantile=0.9,
        churn=0.02,
        drop=0.01,
        ledger="summary",
        seed=0,
    )
    base.update(overrides)
    return ScaleConfig(**base)


def project_live_peak(measure_points=(200, 400), target: int = 10_000) -> dict:
    """Always-live tracemalloc peak extrapolated to ``target`` devices.

    Runs the eager path at two small fleet sizes, takes the per-device
    marginal, and projects linearly — the eager fleet's footprint *is*
    linear in device count (one backbone + header + feature cache per
    device), which is exactly why it cannot be run at 10k directly.
    """
    n0, n1 = measure_points
    peaks = {}
    for n in (n0, n1):
        report = run_scale_campaign(
            campaign_config(n, rounds=2, num_clusters=4, always_live=True,
                            churn=0.0, drop=0.0, deadline_quantile=1.0),
            measure_memory=True,
        )
        peaks[n] = report.peak_memory_mb
    marginal = (peaks[n1] - peaks[n0]) / (n1 - n0)
    return {
        "measured_peaks_mb": {str(k): round(v, 2) for k, v in peaks.items()},
        "marginal_mb_per_device": marginal,
        "projected_peak_mb": peaks[n0] + marginal * (target - n0),
    }


def run(smoke: bool) -> None:
    records = []
    num_devices = 400 if smoke else 10_000
    rounds = 2 if smoke else 3
    clusters = 4 if smoke else 8

    # -- throughput leg (untraced) ------------------------------------
    cfg = campaign_config(num_devices, rounds=rounds, num_clusters=clusters)
    start = time.perf_counter()
    report = run_scale_campaign(cfg)
    elapsed = time.perf_counter() - start
    assert report.contributions > 0, "campaign aggregated nothing"
    assert len(report.cluster_sizes) == clusters
    assert report.stragglers > 0, "deadline_quantile<1 must exclude someone"
    assert 0.0 < report.participation <= 1.0

    records.append(
        perf_record(
            "scale_devices_per_round_s",
            fast={
                "best_s": report.round_seconds / report.contributions,
                **ONE_RUN,
            },
            baseline={"best_s": 1.0, **ONE_RUN},
            floor=None if smoke else 300.0,
            num_devices=num_devices,
            rounds=rounds,
            contributions=report.contributions,
            participation=round(report.participation, 4),
            stragglers=report.stragglers,
            carried=report.carried,
            hydrations=report.hydrations,
            evictions=report.evictions,
            campaign_seconds=round(elapsed, 3),
            fault_counts=report.fault_counts,
        )
    )
    assert report.eval_requests_served > 0
    records.append(
        perf_record(
            "scale_eval_requests_s",
            fast={
                "best_s": report.serving_seconds / report.eval_requests_served,
                **ONE_RUN,
            },
            baseline={"best_s": 1.0, **ONE_RUN},
            floor=None if smoke else 100.0,
            requests=report.eval_requests_served,
            micro_batch=cfg.micro_batch,
        )
    )

    # -- memory leg (traced lazy run vs projected always-live) --------
    lazy = run_scale_campaign(cfg, measure_memory=True)
    projection = project_live_peak(target=num_devices)
    if not smoke:
        assert lazy.peak_memory_mb < MEMORY_BUDGET_MB, (
            f"lazy 10k campaign peaked at {lazy.peak_memory_mb:.1f} MiB, "
            f"budget {MEMORY_BUDGET_MB} MiB"
        )
        assert projection["projected_peak_mb"] > MEMORY_BUDGET_MB, (
            "always-live projection no longer exceeds the budget — "
            "the lazy mode is not buying anything"
        )
    records.append(
        perf_record(
            "scale_lazy_memory",
            fast={"best_s": lazy.peak_memory_mb, **ONE_RUN},
            baseline={"best_s": projection["projected_peak_mb"], **ONE_RUN},
            floor=None if smoke else 2.0,
            budget_mb=MEMORY_BUDGET_MB,
            live_headers=lazy.live_headers,
            lru_capacity=cfg.lru_capacity,
            projection=projection,
        )
    )

    # -- 100k protocol leg (full mode only; unfloored diagnostic) -----
    if not smoke:
        big_cfg = campaign_config(
            100_000, rounds=1, eval_requests=2, churn=0.01, drop=0.0
        )
        start = time.perf_counter()
        big = run_scale_campaign(big_cfg)
        records.append(
            perf_record(
                "scale_100k_round",
                fast={
                    "best_s": big.round_seconds / big.contributions,
                    **ONE_RUN,
                },
                baseline={"best_s": 1.0, **ONE_RUN},
                floor=None,
                num_devices=100_000,
                contributions=big.contributions,
                participation=round(big.participation, 4),
                campaign_seconds=round(time.perf_counter() - start, 3),
            )
        )

    if smoke:
        emit_perf("bench_scale_smoke", records)
    else:
        emit_perf("bench_scale", records, path=REPO_ROOT / "BENCH_perf.json")


def test_scale_bench() -> None:
    run(smoke=True)


if __name__ == "__main__":
    run(smoke="--smoke" in sys.argv)
