"""Edge server node: the middle tier running both customization stages.

An edge server ``s`` manages a device cluster N_s and a shared dataset
(10-20% of the cluster's data, per §IV-A).  Its protocol role:

* **Phase 1** — upload cluster statistics, receive the assigned backbone.
* **Phase 2-1** — run the ENAS header search on the shared dataset and
  distribute (backbone, coarse header) to every device.
* **Phase 2-2** — drive the single loop of Algorithm 2: collect device
  importance sets, compute the Wasserstein similarity matrix from the
  devices' feature samples, aggregate (Eq. 21), and redistribute.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.aggregation import (
    aggregate_importance_sets,
    aggregate_importance_subset,
)
from repro.core.nas import HeaderSearch, NASConfig
from repro.core.similarity import (
    distance_matrix,
    regularize_similarity,
    similarity_from_distances,
)
from repro.data.dataset import ArrayDataset
from repro.distributed.device import DeviceNode
from repro.distributed.executor import WorkerSpec, parallel_map
from repro.distributed.faults import DeliveryError, FaultPolicy, ProtocolError
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import Network
from repro.hw.energy import latency
from repro.hw.profiles import cluster_statistics
from repro.models.blocks import HeaderSpec
from repro.models.vit import VisionTransformer, ViTConfig
from repro.train import serving


@dataclass
class EdgeConfig:
    """Edge-side knobs."""

    #: Filled from ``seed`` in ``__post_init__`` when not given (the
    #: derived default depends on another field, so ``Optional`` +
    #: post-init rather than a default_factory).
    nas: Optional[NASConfig] = None
    aggregation_rounds: int = 2  # T in Algorithm 2
    keep_fraction: float = 0.7
    similarity_metric: str = "wasserstein"  # "wasserstein" (ours) or "js"
    #: Worker threads for the per-device fan-outs (importance rounds and
    #: finalize/eval).  ``None``/0/1 = serial; -1/"auto" = CPU count.
    #: Results are ordered by device, so any worker count reproduces the
    #: serial run exactly (see repro.distributed.executor).
    parallel_devices: WorkerSpec = None
    #: Executor backend for those fan-outs: ``"thread"`` (default) or
    #: ``"process"``.  The process backend forks workers that mutate
    #: each device's header through a shared-memory mapping
    #: (:mod:`repro.distributed.procpool`) — bit-for-bit identical to
    #: the thread and serial paths, but scaling the tape-bound phases
    #: past the GIL.  Lazy-state clusters (``DeviceStateLRU``) already
    #: run their rounds serially, so the backend only applies to live
    #: clusters whose headers exist in the parent.
    backend: str = "thread"
    #: Serve the cluster's final evaluation through one batched backbone
    #: forward per round (repro.train.serving) when every device holds
    #: the same frozen backbone — numerically identical to per-device
    #: evaluation, but amortizes the Python/tape overhead the GIL keeps
    #: threads from overlapping.  Composes with ``parallel_devices``
    #: (fine-tuning still fans out across workers).
    batched_serving: bool = True
    #: Fleet-batched local **training**: run the cluster's per-device
    #: header updates (the aggregation loop's importance rounds and the
    #: finalize fine-tune) as one computation graph per round with a
    #: single fused fleet-optimizer step (:mod:`repro.train.fleet`).
    #: Bit-for-bit identical to the per-device loops under float64 —
    #: losses, weights, importance sets, and the traffic ledger.  When
    #: enabled it **replaces** the ``parallel_devices`` fan-out for
    #: those phases (the stacked graph already amortizes what the
    #: threads would); eligibility falls back to the per-device path for
    #: stochastic models or heterogeneous backbones.
    fleet_training: bool = False
    #: Degraded-mode quorum: the fraction of a round's *participating*
    #: devices whose fresh importance sets must arrive before the round
    #: aggregates.  1.0 (the default) is today's all-replies behavior —
    #: on a fault-free fabric the loop is bit-identical to the
    #: pre-quorum code, and a missing reply is a loud
    #: :class:`~repro.distributed.faults.ProtocolError`.  Below 1.0 the
    #: round proceeds with whoever answered: re-request up to
    #: ``round_retries`` times, then aggregate the fresh sets (masked,
    #: renormalized similarity rows), carrying forward each absent
    #: device's last known set only when even the quorum cannot be met.
    round_quorum: float = 1.0
    #: Round-level re-request budget when fresh replies are short of
    #: quorum.  Retries re-send each missing device's *cached* upload —
    #: the device does not retrain — mirroring a real edge's timeout →
    #: re-poll loop.  Message-level retries are separate (the fault
    #: policy's ``retries``).
    round_retries: int = 2
    #: Seconds of linear backoff between round-level retries (scaled by
    #: the retry index).  Keep 0.0 in tests — the fabric is instant.
    retry_backoff: float = 0.0
    #: Straggler deadline in *simulated* seconds per local epoch: a
    #: device whose hardware model predicts a slower epoch
    #: (:func:`repro.hw.energy.latency` at the assigned width/depth)
    #: misses the aggregation round entirely — no local round, no
    #: upload, no personalized set — making partial rounds first-class
    #: on a fault-free fabric.  Determination is deterministic from the
    #: device profiles.  The on-time subset aggregates through the same
    #: masked/renormalized path as quorum rounds (the fleet trainer's
    #: member-slice stepping handles the subset), and a deadline no
    #: device misses reproduces the full round bit-for-bit.  ``None``
    #: (default) disables the deadline.
    round_deadline: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nas is None:
            self.nas = NASConfig(seed=self.seed)


class EdgeServer:
    """One edge server ``s_s`` and its device cluster."""

    def __init__(
        self,
        index: int,
        devices: Sequence[DeviceNode],
        shared_dataset: ArrayDataset,
        network: Network,
        config: Optional[EdgeConfig] = None,
        cloud_name: str = "cloud",
    ) -> None:
        self.index = index
        self.devices = list(devices)
        self.shared_dataset = shared_dataset
        self.network = network
        self.config = config or EdgeConfig()
        self.cloud_name = cloud_name
        self.name = f"edge{index}"
        self.backbone: Optional[VisionTransformer] = None
        self.assigned_width: Optional[float] = None
        self.assigned_depth: Optional[int] = None
        self.header_spec: Optional[HeaderSpec] = None
        self.search: Optional[HeaderSearch] = None
        self.similarity: Optional[np.ndarray] = None
        self._pending_importance: Dict[int, np.ndarray] = {}
        self._feature_samples: Dict[int, np.ndarray] = {}
        #: Carry-forward store: each device's last importance set that
        #: actually arrived, keyed by device id.  Below-quorum rounds
        #: aggregate absent devices from here instead of stalling.
        self._carried: Dict[int, np.ndarray] = {}
        #: True while ``similarity`` was computed from an incomplete set
        #: of feature samples (some devices' uploads never arrived); the
        #: edge keeps requesting samples and recomputes until complete.
        self._similarity_partial = False
        #: Robustness telemetry for :class:`ClusterResult`: the fraction
        #: of the cluster that contributed a fresh set each round, and
        #: protocol-level (round/exchange) retry count.
        self.round_participation: List[float] = []
        self.round_retry_total = 0
        network.register(self.name, self.handle)

    # ------------------------------------------------------------------
    def handle(self, message: Message) -> Optional[Message]:
        if message.kind is MessageKind.BACKBONE_ASSIGNMENT:
            return self._receive_backbone(message)
        if message.kind is MessageKind.IMPORTANCE_SET:
            return self._receive_importance(message)
        raise ValueError(f"{self.name} cannot handle {message.kind}")

    def _receive_backbone(self, message: Message) -> None:
        config: ViTConfig = message.payload["vit_config"]
        self.backbone = VisionTransformer(config, seed=0)
        self.backbone.load_state_dict(message.payload["backbone_state"])
        self.backbone.set_importance_orders(
            head_orders=message.payload["head_orders"],
            neuron_orders=message.payload["neuron_orders"],
        )
        self.assigned_width = float(message.payload["width"])
        self.assigned_depth = int(message.payload["depth"])
        self.backbone.scale(self.assigned_width, self.assigned_depth)
        return None

    def _receive_importance(self, message: Message) -> None:
        device_id = int(message.payload["device_id"])
        self._pending_importance[device_id] = message.payload["importance"]
        if "feature_sample" in message.payload:
            self._feature_samples[device_id] = message.payload["feature_sample"]
        return None

    # ------------------------------------------------------------------
    # Phase 1: cloud ↔ edge
    # ------------------------------------------------------------------
    def request_backbone(self) -> None:
        """Upload cluster statistics; the cloud replies with a backbone.

        The assignment rides a nested send subject to its own fault
        draws, so a cleanly delivered upload can still leave the edge
        unassigned — retry the whole exchange (the cloud's request path
        is idempotent) up to the policy's retry budget before failing
        loudly.  Without a policy this is a single plain send.
        """
        policy = self.network.fault_policy
        stats = cluster_statistics([d.profile for d in self.devices])
        message = Message(
            self.name, self.cloud_name, MessageKind.CLUSTER_STATS, {"stats": stats}
        )
        exchanges = (policy.config.retries if policy is not None else 0) + 1
        last_failure = "assignment reply lost"
        for attempt in range(exchanges):
            if attempt:
                self.round_retry_total += 1
                if policy is not None and policy.config.backoff > 0.0:
                    time.sleep(policy.config.backoff * attempt)
            try:
                self.network.send_reliable(message, retries=0)
            except DeliveryError as err:
                last_failure = str(err)
                continue
            if self.backbone is not None:
                return
        raise ProtocolError(
            f"{self.name}: cloud did not assign a backbone after "
            f"{exchanges} exchange(s) ({last_failure})"
        )

    # ------------------------------------------------------------------
    # Phase 2-1: header search + distribution
    # ------------------------------------------------------------------
    def search_header(self) -> HeaderSpec:
        """ENAS search for the coarse header on the shared dataset."""
        assert self.backbone is not None, "request_backbone() first"
        num_classes = self.shared_dataset.num_classes
        self.search = HeaderSearch(self.backbone, num_classes, self.config.nas)
        result = self.search.search(self.shared_dataset)
        self.header_spec = result.spec
        return result.spec

    def distribute_models(self) -> None:
        """Send (backbone, coarse header) to every device in the cluster."""
        assert self.backbone is not None and self.header_spec is not None
        assert self.search is not None
        header = self.search.materialize_header(self.header_spec, seed=self.config.seed)
        payload_template = {
            "vit_config": self.backbone.config,
            "backbone_state": self.backbone.state_dict(),
            "head_orders": [o.copy() for o in self.backbone._head_orders],
            "neuron_orders": [o.copy() for o in self.backbone._neuron_orders],
            "width": self.assigned_width,
            "depth": self.assigned_depth,
            "header_spec": self.header_spec,
            "header_state": header.state_dict(),
            "keep_fraction": self.config.keep_fraction,
        }
        provisioned = 0
        for device in self.devices:
            if not device.active:
                continue  # dead / churned-off devices cannot receive
            try:
                self.network.send_reliable(
                    Message(
                        self.name,
                        device.name,
                        MessageKind.MODEL_DISTRIBUTION,
                        dict(payload_template),
                    )
                )
            except DeliveryError:
                # The device never got a model; it sits out the
                # aggregation rounds and the finale (checked via its
                # missing backbone/header) rather than crashing them.
                continue
            provisioned += 1
        if provisioned == 0:
            raise ProtocolError(
                f"{self.name}: no device received the model distribution "
                f"({len(self.devices)} in cluster, "
                f"{sum(d.active for d in self.devices)} active)"
            )

    # ------------------------------------------------------------------
    # Phase 2-2: the single loop (Algorithm 2)
    # ------------------------------------------------------------------
    def _compute_similarity(self) -> np.ndarray:
        """Eqs. (19)-(20) from the devices' uploaded feature samples.

        Degraded mode: a device whose feature sample never arrived gets
        an identity row/column (self-similarity only, keeping the matrix
        row-stochastic) and the result is marked partial, so the edge
        keeps requesting samples and recomputes as stragglers check in.
        With every sample present — always true on the fault-free path —
        this is exactly the full computation.
        """
        ids = [d.profile.device_id for d in self.devices]
        have = [i for i, did in enumerate(ids) if did in self._feature_samples]
        if len(have) == len(ids):
            self._similarity_partial = False
            samples = [self._feature_samples[did] for did in ids]
            distances = distance_matrix(
                samples, metric=self.config.similarity_metric, seed=self.config.seed
            )
            return regularize_similarity(
                similarity_from_distances(distances), temperature=0.05
            )
        self._similarity_partial = True
        full = np.eye(len(ids))
        if len(have) > 1:
            samples = [self._feature_samples[ids[i]] for i in have]
            distances = distance_matrix(
                samples, metric=self.config.similarity_metric, seed=self.config.seed
            )
            sub = regularize_similarity(
                similarity_from_distances(distances), temperature=0.05
            )
            full[np.ix_(have, have)] = sub
        return full

    def _fleet_ready(
        self,
        backbones_equal: Optional[bool] = None,
        devices: Optional[Sequence[DeviceNode]] = None,
    ) -> bool:
        """Whether this cluster's local updates can run fleet-batched.

        The fleet trainer serves every device from one backbone instance
        and one stacked graph, so it needs ≥2 devices that all hold
        value-identical frozen backbones and RNG-free forwards.  Pass
        ``backbones_equal`` when the caller already ran the
        :func:`~repro.train.serving.backbones_equivalent` sweep — it is
        O(cluster × backbone params) and worth not repeating.  Degraded
        rounds pass their participant subset as ``devices``; the fleet
        optimizer's per-member slice steps handle any subset.
        """
        from repro.train import fleet

        devices = self.devices if devices is None else list(devices)
        # Lazy clusters never fleet-batch: the fleet round holds every
        # member's header across the whole stacked graph, which the LRU
        # could evict (snapshotting stale values) mid-round.
        if any(d.state_store is not None for d in devices):
            return False
        if not (
            self.config.fleet_training
            and len(devices) > 1
            and all(d.backbone is not None and d.header is not None for d in devices)
        ):
            return False
        if backbones_equal is None:
            backbones_equal = serving.backbones_equivalent(
                [d.backbone for d in devices]
            )
        return backbones_equal and fleet.fleet_supported(
            devices[0].backbone, [d.header for d in devices]
        )

    def _apply_churn(self, round_index: int, policy: FaultPolicy) -> None:
        """Re-assert every device's seeded churn state for this round.

        Departing devices unregister from the fabric; returning ones
        lazily re-register under the same name, keeping whatever model
        state they had when they left (the carry-forward store bridges
        the rounds they missed).
        """
        for device in self.devices:
            if policy.device_active(device.profile.device_id, round_index):
                device.reactivate()
            else:
                device.deactivate()

    def _lazy_cluster(self) -> bool:
        """Whether any device keeps its state in a :class:`DeviceStateLRU`.

        Lazy clusters run their device fan-outs serially: a concurrent
        hydration could evict a peer whose header another worker is
        mid-way through training.
        """
        return any(d.state_store is not None for d in self.devices)

    def _on_time(self, participants: Sequence[DeviceNode]) -> List[DeviceNode]:
        """The participants that make the round's straggler deadline.

        Eq. (2)'s per-epoch latency at the assigned scale decides —
        deterministically, from the device profile — who uploads before
        the edge aggregates.  Without a deadline everyone is on time.
        """
        deadline = self.config.round_deadline
        if deadline is None:
            return list(participants)
        width = self.assigned_width if self.assigned_width is not None else 1.0
        depth = self.assigned_depth if self.assigned_depth is not None else 1
        return [
            d
            for d in participants
            if latency(d.profile, width, depth) <= deadline
        ]

    def aggregation_loop(self, num_rounds: Optional[int] = None) -> np.ndarray:
        """Run T single-loop rounds; returns the similarity matrix used.

        Degraded mode (fault policy installed or ``round_quorum < 1.0``):
        each round runs with whichever devices the churn schedule keeps
        active and actually reply.  Uploads travel via
        :meth:`Network.send_reliable`; when fresh replies are short of
        ``ceil(round_quorum × participants)`` the edge re-polls (cached
        uploads, no retraining) up to ``round_retries`` times, then
        aggregates whoever answered — masked, renormalized similarity
        rows — carrying forward each absent device's last known set only
        when even the quorum cannot be met.  A round with no set at all,
        fresh or carried, is a hard :class:`ProtocolError` rather than a
        hang.  On a fault-free fabric with the default quorum this path
        is never taken and the loop is bit-identical to the pre-quorum
        code; the only behavioral change there is that a missing reply
        now raises a descriptive :class:`ProtocolError` instead of a
        bare ``KeyError``.
        """
        from repro.train import fleet

        rounds = num_rounds if num_rounds is not None else self.config.aggregation_rounds
        policy = self.network.fault_policy
        deadline = self.config.round_deadline
        strict = (
            policy is None
            and self.config.round_quorum >= 1.0
            and deadline is None
        )
        # Eligibility is loop-invariant on the fault-free path: backbones
        # are frozen during the aggregation rounds (only header
        # masks/weights change), so run the parameter-equivalence sweep
        # once, not once per round.  Under churn the participant set
        # moves per round, so eligibility must be re-checked; same for
        # deadline rounds, whose on-time subset is what trains.
        use_fleet_all = (
            self._fleet_ready() if policy is None and deadline is None else None
        )
        lazy = self._lazy_cluster()
        workers = None if lazy else self.config.parallel_devices
        self.round_participation = []
        for t in range(rounds):
            self._pending_importance.clear()
            if policy is not None:
                self._apply_churn(t, policy)
            # Stragglers past the deadline sit the round out entirely:
            # they neither train nor upload, exactly like a device whose
            # upload was lost — but deterministically, from the profile.
            participants = self._on_time(
                d for d in self.devices if d.active and d.has_model
            )
            include_features = self.similarity is None or self._similarity_partial
            use_fleet = (
                use_fleet_all
                if use_fleet_all is not None
                else self._fleet_ready(devices=participants)
            )
            if use_fleet:
                # Fleet-batched local updates: every participant's header
                # trains in one graph per round with a single fused
                # fleet-optimizer step; importance sets come back
                # bit-identical to the per-device rounds, and the wire
                # messages are built per device in device order so the
                # traffic ledger matches exactly.
                sets = fleet.fleet_importance_rounds(
                    participants[0].backbone,
                    [d.header for d in participants],
                    [d.dataset for d in participants],
                    [d.importance_config for d in participants],
                )
                messages = [
                    device.build_importance_message(
                        q, include_feature_sample=include_features
                    )
                    for device, q in zip(participants, sets)
                ]
            elif participants:
                # The local importance rounds (header training + Taylor
                # accumulation) are independent per device — fan out.  The
                # network sends stay serial and in device order so the
                # traffic ledger and message sequence match the serial run.
                messages = parallel_map(
                    lambda device: device.importance_round(
                        include_feature_sample=include_features
                    ),
                    participants,
                    max_workers=workers,
                    backend=self.config.backend,
                    shared_params=self._shared_header_params(participants),
                )
                self._harvest_feature_samples(participants, messages)
            else:
                messages = []
            for message in messages:
                message.receiver = self.name
                try:
                    self.network.send_reliable(message)
                except DeliveryError:
                    continue

            # Round-level quorum: re-poll the devices whose sets are
            # missing (their cached uploads are re-sent verbatim — no
            # retraining) until enough fresh sets arrived or the retry
            # budget is spent.  A no-op on the fault-free path.
            quorum = (
                math.ceil(self.config.round_quorum * len(participants))
                if participants
                else 0
            )
            for retry in range(self.config.round_retries):
                if self._fresh_count(participants) >= quorum:
                    break
                self.round_retry_total += 1
                if self.config.retry_backoff > 0.0:
                    time.sleep(self.config.retry_backoff * (retry + 1))
                for device, message in zip(participants, messages):
                    if device.profile.device_id in self._pending_importance:
                        continue
                    try:
                        self.network.send_reliable(message)
                    except DeliveryError:
                        continue

            fresh = [
                d
                for d in participants
                if d.profile.device_id in self._pending_importance
            ]
            # Every fresh set refreshes the carry-forward store, so a
            # device that later goes dark is represented by its most
            # recent contribution.
            for d in fresh:
                did = d.profile.device_id
                self._carried[did] = self._pending_importance[did]
            self.round_participation.append(
                len(fresh) / len(self.devices) if self.devices else 0.0
            )

            if self.similarity is None or self._similarity_partial:
                self.similarity = self._compute_similarity()

            if strict:
                ordered = []
                for d in self.devices:
                    did = d.profile.device_id
                    q = self._pending_importance.get(did)
                    if q is None:
                        raise ProtocolError(
                            f"{self.name}: no importance set from device "
                            f"{did} ({d.name}) in aggregation round {t}; "
                            f"received sets from "
                            f"{sorted(self._pending_importance)} — install "
                            f"a fault policy or set round_quorum < 1.0 to "
                            f"degrade instead of failing"
                        )
                    ordered.append(q)
                personalized = aggregate_importance_sets(ordered, self.similarity)
                targets = list(self.devices)
            else:
                index_of = {
                    d.profile.device_id: i for i, d in enumerate(self.devices)
                }
                if fresh and len(fresh) >= max(1, quorum):
                    contributors = [
                        (index_of[d.profile.device_id],
                         self._pending_importance[d.profile.device_id])
                        for d in fresh
                    ]
                else:
                    # Below quorum even after retries: degrade to fresh
                    # sets plus each absent device's carried-forward one.
                    contributors = []
                    for i, d in enumerate(self.devices):
                        did = d.profile.device_id
                        if did in self._pending_importance:
                            contributors.append((i, self._pending_importance[did]))
                        elif did in self._carried:
                            contributors.append((i, self._carried[did]))
                if not contributors:
                    raise ProtocolError(
                        f"{self.name}: aggregation round {t} has no "
                        f"importance set to aggregate — no device replied "
                        f"({len(participants)} participating of "
                        f"{len(self.devices)}) and none has a prior set to "
                        f"carry forward"
                    )
                # Only devices that replied receive (and prune by) a
                # personalized set this round; absent ones catch up on
                # their next active round.
                targets = fresh
                if len(fresh) == len(self.devices):
                    # Everybody made the round: aggregate through the
                    # full-matrix path so a fault-free run under a
                    # benign policy, quorum, or deadline stays
                    # bit-identical to the strict loop (the subset
                    # path's row renormalization divides by a float
                    # row-sum that need not be exactly 1.0).
                    personalized = aggregate_importance_sets(
                        [q for _, q in contributors], self.similarity
                    )
                elif targets:
                    personalized = aggregate_importance_subset(
                        [q for _, q in contributors],
                        self.similarity,
                        rows=[index_of[d.profile.device_id] for d in targets],
                        cols=[i for i, _ in contributors],
                    )
                else:
                    personalized = []
            for device, q_prime in zip(targets, personalized):
                try:
                    self.network.send_reliable(
                        Message(
                            self.name,
                            device.name,
                            MessageKind.PERSONALIZED_SET,
                            {"importance": q_prime.astype(np.float32)},
                        )
                    )
                except DeliveryError:
                    continue
        assert self.similarity is not None
        return self.similarity

    def _fresh_count(self, participants: Sequence[DeviceNode]) -> int:
        return sum(
            1
            for d in participants
            if d.profile.device_id in self._pending_importance
        )

    # ------------------------------------------------------------------
    def _shared_header_params(self, devices: Sequence[DeviceNode]):
        """Write-through state for a process-backend fan-out.

        A device's round task (importance round / finetune / finalize)
        mutates exactly its own header parameters, so those are what the
        process backend maps into shared memory; every other mutation
        (prune masks, the network ledger) happens in the parent.  Thread
        and serial backends share memory natively — return ``None`` so
        the executor skips the arena entirely.
        """
        if self.config.backend != "process":
            return None
        return [
            list(d.header.parameters()) if d.header is not None else []
            for d in devices
        ]

    def _harvest_feature_samples(
        self, devices: Sequence[DeviceNode], messages: Sequence[Message]
    ) -> None:
        """Re-seat the per-device feature-sample cache after a process round.

        A forked worker's assignment to ``device._feature_sample`` is
        private to the worker; the sample itself still travels back in
        the upload payload.  Caching it here keeps the process backend's
        round-over-round behavior identical to threads (the sample is a
        deterministic pure function of the frozen backbone and seed, so
        this is a wall-clock concern, never a value one).
        """
        if self.config.backend != "process":
            return
        for device, message in zip(devices, messages):
            sample = message.payload.get("feature_sample")
            if sample is not None and device._feature_sample is None:
                device._feature_sample = sample

    # ------------------------------------------------------------------
    #: Sentinel distinguishing "caller did not pass max_workers" (use the
    #: config) from an explicit ``None`` (serial, per the executor contract).
    _USE_CONFIG_WORKERS = object()

    def finalize(self, max_workers: WorkerSpec = _USE_CONFIG_WORKERS) -> List[dict]:
        """Final device-side fine-tuning and evaluation.

        Each device's finetune+eval touches only that device's state, so
        the loop fans out across ``max_workers`` threads; results stay in
        device order.  When the argument is omitted the config's
        ``parallel_devices`` applies; an explicit value — including
        ``None``/0/1 for serial — follows the
        :mod:`repro.distributed.executor` contract verbatim.

        With ``batched_serving`` (the default) and a cluster whose
        devices all hold the same frozen backbone — the invariant
        :meth:`distribute_models` establishes — the evaluation half is
        served through one batched backbone forward per round
        (:func:`repro.train.serving.batched_evaluate_headers`) instead of
        one forward per device; fine-tuning still fans out per device.
        Both halves are numerically identical to the per-device loop.
        """
        if max_workers is EdgeServer._USE_CONFIG_WORKERS:
            max_workers = self.config.parallel_devices
        # Only devices that are on the fabric and actually hold a model
        # reach the finale; a dead or never-provisioned device yields no
        # result row (the cluster's participation metric reports it).
        devices = [d for d in self.devices if d.active and d.has_model]
        if not devices:
            return []
        if self._lazy_cluster():
            return self._finalize_lazy(devices)
        cluster_ready = len(devices) > 1 and all(
            d.backbone is not None and d.header is not None for d in devices
        )
        # One equivalence sweep feeds both the batched-serving and the
        # fleet eligibility checks.
        backbones_equal = cluster_ready and (
            self.config.batched_serving or self.config.fleet_training
        ) and serving.backbones_equivalent([d.backbone for d in devices])
        fleet_ready = self._fleet_ready(
            backbones_equal=backbones_equal, devices=devices
        )

        if fleet_ready:
            # Fleet-batched fine-tuning: one graph + one fused step per
            # round for the whole cluster, replacing the per-device
            # thread fan-out (bit-identical traces).  Independent of
            # ``batched_serving``, which only governs evaluation.
            from repro.train import fleet

            fleet.train_headers_fleet(
                devices[0].backbone,
                [d.header for d in devices],
                [d.dataset for d in devices],
                [d.finetune_config() for d in devices],
            )
        if self.config.batched_serving and backbones_equal:
            if not fleet_ready:
                parallel_map(
                    lambda device: device.finetune(),
                    devices,
                    max_workers=max_workers,
                    backend=self.config.backend,
                    shared_params=self._shared_header_params(devices),
                )
            return serving.batched_evaluate_headers(
                devices[0].backbone,
                [d.header for d in devices],
                [d.eval_dataset() for d in devices],
            )
        if fleet_ready:
            # Evaluation is read-only — no write-through state to share.
            return parallel_map(
                lambda device: device.evaluate(),
                devices,
                max_workers=max_workers,
                backend=self.config.backend,
            )
        return parallel_map(
            lambda device: device.finalize_round(),
            devices,
            max_workers=max_workers,
            backend=self.config.backend,
            shared_params=self._shared_header_params(devices),
        )

    def _finalize_lazy(self, devices: List[DeviceNode]) -> List[dict]:
        """Finale for a lazy cluster: serial, in LRU-capacity chunks.

        Fine-tuning hydrates each device in turn; chunking by the
        store's capacity guarantees a whole chunk is simultaneously live
        afterwards, so its evaluation can still ride one batched
        backbone forward.  Per-device results are row-independent in
        :func:`~repro.train.serving.batched_evaluate_headers`, so any
        chunking is bit-identical to the unchunked always-live finale.
        """
        store = next(d.state_store for d in devices if d.state_store is not None)
        shared_backbone = all(d.state_store is not None for d in devices) and (
            len({id(d._model_payload["backbone_state"]) for d in devices}) == 1
        )
        results: List[dict] = []
        for start in range(0, len(devices), store.capacity):
            chunk = devices[start : start + store.capacity]
            if self.config.batched_serving and shared_backbone and len(chunk) > 1:
                for device in chunk:
                    device.finetune()
                results.extend(
                    serving.batched_evaluate_headers(
                        chunk[0].backbone,
                        [d.header for d in chunk],
                        [d.eval_dataset() for d in chunk],
                    )
                )
            else:
                results.extend(device.finalize_round() for device in chunk)
        return results
