"""Module system and core layers.

A :class:`Module` owns named :class:`Parameter` tensors and child modules,
mirroring the familiar torch-style API (``parameters()``, ``train()``,
``state_dict()``) so downstream ACME code reads naturally.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as trainable state of a module."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; these are discovered automatically for ``parameters()``,
    ``state_dict()`` and recursive mode switching.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # -- attribute registration ---------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal ------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """Unique parameters (deduplicated by identity, traversal order).

        Deduplication matters when modules are shared — e.g. ENAS child
        models reusing operations from a common pool.
        """
        seen = set()
        out: List[Parameter] = []
        for _name, p in self.named_parameters():
            if id(p) not in seen:
                seen.add(id(p))
                out.append(p)
        return out

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total scalar parameter count (used for ζ-style accounting)."""
        return int(sum(p.size for p in self.parameters()))

    # -- training state --------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self, reuse_buffers: bool = False) -> None:
        """Clear all parameter gradients.

        ``reuse_buffers=True`` keeps each parameter's grad array for the
        next backward pass (see :meth:`repro.nn.tensor.Tensor.zero_grad`),
        trading a little retained memory for zero grad allocations per
        step — the mode training loops that call ``zero_grad`` every
        batch should prefer.
        """
        for p in self.parameters():
            p.zero_grad(keep_buffer=reuse_buffers)

    def astype(self, dtype) -> "Module":
        """Convert all parameters to ``dtype`` in place (grads are dropped).

        Use together with :func:`repro.nn.set_default_dtype` to move an
        already-built model into the float32 compute mode.  Any live
        optimizer holding these parameters is notified so its fused flat
        groups are rebuilt — and its state (moments/velocity) cast — in
        the new dtype instead of silently stepping stale buffers.
        """
        from repro.nn.optim import notify_params_rebound
        from repro.nn.tensor import _resolve_dtype

        resolved = np.dtype(_resolve_dtype(dtype))
        converted = []
        for p in self.parameters():
            if p.data.dtype != resolved:
                p.data = p.data.astype(resolved)
                converted.append(p)
            p.grad = None
            p._grad_buffer = None
        if converted:
            notify_params_rebound(converted, resolved)
        return self

    # -- (de)serialization ------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name in state:
                value = np.asarray(state[name])
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {value.shape} vs {param.data.shape}"
                    )
                # Copy **in place** (casting to the parameter's dtype so a
                # float64 checkpoint never flips a float32 model's compute
                # precision).  Rebinding ``param.data`` here would detach
                # the parameter from any fused optimizer's flat-buffer
                # view — and from every other holder of the live array —
                # until the next step's sync noticed; the in-place copy
                # keeps the array identity stable, so checkpoint loads are
                # visible immediately through every alias.
                np.copyto(param.data, value, casting="unsafe")

    # -- call protocol ------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine transformation ``y = x W + b`` over the last input axis."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        # Fallback: the shared per-thread stream (see repro.nn.init), so
        # two unseeded Linears never silently share identical weights.
        rng = rng if rng is not None else init.default_generator()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        flat = x.ndim == 1
        if flat:
            x = x.reshape(1, -1)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out.reshape(-1) if flat else out


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable affine."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(init.ones(normalized_shape))
        self.beta = Parameter(init.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, eps=self.eps)


class Dropout(Module):
    """Inverted dropout with its own deterministic RNG stream."""

    def __init__(self, p: float = 0.1, seed: int = 0) -> None:
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_generator()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.truncated_normal((num_embeddings, embedding_dim), rng))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        return self.weight[indices]


def has_active_stochastic_modules(module: Module) -> bool:
    """True if a forward through ``module`` would consume module-local RNG.

    Shared-model fan-outs (similarity feature extraction, NAS child
    scoring) check this before going parallel: a training-mode
    ``Dropout`` with ``p > 0`` draws from its per-module generator, and
    concurrent draws from one numpy ``Generator`` are neither
    deterministic nor safe — such models must be driven serially (or
    switched to ``eval()``) to reproduce the serial run.
    """
    return any(
        isinstance(m, Dropout) and m.p > 0 and m.training for m in module.modules()
    )


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            self.register_module(name, module)
            self._order.append(name)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def append(self, module: Module) -> None:
        name = f"layer{len(self._order)}"
        self.register_module(name, module)
        self._order.append(name)

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x


class Activation(Module):
    """Wraps a functional activation so it can live inside Sequential."""

    _FUNCTIONS: Dict[str, Callable[[Tensor], Tensor]] = {
        "relu": F.relu,
        "gelu": F.gelu,
        "tanh": F.tanh,
        "sigmoid": F.sigmoid,
        "identity": F.identity,
    }

    def __init__(self, kind: str = "gelu") -> None:
        super().__init__()
        if kind not in self._FUNCTIONS:
            raise ValueError(f"unknown activation {kind!r}; options: {sorted(self._FUNCTIONS)}")
        self.kind = kind

    def forward(self, x: Tensor) -> Tensor:
        return self._FUNCTIONS[self.kind](x)


class MLP(Module):
    """Two-layer perceptron used inside Transformer blocks.

    The hidden layer supports *neuron masking*: ACME's width pruning zeroes
    out low-importance hidden neurons (see :mod:`repro.core.importance`), and
    the mask makes that reversible without rebuilding the module.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: Optional[int] = None,
        activation: str = "gelu",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_generator()
        out_features = out_features if out_features is not None else in_features
        self.hidden_features = hidden_features
        self.fc1 = Linear(in_features, hidden_features, rng=rng)
        self.act = Activation(activation)
        self.fc2 = Linear(hidden_features, out_features, rng=rng)
        # Boolean keep-mask over hidden neurons; plain numpy (not trained).
        self.neuron_mask = np.ones(hidden_features, dtype=bool)
        # Hidden activations of the last forward pass (for Taylor importance).
        self.last_hidden = None

    def set_neuron_mask(self, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.hidden_features,):
            raise ValueError(
                f"neuron mask shape {mask.shape} != ({self.hidden_features},)"
            )
        self.neuron_mask = mask.copy()

    def active_neurons(self) -> int:
        return int(self.neuron_mask.sum())

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.act(self.fc1(x))
        self.last_hidden = hidden
        if not self.neuron_mask.all():
            hidden = hidden * Tensor(self.neuron_mask.astype(float))
        return self.fc2(hidden)
