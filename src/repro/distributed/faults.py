"""Deterministic fault injection for the in-process network fabric.

The :class:`~repro.distributed.network.Network` delivers every message
instantly and exactly once — a perfect fabric.  This module is the
controlled way to break it: a seeded :class:`FaultPolicy` that the
fabric consults before each delivery and that can

* **drop** the message (bytes leave the sender, the handler never runs),
* **corrupt** the payload (the receiver's checksum verification fails
  and the sender sees a retryable loss),
* **duplicate** the delivery (the handler runs twice, both transfers
  are accounted), or
* **delay** it straggler-style (the bytes are accounted immediately but
  the handler runs only after N further deliveries on the same ledger).

Every decision is a pure function of ``(seed, kind, sender, receiver,
per-link attempt index)``, so a chaos run is **replayable**: the same
seed reproduces the identical fault log, traffic ledger and results —
regardless of cross-edge thread interleavings, because each
(sender, receiver, kind) link is only ever used serially by one edge
pipeline.  Injected faults are recorded in :class:`FaultRecord` entries
on the fabric's ledger (sharded and merged exactly like traffic, see
``Network.merge_shards``).

The policy also owns the **churn schedule**: :meth:`FaultPolicy.device_active`
answers, per (device, round), whether a device participates — again a
pure seeded function, so join/leave patterns replay exactly.  Devices in
``FaultConfig.dead_devices`` are permanently inactive, the hard-failure
case the degraded-mode protocol must survive.

With no policy installed the fabric takes none of these paths and a run
is bit-for-bit identical to the fault-free fabric (asserted in
``tests/distributed/test_chaos.py``).  See ROBUSTNESS.md for the full
semantics and the determinism contract.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.registry import register_lock


class ProtocolError(RuntimeError):
    """A protocol invariant was violated and no degraded path applies.

    Raised with a descriptive message naming the node/device and round —
    the loud alternative to the latent ``KeyError`` the aggregation loop
    used to hit on a missing reply, and the hard-failure report when a
    cluster cannot make progress at all (every device dead).
    """


class DeliveryError(RuntimeError):
    """``send_reliable`` exhausted its retries without a clean delivery."""


class TransportFailure(RuntimeError):
    """One delivery attempt failed at the transport layer (retryable).

    Raised by a wire transport's remote-delivery stub when a send hits a
    real failure — a request timeout, a dropped connection, a peer that
    went away mid-exchange.  The fabric catches it around the handler
    invocation, records a :class:`FaultRecord` under :attr:`fault` and
    turns the attempt into the same retryable loss an injected drop
    produces, so ``send_reliable``'s retry/backoff and the degraded-mode
    protocol handle genuine network failures and simulated ones through
    one path.  The in-process loopback fabric never raises it.
    """

    def __init__(self, fault: str, message: str) -> None:
        super().__init__(message)
        #: Fault-ledger class for this failure (``"timeout"``/``"crash"``).
        self.fault = fault


#: Stream-domain separators so the fault draws, churn draws and any
#: future stream never collide for equal integer inputs.
_FAULT_STREAM = 0xFA017
_CHURN_STREAM = 0xC4021


def _h(text: str) -> int:
    """Stable 32-bit hash of a node name (process-independent)."""
    return zlib.crc32(text.encode("utf-8"))


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of a seeded chaos campaign.

    All probabilities are per delivery *attempt*; a retried message is a
    fresh attempt with a fresh (deterministic) draw.  ``drop_per_kind``
    and ``drop_per_link`` override the global ``drop`` rate for a
    message kind (e.g. ``"importance_set"``) or a ``"sender->receiver"``
    link — the knobs for targeting one protocol phase or one flaky hop.
    """

    seed: int = 0
    #: Global per-attempt probabilities.
    drop: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    #: A delayed message's handler runs after this many further
    #: deliveries on the same ledger (the straggler model).
    delay_deliveries: int = 3
    #: Per-kind / per-link drop-rate overrides (kind value / "a->b").
    drop_per_kind: Mapping[str, float] = field(default_factory=dict)
    drop_per_link: Mapping[str, float] = field(default_factory=dict)
    #: ``send_reliable`` defaults: extra attempts after the first, and
    #: the base backoff in seconds (scaled linearly per retry; keep 0.0
    #: in tests — the fabric is instant, backoff only models pacing).
    retries: int = 3
    backoff: float = 0.0
    #: Per-(device, round) probability that a device sits the round out.
    churn: float = 0.0
    #: Devices that are permanently inactive for the whole run.
    dead_devices: Tuple[int, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FaultConfig":
        """Build a config from the CLI's ``k=v,k=v`` spec string.

        Example: ``seed=7,drop=0.15,churn=0.05,dead=2|5``.  Dead-device
        ids are ``|``-separated so the whole spec stays one comma list.
        """
        floats = {"drop", "corrupt", "duplicate", "delay", "churn", "backoff"}
        ints = {"seed", "retries", "delay_deliveries"}
        kwargs: Dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(f"fault spec entry {part!r} is not key=value")
            if key in floats:
                kwargs[key] = float(value)
            elif key in ints:
                kwargs[key] = int(value)
            elif key == "dead":
                kwargs["dead_devices"] = tuple(
                    int(x) for x in value.split("|") if x.strip()
                )
            else:
                raise ValueError(
                    f"unknown fault spec key {key!r}; known: "
                    f"{sorted(floats | ints | {'dead'})}"
                )
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultDecision:
    """What the policy injects into one delivery attempt (at most one)."""

    drop: bool = False
    corrupt: bool = False
    duplicate: bool = False
    delay_deliveries: int = 0


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, recorded on the (sharded) fault ledger.

    Equality is the determinism contract: two runs with the same seed
    produce element-wise equal fault logs.  ``attempt`` is the
    per-message delivery attempt (1 = first try), which is deterministic
    per link even when edges run concurrently — unlike global sequence
    numbers, which interleave.
    """

    fault: str  # "drop" | "corrupt" | "duplicate" | "delay" | "lost" | "expired"
    kind: str
    sender: str
    receiver: str
    attempt: int
    detail: int = 0  # e.g. delay length in deliveries


class FaultPolicy:
    """Seeded fault decisions, one per delivery attempt.

    Each (kind, sender, receiver) link keeps an attempt counter; the
    decision for attempt ``n`` on a link is drawn from a generator
    seeded by ``(seed, kind, sender, receiver, n)`` — no shared stream,
    so concurrent edges cannot perturb each other's draws and a chaos
    run replays exactly.  The counter table is the only mutable state
    (lock-protected; each link is used serially, so its sub-sequence of
    draws is deterministic).
    """

    def __init__(self, config: Optional[FaultConfig] = None) -> None:
        self.config = config or FaultConfig()
        self._link_attempts: Dict[Tuple[str, str, str], int] = defaultdict(int)
        self._lock = register_lock("faults.policy")

    # -- delivery faults ------------------------------------------------
    def _drop_rate(self, kind: str, sender: str, receiver: str) -> float:
        link = f"{sender}->{receiver}"
        if link in self.config.drop_per_link:
            return float(self.config.drop_per_link[link])
        if kind in self.config.drop_per_kind:
            return float(self.config.drop_per_kind[kind])
        return self.config.drop

    def decide(self, kind: str, sender: str, receiver: str) -> Optional[FaultDecision]:
        """The fault (if any) injected into this link's next attempt."""
        key = (kind, sender, receiver)
        with self._lock:
            n = self._link_attempts[key]
            self._link_attempts[key] = n + 1
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [
                    self.config.seed & 0xFFFFFFFF,
                    _FAULT_STREAM,
                    _h(kind),
                    _h(sender),
                    _h(receiver),
                    n,
                ]
            )
        )
        # One uniform per fault class, evaluated in severity order so at
        # most one fault fires per attempt.
        u = rng.random(4)
        if u[0] < self._drop_rate(kind, sender, receiver):
            return FaultDecision(drop=True)
        if u[1] < self.config.corrupt:
            return FaultDecision(corrupt=True)
        if u[2] < self.config.duplicate:
            return FaultDecision(duplicate=True)
        if u[3] < self.config.delay:
            return FaultDecision(delay_deliveries=max(1, self.config.delay_deliveries))
        return None

    # -- churn ----------------------------------------------------------
    def is_dead(self, device_id: int) -> bool:
        return device_id in self.config.dead_devices

    def device_active(self, device_id: int, round_index: int) -> bool:
        """The seeded churn schedule: does the device attend this round?

        Dead devices never attend; otherwise each (device, round) pair
        independently leaves with probability ``churn``.  A device that
        left rejoins automatically on its next active round (the edge
        re-registers it lazily on the fabric).
        """
        if self.is_dead(device_id):
            return False
        if self.config.churn <= 0.0:
            return True
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [
                    self.config.seed & 0xFFFFFFFF,
                    _CHURN_STREAM,
                    int(device_id) & 0xFFFFFFFF,
                    int(round_index) & 0xFFFFFFFF,
                ]
            )
        )
        return bool(rng.random() >= self.config.churn)
