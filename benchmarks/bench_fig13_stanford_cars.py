"""Fig. 13 — auxiliary validation on the Stanford Cars stand-in.

Repeats the Fig. 7 comparisons on the fine-grained dataset:
(a) ACME under the storage constraint vs lightweight baselines;
(b) NAS headers vs fixed headers across backbone sizes — the paper reports
    the header effect is *larger* on this harder dataset (+14.43% average).
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import emit, emit_json, table
from repro.core.distill import DistillConfig
from repro.core.nas import HeaderSearch, NASConfig
from repro.core.segmentation import clone_model, generate_backbone
from repro.models import ViTConfig, VisionTransformer, build_baseline, build_fixed_header
from repro.train import (
    TrainConfig,
    evaluate_header,
    evaluate_model,
    train_header,
    train_model,
)

CLASSES = 16
BASELINES = ("efficient_vit", "mobile_vit", "decct")
STORAGE_LIMIT = 30_000


def _nas_header_accuracy(backbone, train_data, test_data, seed=0):
    search = HeaderSearch(
        backbone,
        train_data.num_classes,
        NASConfig(
            num_blocks=2, search_epochs=2, children_per_epoch=3,
            shared_steps_per_child=3, controller_updates_per_epoch=3,
            derive_samples=4, train_backbone=False, seed=seed,
        ),
    )
    spec = search.search(train_data).spec
    header = search.materialize_header(spec, seed=seed)
    train_header(backbone, header, train_data, TrainConfig(epochs=3, seed=seed))
    # Phase 2-1 does not freeze the backbone (§III-C); a short unfrozen
    # fine-tune matches the paper's training protocol.
    train_header(backbone, header, train_data, TrainConfig(epochs=2, seed=seed),
                 freeze_backbone=False)
    return evaluate_header(backbone, header, test_data)["accuracy"], header


def run_fig13(cars_like):
    train_data = cars_like.generate(samples_per_class=40, seed=1, name="cars-train")
    test_data = cars_like.generate(samples_per_class=16, seed=2, name="cars-test")

    vit = ViTConfig(image_size=16, patch_size=4, embed_dim=32, depth=6,
                    num_heads=4, mlp_ratio=2.0, num_classes=CLASSES)
    reference = VisionTransformer(vit, seed=0)
    train_model(reference, train_data, TrainConfig(epochs=6, seed=0))
    result = generate_backbone(
        reference, train_data, distill_config=DistillConfig(epochs=2, seed=0)
    )

    # (a) ACME model under the storage slot vs baselines.
    deployed = clone_model(result.backbone)
    deployed.scale(0.75, 3)  # ζ = 18720, leaving header room in the slot
    acme_acc, header = _nas_header_accuracy(deployed, train_data, test_data)

    # Prune the header into the remaining slot budget (Eqs. 16-18), as in
    # the Fig. 7(a) bench.
    header_budget = STORAGE_LIMIT - deployed.zeta()
    if header.parameter_count() > header_budget:
        from repro.core.header_importance import (
            ImportanceConfig,
            compute_importance_set,
            prune_by_importance,
        )

        importance = compute_importance_set(
            deployed, header, train_data,
            ImportanceConfig(max_batches_per_epoch=4, seed=0), train=False,
        )
        keep = max(0.05, min(1.0, header_budget / header.parameter_count()))
        prune_by_importance(header, importance, keep)
        train_header(deployed, header, train_data, TrainConfig(epochs=2, seed=0))
        acme_acc = evaluate_header(deployed, header, test_data)["accuracy"]

    rows_a = [{
        "name": "ACME (ours)",
        "accuracy": acme_acc,
        "params": deployed.zeta() + header.active_parameter_count(),
    }]
    for key in BASELINES:
        model = build_baseline(key, num_classes=CLASSES)
        train_model(model, train_data, TrainConfig(epochs=5, seed=0))
        rows_a.append({
            "name": model.name,
            "accuracy": evaluate_model(model, test_data)["accuracy"],
            "params": model.num_parameters(),
        })

    # (b) NAS vs fixed headers on two backbone sizes.
    rows_b = []
    for depth in (3, 6):
        backbone = clone_model(result.backbone)
        backbone.scale(1.0, depth)
        fixed_accs = {}
        for kind in ("linear", "cnn"):
            h = build_fixed_header(kind, vit.embed_dim, vit.num_patches, CLASSES,
                                   rng=np.random.default_rng(0))
            train_header(backbone, h, train_data, TrainConfig(epochs=3, seed=0))
            fixed_accs[kind] = evaluate_header(backbone, h, test_data)["accuracy"]
        nas_acc, _header = _nas_header_accuracy(backbone, train_data, test_data)
        rows_b.append({"depth": depth, **fixed_accs, "nas": nas_acc})

    return rows_a, rows_b


def test_fig13_stanford_cars(benchmark, cars_like):
    rows_a, rows_b = benchmark.pedantic(
        run_fig13, args=(cars_like,), rounds=1, iterations=1
    )
    lines = ["(a) ACME vs baselines (Stanford-Cars stand-in)"]
    lines += table(
        ["model", "accuracy", "params"],
        [[r["name"], r["accuracy"], r["params"]] for r in rows_a],
    )
    lines += ["", "(b) header comparison across backbone sizes"]
    lines += table(
        ["depth", "linear", "cnn", "NAS (ours)"],
        [[r["depth"], r["linear"], r["cnn"], r["nas"]] for r in rows_b],
    )
    margins = [r["nas"] - max(r["linear"], r["cnn"]) for r in rows_b]
    lines.append(
        "NAS margin over best fixed header: "
        + ", ".join(f"d={r['depth']}: {m * 100:+.2f}%" for r, m in zip(rows_b, margins))
    )
    lines.append("paper: +3.94% avg under storage constraint; header effect +14.43% avg")
    emit("fig13_stanford_cars", lines)
    emit_json("fig13_stanford_cars", {"baselines": rows_a, "headers": rows_b})

    acme = rows_a[0]
    feasible = [r for r in rows_a[1:] if r["params"] < STORAGE_LIMIT * 1.2]
    if feasible:
        assert acme["accuracy"] >= max(r["accuracy"] for r in feasible) - 0.02
    # NAS headers hold up on the fine-grained data too.
    for r in rows_b:
        assert r["nas"] >= max(r["linear"], r["cnn"]) - 0.05
