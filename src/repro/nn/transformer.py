"""Transformer encoder blocks with maskable width and skippable depth.

The backbone of ACME's reference model θ0 is a stack of these blocks.  Two
structural degrees of freedom matter to the paper:

* **width** — attention heads and MLP hidden neurons can be masked off
  (``head_mask`` / ``neuron_mask``), realizing the width factor ``w``;
* **depth** — whole blocks can be deactivated (``active``), realizing the
  layer count ``d``.

Both are cheap boolean toggles, so the δ(θ0, w, d) transformation of §II-C
never rebuilds parameter tensors.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn import init
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, LayerNorm, MLP, Module
from repro.nn.tensor import Tensor


class TransformerEncoderLayer(Module):
    """Pre-norm Transformer encoder block (LN → MHSA → LN → MLP)."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        mlp_ratio: float = 4.0,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_generator()
        hidden = int(embed_dim * mlp_ratio)
        self.norm1 = LayerNorm(embed_dim)
        self.attn = MultiHeadSelfAttention(embed_dim, num_heads, rng=rng)
        self.norm2 = LayerNorm(embed_dim)
        self.mlp = MLP(embed_dim, hidden, embed_dim, activation="gelu", rng=rng)
        self.drop = Dropout(dropout, seed=int(rng.integers(2**31)))
        # Depth toggle: inactive layers pass input through untouched.
        self.active: bool = True

    def forward(self, x: Tensor) -> Tensor:
        if not self.active:
            return x
        x = x + self.drop(self.attn(self.norm1(x)))
        x = x + self.drop(self.mlp(self.norm2(x)))
        return x


class TransformerEncoder(Module):
    """Stack of encoder layers with hidden-state capture for distillation.

    The distillation objective (Eq. 9) matches teacher and student hidden
    states; ``forward(..., collect_hidden=True)`` returns the per-layer
    outputs for that purpose.
    """

    def __init__(
        self,
        depth: int,
        embed_dim: int,
        num_heads: int,
        mlp_ratio: float = 4.0,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_generator()
        self.depth = depth
        self.layers: List[TransformerEncoderLayer] = []
        for i in range(depth):
            layer = TransformerEncoderLayer(
                embed_dim, num_heads, mlp_ratio=mlp_ratio, dropout=dropout, rng=rng
            )
            self.register_module(f"block{i}", layer)
            self.layers.append(layer)

    def active_depth(self) -> int:
        return sum(1 for layer in self.layers if layer.active)

    def set_active_depth(self, depth: int) -> None:
        """Keep the first ``depth`` blocks active; deactivate the rest."""
        if not 1 <= depth <= self.depth:
            raise ValueError(f"depth must be in [1, {self.depth}], got {depth}")
        for i, layer in enumerate(self.layers):
            layer.active = i < depth

    def forward(self, x: Tensor, collect_hidden: bool = False):
        hidden: List[Tensor] = []
        for layer in self.layers:
            x = layer(x)
            if collect_hidden and layer.active:
                hidden.append(x)
        if collect_hidden:
            return x, hidden
        return x

    def penultimate_and_final(self, x: Tensor):
        """Outputs of the last two *active* layers (header inputs, Fig. 5)."""
        outputs: List[Tensor] = []
        for layer in self.layers:
            x = layer(x)
            if layer.active:
                outputs.append(x)
        if len(outputs) >= 2:
            return outputs[-2], outputs[-1]
        return outputs[-1], outputs[-1]
