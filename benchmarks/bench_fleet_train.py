"""Perf trajectory bench: fleet-batched training vs the serial device loop.

Two comparisons, both run against the **current fast serial path** (fused
per-member optimizers, cached frozen features — the PR 3 defaults), so the
recorded speedups are what the fleet trainer adds on top of it:

* **fleet ``train_headers_fleet``** — a 48-member linear-probe fleet
  (the per-device personalization regime: many small headers over one
  frozen backbone, small local batches) trained as one graph per round
  with a single fused :class:`~repro.nn.optim.FleetOptimizer` step, vs
  48 serial ``train_header`` runs.  Floor: 1.5×.
* **fleet ``fleet_importance_rounds``** — a 12-member DAG-header fleet
  running Algorithm 2's local importance rounds (the aggregation loop's
  per-device phase), vs 12 serial ``compute_importance_set`` runs.
  Floor: 1.1× (DAG forwards dominate; the fleet fuses the loss,
  backward and step phases).

Both comparisons assert **bit-for-bit float64 parity** while they time:
per-member epoch losses and accuracies, final header weights, and
importance sets must equal the serial path exactly — the fleet trainer
is a pure execution-plan change.

Results are persisted machine-readably to ``bench_results/`` and merged
into ``BENCH_perf.json`` at the repo root (floors replayed in tier-1 by
``tests/test_perf_floors.py``).

Run:  PYTHONPATH=src python benchmarks/bench_fleet_train.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_fleet_train.py -s
``--smoke`` runs tiny shapes with no floor assertions and without
touching ``BENCH_perf.json`` (wired into tier-1 so this script cannot
rot between perf PRs).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit_perf, perf_record

from repro.core.header_importance import ImportanceConfig, compute_importance_set
from repro.data.synthetic import make_cifar100_like
from repro.models.blocks import HeaderSpec
from repro.models.header_dag import DAGHeader
from repro.models.headers import LinearHeader
from repro.models.vit import VisionTransformer, ViTConfig
from repro.nn.tensor import using_dtype
from repro.train.fleet import fleet_importance_rounds, train_headers_fleet
from repro.train.trainer import TrainConfig, train_header

REPO_ROOT = Path(__file__).resolve().parent.parent

# Floors asserted by emit_perf — regressions below these fail the bench.
TRAIN_FLEET_FLOOR = 1.5
IMPORTANCE_FLEET_FLOOR = 1.1


def _backbone(smoke: bool):
    vit = ViTConfig(num_classes=8, depth=1, embed_dim=16, num_heads=4, image_size=16)
    return vit, VisionTransformer(vit, seed=0)


def _timed_best(fn, repeats: int):
    fn()  # warm (im2col caches, allocator pools)
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    measurement = {
        "best_s": min(times),
        "mean_s": sum(times) / len(times),
        "repeats": repeats,
        "warmup": 1,
        "times_s": times,
    }
    return measurement, result


def bench_fleet_train(smoke: bool):
    """48 linear-probe headers: serial train_header loop vs one fleet."""
    members = 4 if smoke else 48
    vit, backbone = _backbone(smoke)
    generator = make_cifar100_like(num_classes=8, image_size=16, seed=0)
    datasets = [
        generator.generate(samples_per_class=2 if smoke else 4, seed=10 + i)
        for i in range(members)
    ]
    configs = [
        TrainConfig(epochs=1 if smoke else 2, batch_size=2, seed=i)
        for i in range(members)
    ]

    def headers():
        return [
            LinearHeader(
                vit.embed_dim, vit.num_patches, vit.num_classes,
                rng=np.random.default_rng(i),
            )
            for i in range(members)
        ]

    def run_serial():
        fleet = headers()
        reports = [
            train_header(backbone, h, d, config=c, freeze_backbone=True)
            for h, d, c in zip(fleet, datasets, configs)
        ]
        return fleet, reports

    def run_fleet():
        fleet = headers()
        reports = train_headers_fleet(backbone, fleet, datasets, configs)
        return fleet, reports

    repeats = 2 if smoke else 5
    fast, (fleet_headers, fleet_reports) = _timed_best(run_fleet, repeats)
    baseline, (serial_headers, serial_reports) = _timed_best(run_serial, repeats)

    # The fleet is a pure execution-plan change: per-member traces and
    # final weights must match the serial path bit for bit.
    for rs, rf in zip(serial_reports, fleet_reports):
        assert rs.epoch_losses == rf.epoch_losses
        assert rs.epoch_accuracies == rf.epoch_accuracies
    for s, f in zip(serial_headers, fleet_headers):
        for (name, a), (_, b) in zip(s.named_parameters(), f.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)

    return perf_record(
        "fleet_train_headers",
        fast=fast,
        baseline=baseline,
        floor=None if smoke else TRAIN_FLEET_FLOOR,
        members=members,
        final_loss=fleet_reports[0].final_loss,
    )


def bench_fleet_importance(smoke: bool):
    """12 DAG headers: serial importance rounds vs one fleet round."""
    members = 3 if smoke else 12
    vit, backbone = _backbone(smoke)
    generator = make_cifar100_like(num_classes=8, image_size=16, seed=0)
    spec = HeaderSpec.from_sequence([0, 1, 0, 2, 1, 2, 2, 0])
    datasets = [
        generator.generate(samples_per_class=2 if smoke else 4, seed=40 + i)
        for i in range(members)
    ]
    configs = [ImportanceConfig(seed=i, batch_size=4) for i in range(members)]

    def headers():
        return [
            DAGHeader(
                vit.embed_dim, vit.num_patches, vit.num_classes, spec,
                rng=np.random.default_rng(i),
            )
            for i in range(members)
        ]

    def run_serial():
        fleet = headers()
        return [
            compute_importance_set(backbone, h, d, config=c)
            for h, d, c in zip(fleet, datasets, configs)
        ]

    def run_fleet():
        fleet = headers()
        return fleet_importance_rounds(backbone, fleet, datasets, configs)

    repeats = 2 if smoke else 5
    fast, fleet_sets = _timed_best(run_fleet, repeats)
    baseline, serial_sets = _timed_best(run_serial, repeats)
    for a, b in zip(serial_sets, fleet_sets):
        np.testing.assert_array_equal(a, b)

    return perf_record(
        "fleet_importance_rounds",
        fast=fast,
        baseline=baseline,
        floor=None if smoke else IMPORTANCE_FLEET_FLOOR,
        members=members,
    )


def run_bench(smoke: bool = False):
    # The docstring's parity claims — and the committed floor history —
    # are statements about the float64 kernels; pin the engine dtype so
    # the float32 engine default cannot silently change the workload.
    with using_dtype("float64"):
        records = [bench_fleet_train(smoke), bench_fleet_importance(smoke)]
    # Smoke runs exercise the full pipeline but never touch the committed
    # trajectory file or the full run's bench_results records.
    return emit_perf(
        "bench_fleet_train_smoke" if smoke else "bench_fleet_train",
        records,
        path=None if smoke else REPO_ROOT / "BENCH_perf.json",
    )


def test_fleet_train_bench():
    run_bench()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny shapes, no floor assertions, BENCH_perf.json untouched",
    )
    run_bench(smoke=parser.parse_args().smoke)
