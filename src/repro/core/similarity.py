"""Data-distribution similarity between devices (Eqs. 19-20, Fig. 10).

The edge server compares devices by the distributions of *features* a
pre-trained model extracts from small samples of their local data:

* **Wasserstein** (ours) — the p-Wasserstein distance with an L1 ground
  metric, estimated by the sliced method: average the exact 1-D Wasserstein
  distance over random projections.  (For 1-D inputs this is exact.)
* **Jensen-Shannon** (baseline) — JS divergence between per-dimension
  feature histograms.

From raw pairwise distances ``w̃_ij`` the similarity matrix is built as
``w_ij = 1 / (1 + w̃_ij)`` (Eq. 19), then regularized by symmetrization
``W̄ = sqrt(W·Wᵀ)`` (elementwise) and row-softmax normalization (Eq. 20).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np
from scipy.stats import wasserstein_distance

from repro.data.dataset import ArrayDataset
from repro.models.vit import VisionTransformer
from repro.nn.tensor import Tensor


def extract_features(
    model: VisionTransformer, dataset: ArrayDataset, max_samples: int = 64, seed: int = 0
) -> np.ndarray:
    """CLS-token features of a small random sample (the P(D̃) of Eq. 19)."""
    rng = np.random.default_rng(seed)
    sample = dataset.sample(max_samples, rng)
    cls, _tokens = model.forward_features(Tensor(sample.images))
    return cls.data


def sliced_wasserstein(
    a: np.ndarray,
    b: np.ndarray,
    num_projections: int = 32,
    p: int = 1,
    seed: int = 0,
) -> float:
    """Sliced p-Wasserstein distance between feature clouds ``a`` and ``b``.

    Projects both clouds onto shared random unit directions and averages the
    exact 1-D Wasserstein distance; the L1 ground metric of the paper
    corresponds to ``p=1``.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"feature dims differ: {a.shape[1]} vs {b.shape[1]}")
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    rng = np.random.default_rng(seed)
    dims = a.shape[1]
    total = 0.0
    for _ in range(num_projections):
        direction = rng.normal(size=dims)
        direction /= np.linalg.norm(direction) + 1e-12
        pa = a @ direction
        pb = b @ direction
        if p == 1:
            total += wasserstein_distance(pa, pb)
        else:
            # General p: quantile-function formulation of 1-D OT.
            qs = np.linspace(0.0, 1.0, 101)
            qa = np.quantile(pa, qs)
            qb = np.quantile(pb, qs)
            total += float(np.mean(np.abs(qa - qb) ** p) ** (1.0 / p))
    return total / num_projections


def js_divergence(a: np.ndarray, b: np.ndarray, bins: int = 16) -> float:
    """Jensen-Shannon divergence between per-dimension feature histograms."""
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"feature dims differ: {a.shape[1]} vs {b.shape[1]}")
    total = 0.0
    for dim in range(a.shape[1]):
        lo = min(a[:, dim].min(), b[:, dim].min())
        hi = max(a[:, dim].max(), b[:, dim].max())
        if hi <= lo:
            continue
        edges = np.linspace(lo, hi, bins + 1)
        pa, _ = np.histogram(a[:, dim], bins=edges)
        pb, _ = np.histogram(b[:, dim], bins=edges)
        pa = pa / max(1, pa.sum()) + 1e-12
        pb = pb / max(1, pb.sum()) + 1e-12
        m = 0.5 * (pa + pb)
        total += 0.5 * float((pa * np.log(pa / m)).sum() + (pb * np.log(pb / m)).sum())
    return total / a.shape[1]


def distance_matrix(
    feature_sets: Sequence[np.ndarray],
    metric: str = "wasserstein",
    seed: int = 0,
) -> np.ndarray:
    """Pairwise distances ``w̃_ij`` under the chosen metric."""
    n = len(feature_sets)
    if n < 2:
        raise ValueError("need at least two devices to compare")
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            if metric == "wasserstein":
                d = sliced_wasserstein(feature_sets[i], feature_sets[j], seed=seed)
            elif metric == "js":
                d = js_divergence(feature_sets[i], feature_sets[j])
            else:
                raise ValueError(f"unknown metric {metric!r}")
            out[i, j] = out[j, i] = d
    return out


def similarity_from_distances(distances: np.ndarray) -> np.ndarray:
    """Eq. (19): ``w_ij = 1 / (1 + w̃_ij)``; diagonal similarity is 1."""
    distances = np.asarray(distances, dtype=np.float64)
    if (distances < 0).any():
        raise ValueError("distances must be non-negative")
    return 1.0 / (1.0 + distances)


def regularize_similarity(similarity: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Eq. (20): symmetrize by ``sqrt(W·Wᵀ)`` then row-softmax normalize.

    ``temperature`` scales the logits before the softmax.  At 1.0 this is
    Eq. (20) verbatim; smaller values sharpen the weights.  The paper's
    feature spreads are O(1) so the plain exponential discriminates well;
    this reproduction's scaled-down features have smaller spreads, so the
    aggregation path uses a sub-unit temperature to recover the same
    contrast (documented in DESIGN.md).
    """
    w = np.asarray(similarity, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ValueError(f"similarity must be square, got shape {w.shape}")
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    symmetric = np.sqrt(np.maximum(w @ w.T, 0.0)) / temperature
    exp = np.exp(symmetric - symmetric.max(axis=1, keepdims=True))
    return exp / exp.sum(axis=1, keepdims=True)


def build_similarity_matrix(
    model: VisionTransformer,
    datasets: Sequence[ArrayDataset],
    metric: str = "wasserstein",
    max_samples: int = 64,
    seed: int = 0,
    temperature: float = 0.05,
) -> np.ndarray:
    """End-to-end Eq. (19)+(20): Ŵ_s from device datasets.

    Returns the row-stochastic matrix used as aggregation weights in
    Eq. (21).  See :func:`regularize_similarity` for the temperature.
    """
    features = [
        extract_features(model, d, max_samples=max_samples, seed=seed + i)
        for i, d in enumerate(datasets)
    ]
    distances = distance_matrix(features, metric=metric, seed=seed)
    return regularize_similarity(
        similarity_from_distances(distances), temperature=temperature
    )
