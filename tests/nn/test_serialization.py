"""Tests for module serialization and byte-size accounting."""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    MLP,
    Sequential,
    array_nbytes,
    json_nbytes,
    load_state,
    module_nbytes,
    save_state,
    state_dict_nbytes,
)
from repro.nn.serialization import compressed_nbytes
from repro.nn.tensor import Tensor


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        a = Linear(6, 4, rng=np.random.default_rng(1))
        b = Linear(6, 4, rng=np.random.default_rng(2))
        path = tmp_path / "weights.npz"
        save_state(a, path)
        load_state(b, path)
        np.testing.assert_allclose(a.weight.data, b.weight.data)
        np.testing.assert_allclose(a.bias.data, b.bias.data)

    def test_roundtrip_nested(self, tmp_path):
        a = Sequential(Linear(4, 8), Linear(8, 2))
        b = Sequential(Linear(4, 8), Linear(8, 2))
        for p in a.parameters():
            p.data = p.data + 1.0
        path = tmp_path / "nested.npz"
        save_state(a, path)
        load_state(b, path)
        x = Tensor(np.ones((1, 4)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_load_shape_mismatch(self, tmp_path):
        a = Linear(4, 4)
        b = Linear(4, 5)
        path = tmp_path / "bad.npz"
        save_state(a, path)
        with pytest.raises((KeyError, ValueError)):
            load_state(b, path)


class TestByteAccounting:
    def test_state_dict_nbytes(self):
        layer = Linear(10, 10)  # 100 weights + 10 biases, float64
        assert state_dict_nbytes(layer.state_dict()) == 110 * 8

    def test_module_nbytes_matches_state_dict(self):
        mlp = MLP(8, 16, 4)
        assert module_nbytes(mlp) == state_dict_nbytes(mlp.state_dict())

    def test_array_nbytes(self):
        assert array_nbytes(np.zeros(10), np.zeros((2, 5), dtype=np.float32)) == 120

    def test_json_nbytes(self):
        size = json_nbytes({"width": 0.5, "depth": 3})
        assert 10 < size < 100

    def test_compression_is_a_lower_bound(self):
        layer = Linear(20, 20, rng=np.random.default_rng(0))
        state = layer.state_dict()
        # Compressing structured float data should not exceed raw + header.
        assert compressed_nbytes(state) < state_dict_nbytes(state) * 1.2
