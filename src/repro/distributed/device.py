"""Device node: the leaves of the hierarchy.

A device owns its private dataset and profile.  It receives the customized
(backbone, coarse header) from its edge server, then participates in the
Phase 2-2 single loop: train the header locally with the backbone frozen,
compute an importance set (Eqs. 16-18), upload it, and prune the header by
the personalized set the edge sends back.  Local data never leaves the
device — only importance sets and a tiny feature sample for similarity
estimation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.header_importance import (
    ImportanceConfig,
    compute_importance_set,
    prune_by_importance,
)
from repro.core.similarity import extract_features
from repro.data.dataset import ArrayDataset
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import Network
from repro.distributed.state_store import (
    DeviceStateLRU,
    restore_header,
    snapshot_header,
)
from repro.hw.profiles import DeviceProfile
from repro.models.blocks import HeaderSpec
from repro.models.header_dag import DAGHeader
from repro.models.vit import VisionTransformer, ViTConfig
from repro.nn.serialization import state_from_bytes, state_to_bytes
from repro.train.serving import batched_evaluate_headers
from repro.train.trainer import TrainConfig, train_header

#: Snapshot key for the cached frozen-feature sample (kept distinct from
#: the header's ``param.``/``mask.``/``pristine.`` namespaces).
_FEATURE_KEY = "feature.sample"


class DeviceNode:
    """One device ``n`` with tuple ``(G_n, C_n, θ_n)`` and private data."""

    def __init__(
        self,
        profile: DeviceProfile,
        dataset: ArrayDataset,
        network: Network,
        test_dataset: Optional[ArrayDataset] = None,
        importance_config: Optional[ImportanceConfig] = None,
        seed: int = 0,
        state_store: Optional[DeviceStateLRU] = None,
    ) -> None:
        self.profile = profile
        self.dataset = dataset
        self.test_dataset = test_dataset
        self.network = network
        self.name = f"device{profile.device_id}"
        self.seed = seed
        self.importance_config = importance_config or ImportanceConfig(seed=seed)
        self.backbone: Optional[VisionTransformer] = None
        self.header: Optional[DAGHeader] = None
        self.keep_fraction: float = 0.7
        #: Lazy-state mode: when a :class:`DeviceStateLRU` is attached,
        #: the device does not materialize its backbone/header at model
        #: distribution.  It keeps the payload, hydrates on first touch
        #: (building the header exactly as :meth:`_receive_model` would
        #: have, borrowing the store's shared backbone), and serializes
        #: its mutable state to a compact blob when the store evicts it.
        #: Every path is bit-for-bit identical to the always-live mode.
        self.state_store = state_store
        self._model_payload: Optional[dict] = None
        self._cold_state: Optional[bytes] = None
        #: Deterministic cache of the similarity feature sample: frozen
        #: backbone + fixed seed make :func:`extract_features` a pure
        #: function of installed state, so computing it once per model
        #: distribution is value-identical to recomputing per round.
        self._feature_sample: Optional[np.ndarray] = None
        #: Churn state: an inactive device is unregistered from the
        #: fabric (sends to it raise ``KeyError``) and sits out protocol
        #: rounds until :meth:`reactivate` re-registers it.
        self.active = True
        network.register(self.name, self.handle)

    # ------------------------------------------------------------------
    def deactivate(self) -> None:
        """Leave the fabric (device churned off / crashed / went dark).

        Idempotent: deactivating an already-inactive device is a no-op,
        so a churn schedule can re-assert the state every round.
        """
        if self.active:
            self.network.unregister(self.name)
            self.active = False

    def reactivate(self) -> None:
        """Rejoin the fabric under the same name (lazy re-registration).

        The device keeps whatever model state it had when it left; the
        edge's carry-forward store bridges the rounds it missed.
        """
        if not self.active:
            self.network.register(self.name, self.handle)
            self.active = True

    # ------------------------------------------------------------------
    # Lazy-state protocol (DeviceStateLRU owner interface)
    # ------------------------------------------------------------------
    @property
    def has_model(self) -> bool:
        """Whether this device holds a distributed model, live or cold.

        The protocol's participation checks use this instead of probing
        ``backbone``/``header`` directly, so a lazily evicted device
        still counts as provisioned.
        """
        if self.header is not None:
            return True
        return self.state_store is not None and self._model_payload is not None

    def _ensure_live(self) -> None:
        """Materialize model state before any use (no-op when live)."""
        if self.state_store is not None:
            assert self._model_payload is not None, "model must be distributed first"
            self.state_store.touch(self)
        assert self.backbone is not None and self.header is not None

    def _hydrate(self) -> None:
        """Store callback: build (first touch) or restore (post-evict)."""
        payload = self._model_payload
        assert payload is not None and self.state_store is not None
        self.backbone = self.state_store.shared_backbone(payload)
        config: ViTConfig = payload["vit_config"]
        spec: HeaderSpec = payload["header_spec"]
        self.header = DAGHeader(
            config.embed_dim,
            config.num_patches,
            config.num_classes,
            spec,
            rng=np.random.default_rng(self.seed),
        )
        if self._cold_state is None:
            self.header.load_state_dict(payload["header_state"])
            return
        state = state_from_bytes(self._cold_state)
        sample = state.pop(_FEATURE_KEY, None)
        if sample is not None:
            self._feature_sample = sample
        restore_header(self.header, state)
        self._cold_state = None

    def _evict(self) -> None:
        """Store callback: snapshot mutable state, drop live references."""
        assert self.header is not None
        state = snapshot_header(self.header)
        if self._feature_sample is not None:
            state[_FEATURE_KEY] = self._feature_sample
        assert self.state_store is not None
        self._cold_state = state_to_bytes(state, compress=self.state_store.compress)
        self.header = None
        self.backbone = None
        self._feature_sample = None

    # ------------------------------------------------------------------
    def handle(self, message: Message) -> Optional[Message]:
        if message.kind is MessageKind.MODEL_DISTRIBUTION:
            return self._receive_model(message)
        if message.kind is MessageKind.PERSONALIZED_SET:
            return self._receive_personalized_set(message)
        raise ValueError(f"{self.name} cannot handle {message.kind}")

    def _receive_model(self, message: Message) -> Message:
        """Install the distributed backbone + coarse header.

        In lazy mode the payload is stashed and nothing is built — the
        header materializes on first touch (:meth:`_hydrate`), from the
        same payload with the same seeded RNG, so the eventual live
        state is bit-identical to building it here.  The ACK is
        payload-free either way, so the wire traffic does not change.
        """
        self._feature_sample = None
        if self.state_store is not None:
            self.state_store.drop(self)
            self._model_payload = message.payload
            self._cold_state = None
            self.backbone = None
            self.header = None
            self.keep_fraction = float(message.payload.get("keep_fraction", 0.7))
            return Message(self.name, message.sender, MessageKind.ACK)
        config: ViTConfig = message.payload["vit_config"]
        self.backbone = VisionTransformer(config, seed=0)
        self.backbone.load_state_dict(message.payload["backbone_state"])
        self.backbone.set_importance_orders(
            head_orders=message.payload["head_orders"],
            neuron_orders=message.payload["neuron_orders"],
        )
        self.backbone.scale(message.payload["width"], message.payload["depth"])
        spec: HeaderSpec = message.payload["header_spec"]
        self.header = DAGHeader(
            config.embed_dim,
            config.num_patches,
            config.num_classes,
            spec,
            rng=np.random.default_rng(self.seed),
        )
        self.header.load_state_dict(message.payload["header_state"])
        self.keep_fraction = float(message.payload.get("keep_fraction", 0.7))
        return Message(self.name, message.sender, MessageKind.ACK)

    def _receive_personalized_set(self, message: Message) -> Message:
        """Algorithm 2 line 11: prune the header by the aggregated set Q'_n."""
        assert self.has_model, "model must be distributed first"
        self._ensure_live()
        q_prime = message.payload["importance"]
        prune_by_importance(self.header, q_prime, self.keep_fraction)
        return Message(self.name, message.sender, MessageKind.ACK)

    # ------------------------------------------------------------------
    def importance_round(self, include_feature_sample: bool = False) -> Message:
        """Run a local importance round and build the upload message.

        The caller (edge server) transmits the returned message through the
        network so the bytes are accounted on the uplink.
        """
        self._ensure_live()
        q = compute_importance_set(
            self.backbone, self.header, self.dataset, config=self.importance_config
        )
        return self.build_importance_message(q, include_feature_sample)

    def build_importance_message(
        self, importance: np.ndarray, include_feature_sample: bool = False
    ) -> Message:
        """The ``IMPORTANCE_SET`` upload for an already-computed set.

        Split from :meth:`importance_round` so the edge's fleet-batched
        local-update phase (:mod:`repro.train.fleet`), which computes all
        devices' sets in one stacked graph, produces byte-identical wire
        messages in the same device order as the per-device rounds.
        """
        assert self.backbone is not None
        # Wire format: importance sets travel as float32 (like any practical
        # serialization); local computation stays float64.
        payload = {
            "importance": np.asarray(importance).astype(np.float32),
            "device_id": self.profile.device_id,
        }
        if include_feature_sample:
            if self._feature_sample is None:
                self._feature_sample = extract_features(
                    self.backbone, self.dataset, max_samples=16, seed=self.seed
                ).astype(np.float32)
            payload["feature_sample"] = self._feature_sample
        return Message(self.name, "", MessageKind.IMPORTANCE_SET, payload)

    def finetune_config(self) -> TrainConfig:
        """The final fine-tuning schedule (shared with the fleet path)."""
        return TrainConfig(epochs=2, seed=self.seed)

    def finetune(self, config: Optional[TrainConfig] = None) -> None:
        """Final local header training (backbone frozen, mask enforced)."""
        self._ensure_live()
        train_header(
            self.backbone,
            self.header,
            self.dataset,
            config=config or self.finetune_config(),
            freeze_backbone=True,
        )

    def finalize_round(self, config: Optional[TrainConfig] = None) -> dict:
        """Final fine-tune followed by evaluation — one schedulable unit.

        This is the task the cluster-phase executor fans out: it reads
        and writes only this device's own state (its backbone, header,
        datasets and seeded RNG streams), so any number of devices can
        run their rounds concurrently and reproduce the serial result
        exactly.
        """
        self.finetune(config)
        return self.evaluate()

    def eval_dataset(self) -> ArrayDataset:
        """The split this device's accuracy is judged on."""
        return self.test_dataset if self.test_dataset is not None else self.dataset

    def evaluate(self) -> dict:
        """Accuracy of θ_n = (θH_n, θB_n) on held-out (or train) data.

        Routed through the batched serving runner
        (:mod:`repro.train.serving`) with this device as the only
        requester — tape-free end to end, and numerically identical to
        :func:`repro.train.evaluate.evaluate_header`.  The edge server
        batches whole clusters through the same runner in
        :meth:`repro.distributed.edge.EdgeServer.finalize`.
        """
        self._ensure_live()
        return batched_evaluate_headers(
            self.backbone, [self.header], [self.eval_dataset()]
        )[0]

    def dataset_upload_message(self, cloud_name: str) -> Message:
        """The centralized-system baseline: ship the raw local dataset."""
        return Message(
            self.name,
            cloud_name,
            MessageKind.DATASET_UPLOAD,
            {"dataset": self.dataset, "device_id": self.profile.device_id},
        )
