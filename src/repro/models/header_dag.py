"""DAG headers assembled from a :class:`~repro.models.blocks.HeaderSpec`.

The underlying module (Fig. 5) is a DAG of ``B`` blocks over the token
feature map; it is repeated ``U`` times, followed by global pooling, a
concatenation with the backbone's [CLS] token, and an MLP classifier.

Parameter masking for Phase 2-2: every scalar parameter of the header can be
masked via :meth:`DAGHeader.set_parameter_mask`; the importance-set pruning
of Algorithm 2 operates on this mask.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.models.blocks import (
    HeaderSpec,
    OPERATION_NAMES,
    build_operation,
    num_operations,
)
from repro.models.headers import BackboneFeatures, Header
from repro.nn import init
from repro.nn.layers import Activation, Linear, Module, Parameter, Sequential
from repro.nn.tensor import Tensor, concatenate


class _Block(Module):
    """One DAG block: op1(input1) + op2(input2)."""

    def __init__(
        self,
        spec,
        channels: int,
        rng: np.random.Generator,
        op_factory=None,
        block_index: int = 0,
    ) -> None:
        super().__init__()
        self.spec = spec
        if op_factory is None:
            self.op1 = build_operation(OPERATION_NAMES[spec.op1], channels, rng)
            self.op2 = build_operation(OPERATION_NAMES[spec.op2], channels, rng)
        else:
            # ENAS weight sharing: the factory returns (possibly shared)
            # operation modules keyed by (block, slot, op).
            self.op1 = op_factory(block_index, 0, spec.op1)
            self.op2 = op_factory(block_index, 1, spec.op2)

    def forward(self, inputs: List[Tensor]) -> Tensor:
        return self.op1(inputs[self.spec.input1]) + self.op2(inputs[self.spec.input2])


class _UnderlyingModule(Module):
    """One repetition of the B-block DAG."""

    def __init__(
        self,
        spec: HeaderSpec,
        channels: int,
        rng: np.random.Generator,
        op_factory=None,
    ) -> None:
        super().__init__()
        self.blocks: List[_Block] = []
        for b, block_spec in enumerate(spec.blocks):
            block = _Block(block_spec, channels, rng, op_factory=op_factory, block_index=b)
            self.register_module(f"block{b}", block)
            self.blocks.append(block)

    def forward(self, primary: Tensor, secondary: Tensor) -> Tensor:
        inputs = [primary, secondary]
        out = primary
        for block in self.blocks:
            out = block(inputs)
            inputs.append(out)
        return out


class DAGHeader(Header):
    """A NAS-generated header: U× (B-block DAG) → pool → [CLS] concat → MLP."""

    def __init__(
        self,
        embed_dim: int,
        num_patches: int,
        num_classes: int,
        spec: HeaderSpec,
        rng: Optional[np.random.Generator] = None,
        op_factory=None,
        classifier: Optional[Module] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_generator()
        spec.validate(num_operations())
        self.spec = spec
        self.embed_dim = embed_dim
        self.modules_list: List[_UnderlyingModule] = []
        for u in range(spec.repeats):
            module = _UnderlyingModule(spec, embed_dim, rng, op_factory=op_factory)
            self.register_module(f"module{u}", module)
            self.modules_list.append(module)
        self.classifier = classifier if classifier is not None else Sequential(
            Linear(2 * embed_dim, embed_dim, rng=rng),
            Activation("gelu"),
            Linear(embed_dim, num_classes, rng=rng),
        )
        self._parameter_mask: Optional[Dict[str, np.ndarray]] = None
        self._pristine: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Parameter masking (Phase 2-2 pruning)
    # ------------------------------------------------------------------
    def _unique_named_parameters(self):
        """(name, parameter) pairs deduplicated by identity, stable order.

        Shared-op headers (ENAS children) may reach the same parameter via
        several module paths; masking must see each parameter exactly once.
        """
        seen = set()
        out = []
        for name, p in self.named_parameters():
            if id(p) not in seen:
                seen.add(id(p))
                out.append((name, p))
        return out

    def parameter_vector(self) -> np.ndarray:
        """Flat copy of all header parameters ΥH (Eq. 16 ordering)."""
        return np.concatenate([p.data.reshape(-1) for p in self.parameters()])

    def parameter_count(self) -> int:
        return self.num_parameters()

    def set_parameter_mask(self, keep: np.ndarray) -> None:
        """Install a flat boolean keep-mask over all header parameters.

        Masked parameters are zeroed in place; pristine values are retained
        so the mask can be revised (or cleared) between aggregation rounds.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.parameter_count(),):
            raise ValueError(
                f"mask length {keep.shape} != parameter count {self.parameter_count()}"
            )
        if self._pristine is None:
            self._pristine = {name: p.data.copy() for name, p in self._unique_named_parameters()}
        masks: Dict[str, np.ndarray] = {}
        offset = 0
        for name, p in self._unique_named_parameters():
            size = p.size
            mask = keep[offset : offset + size].reshape(p.data.shape)
            masks[name] = mask
            p.data = self._pristine[name] * mask
            offset += size
        self._parameter_mask = masks

    def clear_parameter_mask(self) -> None:
        if self._pristine is not None:
            for name, p in self._unique_named_parameters():
                p.data = self._pristine[name].copy()
        self._parameter_mask = None
        self._pristine = None

    def reapply_mask(self) -> None:
        """Re-zero masked parameters in place (call after optimizer steps)."""
        if self._parameter_mask is None:
            return
        for name, p in self._unique_named_parameters():
            np.multiply(p.data, self._parameter_mask[name], out=p.data)

    def active_parameter_count(self) -> int:
        if self._parameter_mask is None:
            return self.parameter_count()
        return int(sum(m.sum() for m in self._parameter_mask.values()))

    # ------------------------------------------------------------------
    def forward(self, features: BackboneFeatures) -> Tensor:
        primary = features.tokens_as_map("final")
        secondary = features.tokens_as_map("penultimate")
        out = primary
        for module in self.modules_list:
            out = module(out, secondary)
        pooled = out.mean(axis=(2, 3))  # (N, D)
        fused = concatenate([features.cls, pooled], axis=1)
        return self.classifier(fused)
