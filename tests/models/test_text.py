"""Tests for the text modality: synthetic workloads + BERT-style backbone."""

import numpy as np
import pytest

from repro.data.synthetic_text import SyntheticTextGenerator, TextDataset, TextSpec
from repro.models.text import TextConfig, TextTransformer
from repro.nn import functional as F
from repro.nn.optim import Adam


class TestTextSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TextSpec(num_classes=1)
        with pytest.raises(ValueError):
            TextSpec(num_classes=10, vocab_size=12)
        with pytest.raises(ValueError):
            TextSpec(num_classes=4, topic_strength=0.0)


class TestTextDataset:
    def test_validation(self):
        with pytest.raises(ValueError):
            TextDataset(np.zeros((3, 4, 2), dtype=int), np.zeros(3, dtype=int), 2, 10)
        with pytest.raises(ValueError):
            TextDataset(np.zeros((3, 4), dtype=int), np.zeros(2, dtype=int), 2, 10)
        with pytest.raises(ValueError):
            TextDataset(np.full((2, 4), 99), np.zeros(2, dtype=int), 2, 10)

    def test_split(self):
        spec = TextSpec(num_classes=4)
        data = SyntheticTextGenerator(spec).generate(10)
        a, b = data.split(0.5, np.random.default_rng(0))
        assert len(a) + len(b) == len(data)

    def test_split_validation(self):
        data = SyntheticTextGenerator(TextSpec(num_classes=4)).generate(5)
        with pytest.raises(ValueError):
            data.split(1.5, np.random.default_rng(0))


class TestGenerator:
    def test_determinism(self):
        spec = TextSpec(num_classes=4)
        a = SyntheticTextGenerator(spec, seed=1).generate(5, seed=2)
        b = SyntheticTextGenerator(spec, seed=1).generate(5, seed=2)
        np.testing.assert_array_equal(a.tokens, b.tokens)

    def test_counts_and_vocab(self):
        spec = TextSpec(num_classes=5, vocab_size=40)
        data = SyntheticTextGenerator(spec).generate(6)
        assert len(data) == 30
        assert data.tokens.max() < 40

    def test_topics_are_disjoint(self):
        gen = SyntheticTextGenerator(TextSpec(num_classes=5))
        flat = gen.topics.reshape(-1)
        assert len(set(flat.tolist())) == flat.size

    def test_topic_tokens_dominate_class_sequences(self):
        spec = TextSpec(num_classes=3, topic_strength=0.8)
        gen = SyntheticTextGenerator(spec)
        data = gen.generate(20, seed=3)
        for cls in range(3):
            seqs = data.tokens[data.labels == cls]
            in_topic = np.isin(seqs, gen.topics[cls]).mean()
            assert in_topic > 0.6


class TestTextTransformer:
    def test_forward_shape(self):
        config = TextConfig(num_classes=6)
        model = TextTransformer(config, seed=0)
        tokens = np.random.default_rng(0).integers(0, 64, size=(3, 16))
        assert model(tokens).shape == (3, 6)

    def test_zeta_matches_vit_formula(self):
        config = TextConfig()
        h = 4 * config.embed_dim**2 + 4 * config.embed_dim
        expected = 2 * 0.5 * (h + 2 * config.embed_dim * config.mlp_hidden)
        assert config.zeta(0.5, 2) == pytest.approx(expected)

    def test_scaling_changes_output(self):
        model = TextTransformer(TextConfig(), seed=0)
        tokens = np.random.default_rng(0).integers(0, 64, size=(2, 16))
        full = model(tokens).data.copy()
        model.scale(0.5, 2)
        assert not np.allclose(full, model(tokens).data)
        assert model.zeta() == model.config.zeta(0.5, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            TextConfig(embed_dim=30, num_heads=4)
        model = TextTransformer(TextConfig(), seed=0)
        with pytest.raises(ValueError):
            model.set_width(0.0)
        with pytest.raises(ValueError):
            model.set_importance_orders(head_orders=[np.arange(4)])

    def test_learns_topic_classification(self):
        """The text pipeline trains end-to-end — ACME's machinery carries
        over to the BERT-style modality unchanged."""
        spec = TextSpec(num_classes=4, topic_strength=0.7)
        gen = SyntheticTextGenerator(spec, seed=0)
        data = gen.generate(25, seed=1)
        model = TextTransformer(
            TextConfig(num_classes=4, depth=2, embed_dim=32), seed=0
        )
        opt = Adam(model.parameters(), lr=2e-3)
        for _ in range(30):
            opt.zero_grad()
            loss = F.cross_entropy(model(data.tokens), data.labels)
            loss.backward()
            opt.step()
        acc = F.accuracy(model(data.tokens), data.labels)
        assert acc > 0.85

    def test_width_scaled_model_still_works(self):
        spec = TextSpec(num_classes=3, topic_strength=0.8)
        gen = SyntheticTextGenerator(spec, seed=0)
        data = gen.generate(20, seed=1)
        model = TextTransformer(TextConfig(num_classes=3, depth=2), seed=0)
        opt = Adam(model.parameters(), lr=2e-3)
        for _ in range(25):
            opt.zero_grad()
            F.cross_entropy(model(data.tokens), data.labels).backward()
            opt.step()
        model.scale(0.5, 1)
        acc = F.accuracy(model(data.tokens), data.labels)
        assert acc > 1.0 / 3  # above chance at half width, single layer
