"""First-stage header customization: ENAS-style search (§III-C).

The edge server searches for a coarse header matching its backbone:

* a **shared-parameter pool** holds one instance of every candidate
  operation per (block, slot) position; all sampled child headers reuse
  these weights (Pham et al.'s parameter sharing, Eq. 15's ω_s);
* the **controller** (:mod:`repro.core.controller`) samples architectures;
* the search alternates between optimizing ω_s on the shared dataset with
  sampled children (Monte-Carlo estimate of Eq. 15) and updating the
  controller with REINFORCE using validation accuracy as reward and a
  moving-average baseline.

Per the paper the backbone is *not* frozen at this stage; freezing it is
available as a fast path (features are then cached across steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.controller import (
    ArchitectureController,
    MovingAverageBaseline,
    SampledArchitecture,
)
from repro.data.dataset import ArrayDataset, DataLoader
from repro.models.blocks import OPERATION_NAMES, build_operation, num_operations
from repro.models.header_dag import DAGHeader
from repro.models.headers import BackboneFeatures
from repro.models.vit import VisionTransformer
from repro.nn import functional as F
from repro.nn.layers import Activation, Linear, Module, Sequential
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad


class SharedOpPool:
    """One lazily-built operation instance per (block, slot, op) position.

    Children constructed through :meth:`factory` share these modules, so
    training any child trains the pool — the ω_s of Eq. (15).
    """

    def __init__(self, channels: int, seed: int = 0) -> None:
        self.channels = channels
        self._rng = np.random.default_rng(seed)
        self._ops: Dict[Tuple[int, int, int], Module] = {}

    def factory(self, block: int, slot: int, op_index: int) -> Module:
        key = (block, slot, op_index)
        if key not in self._ops:
            self._ops[key] = build_operation(
                OPERATION_NAMES[op_index], self.channels, self._rng
            )
        return self._ops[key]

    def parameters(self):
        seen = set()
        params = []
        for op in self._ops.values():
            for p in op.parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        return params


@dataclass
class NASConfig:
    """Hyperparameters of the first-stage search."""

    num_blocks: int = 3  # B
    repeats: int = 1  # U
    search_epochs: int = 3
    children_per_epoch: int = 4  # M in the Monte-Carlo gradient (Eq. 15)
    shared_steps_per_child: int = 2
    batch_size: int = 16
    shared_lr: float = 2e-3
    controller_lr: float = 5e-3
    controller_updates_per_epoch: int = 4
    derive_samples: int = 8
    val_fraction: float = 0.3
    train_backbone: bool = True  # paper: backbone NOT frozen in stage 2-1
    grad_clip: float = 5.0
    #: Worker threads for child scoring (controller updates + derivation).
    #: Children are sampled and built serially — so the controller RNG
    #: stream and lazy shared-pool builds happen in the serial order —
    #: then scored concurrently (pure inference, deterministic results in
    #: sample order).  ``None``/0/1 = serial; -1/"auto" = CPU count.
    parallel_workers: Union[int, str, None] = None
    #: Executor backend for the child-scoring fan-out: ``"thread"``
    #: (default) or ``"process"``.  Scoring reads shared state (the
    #: backbone, the op pool) and writes none that outlives the task —
    #: rewards come back over the result pipe — so the process backend
    #: needs no shared-memory arena here; it simply moves the tape-bound
    #: child forwards past the GIL.  Deterministic either way.
    backend: str = "thread"
    #: Serve the scoring batches' backbone features from one stacked
    #: tape-free forward shared by every child (repro.train.serving)
    #: instead of recomputing them per child — numerically identical
    #: rewards, and the main amortization lever when ``train_backbone``
    #: keeps the per-child feature cache disabled.  Skipped when the
    #: backbone has active stochastic modules (training-mode dropout).
    batched_scoring: bool = True
    seed: int = 0


@dataclass
class SearchResult:
    """Everything the search produces."""

    spec: "HeaderSpec"
    reward_history: List[float] = field(default_factory=list)
    best_reward: float = 0.0


from repro.models.blocks import HeaderSpec  # noqa: E402  (dataclass forward ref)


class HeaderSearch:
    """Runs Phase 2-1 for one edge server."""

    def __init__(
        self,
        backbone: VisionTransformer,
        num_classes: int,
        config: Optional[NASConfig] = None,
    ) -> None:
        self.backbone = backbone
        self.num_classes = num_classes
        self.config = config or NASConfig()
        cfg = self.config
        self.rng = np.random.default_rng(cfg.seed)
        embed_dim = backbone.config.embed_dim
        self.pool = SharedOpPool(embed_dim, seed=cfg.seed)
        self.controller = ArchitectureController(
            num_blocks=cfg.num_blocks, repeats=cfg.repeats, seed=cfg.seed
        )
        # Shared classifier: part of ω_s, reused by every child.
        rng = np.random.default_rng(cfg.seed + 1)
        self.classifier = Sequential(
            Linear(2 * embed_dim, embed_dim, rng=rng),
            Activation("gelu"),
            Linear(embed_dim, num_classes, rng=rng),
        )
        self._controller_opt = Adam(self.controller.parameters(), lr=cfg.controller_lr)
        self._baseline = MovingAverageBaseline()
        self._feature_cache: Dict[object, BackboneFeatures] = {}

    # ------------------------------------------------------------------
    def build_child(self, spec: HeaderSpec) -> DAGHeader:
        """Instantiate a child header wired to the shared pool."""
        return DAGHeader(
            self.backbone.config.embed_dim,
            self.backbone.config.num_patches,
            self.num_classes,
            spec,
            op_factory=self.pool.factory,
            classifier=self.classifier,
        )

    def _features(self, images: np.ndarray, key=None) -> BackboneFeatures:
        """Backbone features; cached when the backbone is frozen."""
        if not self.config.train_backbone and key is not None:
            cached = self._feature_cache.get(key)
            if cached is not None:
                return cached
        cls, tokens, penult = self.backbone.forward_features_multi(Tensor(images))
        if not self.config.train_backbone:
            cls, tokens, penult = cls.detach(), tokens.detach(), penult.detach()
        features = BackboneFeatures(cls, tokens, penult)
        if not self.config.train_backbone and key is not None:
            self._feature_cache[key] = features
        return features

    def _shared_parameters(self, child: DAGHeader):
        params = self.pool.parameters() + self.classifier.parameters()
        if self.config.train_backbone:
            params = params + self.backbone.parameters()
        # Child-local params are exactly pool+classifier here, but dedupe
        # defensively in case specs ever add private modules.
        seen = {id(p) for p in params}
        for p in child.parameters():
            if id(p) not in seen:
                params.append(p)
                seen.add(id(p))
        return params

    def _train_shared(self, child: DAGHeader, loader: DataLoader) -> None:
        cfg = self.config
        optimizer = Adam(self._shared_parameters(child), lr=cfg.shared_lr)
        steps = 0
        for images, labels in loader:
            if steps >= cfg.shared_steps_per_child:
                break
            # No cache key: the loader shuffles, so batch indices are not
            # stable identities for caching.
            features = self._features(images)
            logits = child(features)
            loss = F.cross_entropy(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(optimizer.params, cfg.grad_clip)
            optimizer.step()
            steps += 1

    def evaluate(self, spec: HeaderSpec, dataset: ArrayDataset, max_batches: int = 4) -> float:
        """Validation accuracy of a spec under the shared weights."""
        return self._evaluate_child(self.build_child(spec), dataset, max_batches)

    def _evaluate_child(
        self,
        child: DAGHeader,
        dataset: ArrayDataset,
        max_batches: int = 4,
        features_by_batch: Optional[Dict[int, BackboneFeatures]] = None,
    ) -> float:
        """Score an already-built child — the parallelizable inner task.

        Pure inference over shared (frozen-for-scoring) weights: safe to
        run concurrently for many children.  ``features_by_batch`` (from
        :meth:`_prefetch_scoring_features`) supplies pre-served backbone
        features keyed by batch index so scoring skips the backbone
        entirely; without it, the feature cache may be filled redundantly
        by racing workers, but every writer computes the identical value,
        so results don't depend on scheduling.
        """
        loader = DataLoader(
            dataset,
            batch_size=self.config.batch_size,
            shuffle=False,
            # reprolint: fixed-rng -- shuffle=False never draws from this
            # stream; the pinned rng keeps eval loaders deterministic even if
            # the set_seed fallback default ever changes
            rng=np.random.default_rng(0),
        )
        correct, total = 0, 0
        # Reward scoring is pure inference (REINFORCE differentiates the
        # controller's log-probs, never the child): run it tape-free.
        with no_grad():
            for batch_idx, (images, labels) in enumerate(loader):
                if batch_idx >= max_batches:
                    break
                if features_by_batch is not None and batch_idx in features_by_batch:
                    features = features_by_batch[batch_idx]
                else:
                    features = self._features(images, key=(id(dataset), batch_idx))
                logits = child(features)
                correct += int((logits.data.argmax(axis=-1) == labels).sum())
                total += labels.shape[0]
        return correct / max(1, total)

    def _prefetch_scoring_features(
        self, dataset: ArrayDataset, max_batches: int
    ) -> Optional[Dict[int, BackboneFeatures]]:
        """Backbone features for the scoring batches, one stacked forward.

        The scoring loop visits the same first ``max_batches`` validation
        batches for every child; serving them through a single batched
        tape-free forward (:mod:`repro.train.serving`) amortizes the
        backbone cost across the whole child cohort while producing
        bit-identical features.  With a frozen backbone the persistent
        ``_feature_cache`` is consulted first and fed afterwards, so
        repeated ``_score_specs`` calls (one per controller update plus
        derivation) run the stacked forward at most once per dataset.
        Returns ``None`` (fall back to per-child computation) when
        batching is disabled or the backbone would consume module-local
        RNG.
        """
        from repro.nn.layers import has_active_stochastic_modules

        if not self.config.batched_scoring or has_active_stochastic_modules(
            self.backbone
        ):
            return None
        loader = DataLoader(
            dataset,
            batch_size=self.config.batch_size,
            shuffle=False,
            # reprolint: fixed-rng -- shuffle=False never draws from this
            # stream; the pinned rng keeps eval loaders deterministic even if
            # the set_seed fallback default ever changes
            rng=np.random.default_rng(0),
        )
        batches = []
        for batch_idx, (images, _labels) in enumerate(loader):
            if batch_idx >= max_batches:
                break
            batches.append((batch_idx, images))
        if not batches:
            return None
        frozen = not self.config.train_backbone
        features_by_batch: Dict[int, BackboneFeatures] = {}
        missing = []
        for batch_idx, images in batches:
            cached = self._feature_cache.get((id(dataset), batch_idx)) if frozen else None
            if cached is not None:
                features_by_batch[batch_idx] = cached
            else:
                missing.append((batch_idx, images))
        if missing:
            from repro.train.serving import batched_forward_features_multi

            computed = batched_forward_features_multi(
                self.backbone, [images for _idx, images in missing]
            )
            for (batch_idx, _images), features in zip(missing, computed):
                features_by_batch[batch_idx] = features
                if frozen:
                    self._feature_cache[(id(dataset), batch_idx)] = features
        return features_by_batch

    def _score_specs(
        self, specs: List[HeaderSpec], dataset: ArrayDataset, max_batches: int = 4
    ) -> List[float]:
        """Validation rewards for many specs, fanned out over workers.

        Children are built serially first (lazy shared-pool operations
        must be created in the deterministic sample order), then scored
        through the executor with rewards returned in spec order — so
        any worker count reproduces the serial loop exactly.  Scoring
        drops to serial if a forward through the shared backbone or pool
        would consume module-local RNG (training-mode dropout), since
        concurrent draws from one generator are neither deterministic
        nor safe.
        """
        from repro.distributed.executor import parallel_map  # lazy: avoids import cycle

        children = [self.build_child(spec) for spec in specs]
        features_by_batch = self._prefetch_scoring_features(dataset, max_batches)
        return parallel_map(
            lambda child: self._evaluate_child(
                child, dataset, max_batches, features_by_batch=features_by_batch
            ),
            children,
            max_workers=self.config.parallel_workers,
            serial_if_stochastic=(self.backbone, *children),
            backend=self.config.backend,
        )

    def _update_controller(self, val_set: ArrayDataset) -> float:
        """One REINFORCE update; returns the mean reward of its samples.

        Architecture sampling stays serial (it threads the controller's
        RNG stream), child scoring fans out, and the moving-average
        baseline is then updated in sample order — numerically identical
        to the fully serial loop.
        """
        cfg = self.config
        samples = [
            self.controller.sample(self.rng)
            for _ in range(cfg.controller_updates_per_epoch)
        ]
        rewards = self._score_specs([s.spec for s in samples], val_set)
        losses = None
        for sample, reward in zip(samples, rewards):
            baseline = self._baseline.update(reward)
            advantage = reward - baseline
            term = sample.log_prob * (-advantage)
            losses = term if losses is None else losses + term
        assert losses is not None
        self._controller_opt.zero_grad()
        losses.backward()
        clip_grad_norm(self.controller.parameters(), cfg.grad_clip)
        self._controller_opt.step()
        return float(np.mean(rewards))

    def search(self, dataset: ArrayDataset) -> SearchResult:
        """Run the alternating ENAS loop and derive the best header spec."""
        cfg = self.config
        train_set, val_set = dataset.split(1.0 - cfg.val_fraction, self.rng)
        result = SearchResult(spec=HeaderSpec.from_sequence([0, 0, 0, 0]))

        for _epoch in range(cfg.search_epochs):
            # Step 1: optimize shared parameters ω_s with sampled children.
            for _ in range(cfg.children_per_epoch):
                sample = self.controller.sample(self.rng)
                child = self.build_child(sample.spec)
                loader = DataLoader(
                    train_set,
                    batch_size=cfg.batch_size,
                    shuffle=True,
                    rng=self.rng,
                )
                self._train_shared(child, loader)
            # Step 2: update the controller policy θ_LSTM.
            mean_reward = self._update_controller(val_set)
            result.reward_history.append(mean_reward)

        # Derivation: sample candidates (serial, RNG-ordered), score them
        # across workers, keep the best on validation.  The greedy spec is
        # scored with the batch; the tie-breaking order (first best wins,
        # greedy only on strict improvement) matches the serial loop.
        derive_specs = [
            self.controller.sample(self.rng).spec for _ in range(cfg.derive_samples)
        ]
        greedy = self.controller.sample(self.rng, greedy=True)
        rewards = self._score_specs(derive_specs + [greedy.spec], val_set)
        best_spec, best_reward = None, -1.0
        for spec, reward in zip(derive_specs, rewards[: len(derive_specs)]):
            if reward > best_reward:
                best_spec, best_reward = spec, reward
        if rewards[-1] > best_reward:
            best_spec, best_reward = greedy.spec, rewards[-1]

        assert best_spec is not None
        result.spec = best_spec
        result.best_reward = best_reward
        return result

    def materialize_header(self, spec: HeaderSpec, seed: int = 0) -> DAGHeader:
        """Fresh (non-shared) header with weights copied from the pool.

        This is the coarse header θH_s distributed to devices: a standalone
        module whose operations start from the shared-pool weights.
        """
        header = DAGHeader(
            self.backbone.config.embed_dim,
            self.backbone.config.num_patches,
            self.num_classes,
            spec,
            rng=np.random.default_rng(seed),
        )
        # Copy shared weights where architecture positions match.
        for module in header.modules_list:
            for b, block in enumerate(module.blocks):
                for slot, op in ((0, block.op1), (1, block.op2)):
                    op_idx = block.spec.op1 if slot == 0 else block.spec.op2
                    key = (b, slot, op_idx)
                    if key in self.pool._ops:
                        op.load_state_dict(self.pool._ops[key].state_dict())
        header.classifier.load_state_dict(self.classifier.state_dict())
        return header
