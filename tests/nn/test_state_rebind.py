"""Fused optimizer state stays live across checkpoint loads and astype.

Regression suite for the ``param.data`` rebinding hole: ``Module.
load_state_dict`` used to rebind every parameter to a fresh array,
silently detaching it from the fused optimizer's flat-buffer views (and
from every other holder of the live array) until the next step's sync
noticed; ``Module.astype`` rebound storage without telling the owning
optimizer at all, zeroing its fused moments on rebuild while the
reference path kept stale old-dtype state that upcast the model back.

The fixed contract:

* ``load_state_dict`` copies **in place** — ``param.data`` identity is
  stable, so fused flat views (and any external alias of the live
  array) see the loaded values immediately;
* ``astype`` notifies every live optimizer holding the parameters: flat
  groups are rebuilt around the new arrays and the optimizer state
  (moments/velocity) follows the parameters into the new dtype on both
  the fused and the reference path;
* fused float64 training traces stay bit-for-bit identical to
  ``fused=False`` across a save → load → resume cycle.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import Activation, Linear, Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import Tensor


def _make_model():
    return Sequential(
        Linear(8, 16, rng=np.random.default_rng(1)),
        Activation("relu"),
        Linear(16, 4, rng=np.random.default_rng(2)),
    )


def _make_batch(num_classes: int = 4):
    rng = np.random.default_rng(0)
    return rng.normal(size=(32, 8)), rng.integers(0, num_classes, size=32)


def _train_step(model, optimizer, X, y, dtype=np.float64):
    logits = model(Tensor(X.astype(dtype)))
    loss = F.cross_entropy(logits, y)
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    return float(loss.data)


class TestLoadStateDictInPlace:
    def test_data_identity_stable(self):
        model = _make_model()
        state = model.state_dict()
        before = [p.data for p in model.parameters()]
        model.load_state_dict(state)
        after = [p.data for p in model.parameters()]
        assert all(a is b for a, b in zip(before, after))

    def test_live_arrays_see_the_load_immediately(self):
        """The headline regression: external holders of ``param.data``
        (the fused optimizer's flat views, serving caches) must observe a
        checkpoint load without waiting for a step-time sync."""
        model = _make_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        X, y = _make_batch()
        for _ in range(4):
            _train_step(model, optimizer, X, y)
        checkpoint = model.state_dict()
        live = [p.data for p in model.parameters()]
        for _ in range(3):
            _train_step(model, optimizer, X, y)
        model.load_state_dict(checkpoint)
        for arr, (name, value) in zip(live, checkpoint.items()):
            np.testing.assert_array_equal(arr, value, err_msg=name)

    def test_flat_views_are_the_loaded_values(self):
        """The optimizer's own flat buffer holds the loaded values, so the
        next step updates live memory, not a stale snapshot."""
        model = _make_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        X, y = _make_batch()
        for _ in range(3):
            _train_step(model, optimizer, X, y)
        checkpoint = model.state_dict()
        _train_step(model, optimizer, X, y)
        model.load_state_dict(checkpoint)
        (group,) = optimizer._flat_groups
        for p, dview in zip(group.params, group.data_views):
            assert p.data is dview
            np.testing.assert_array_equal(dview, p.data)

    def test_dtype_preserved_on_cross_dtype_load(self):
        model = _make_model().astype("float32")
        state64 = {k: v.astype(np.float64) for k, v in model.state_dict().items()}
        model.load_state_dict(state64)
        assert all(p.data.dtype == np.float32 for p in model.parameters())

    def test_shape_mismatch_still_raises(self):
        model = _make_model()
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape mismatch"):
            model.load_state_dict(state)


class TestFusedResumeParity:
    @pytest.mark.parametrize("opt_cls,kwargs", [
        (Adam, {}),
        (Adam, {"weight_decay": 0.01}),
        (SGD, {"momentum": 0.9}),
    ])
    def test_save_load_resume_bit_for_bit(self, tmp_path, opt_cls, kwargs):
        """Mid-training checkpoint load: fused float64 traces must equal
        fused=False exactly, before and after the resume."""

        def run(fused: bool):
            model = _make_model()
            optimizer = opt_cls(
                model.parameters(), lr=1e-2, fused=fused,
                reuse_grad_buffers=fused, **kwargs,
            )
            X, y = _make_batch()
            path = tmp_path / f"ckpt-{fused}"  # extensionless on purpose
            losses = []
            for step in range(10):
                losses.append(_train_step(model, optimizer, X, y))
                if step == 3:
                    save_state(model, path)
                if step == 6:
                    load_state(model, path)
            return losses, {n: p.data.copy() for n, p in model.named_parameters()}

        fused_losses, fused_params = run(True)
        ref_losses, ref_params = run(False)
        assert fused_losses == ref_losses
        for name in fused_params:
            np.testing.assert_array_equal(fused_params[name], ref_params[name], err_msg=name)


class TestAstypeInvalidation:
    def test_fused_groups_rebuilt_with_cast_state(self):
        model = _make_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        X, y = _make_batch()
        for _ in range(3):
            _train_step(model, optimizer, X, y)
        moments_before = optimizer._flat_groups[0].flat_state[0].copy()
        model.astype("float32")
        (group,) = optimizer._flat_groups
        assert group.flat_data.dtype == np.float32
        for p, dview in zip(group.params, group.data_views):
            assert p.data is dview
        # The first moment followed the parameters into float32.
        np.testing.assert_array_equal(
            group.flat_state[0], moments_before.astype(np.float32)
        )

    @pytest.mark.parametrize("fused", [True, False])
    def test_model_stays_converted_after_steps(self, fused):
        """Reference Adam used to keep float64 moments after astype and
        silently upcast the model back on the next step."""
        model = _make_model()
        optimizer = Adam(
            model.parameters(), lr=1e-2, fused=fused, reuse_grad_buffers=fused
        )
        X, y = _make_batch()
        for _ in range(3):
            _train_step(model, optimizer, X, y)
        model.astype("float32")
        for _ in range(2):
            _train_step(model, optimizer, X, y, dtype=np.float32)
        assert all(p.data.dtype == np.float32 for p in model.parameters())

    def test_fused_matches_reference_across_astype(self):
        def run(fused: bool):
            model = _make_model()
            optimizer = Adam(
                model.parameters(), lr=1e-2, fused=fused, reuse_grad_buffers=fused
            )
            X, y = _make_batch()
            for _ in range(4):
                _train_step(model, optimizer, X, y)
            model.astype("float32")
            for _ in range(4):
                _train_step(model, optimizer, X, y, dtype=np.float32)
            return {n: p.data.copy() for n, p in model.named_parameters()}

        fused_params = run(True)
        ref_params = run(False)
        for name in fused_params:
            assert fused_params[name].dtype == np.float32
            np.testing.assert_array_equal(fused_params[name], ref_params[name], err_msg=name)
