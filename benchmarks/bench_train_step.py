"""Perf trajectory bench: the allocation-lean training core vs the seed path.

Three comparisons, the first and last asserting hard speedup floors so
regressions fail loudly:

* **fused Adam step** — flat-group fused in-place Adam vs the seed
  implementation (~6 fresh temporaries and ~15 numpy calls per parameter
  per step) on a header-fleet-like parameter set: 32 headers × 32
  tensors, 1024 tensors total.  Floor: 2×.
* **fused SGD step** — same fleet with momentum.  Floor: 1.5×.
* **end-to-end ``train_header``** — fused optimizer + fused
  ``clip_grad_norm`` + in-place gradient accumulation + grad-buffer
  reuse + precomputed frozen-backbone features, vs the seed-equivalent
  path (reference optimizer/clip, allocate-per-accumulation engine,
  per-batch backbone forwards).  Floor: 1.2×.

Each optimizer record carries ``tracemalloc`` steady-state step peaks
(``fast_step_peak_bytes`` ≈ 0 vs megabytes for the baseline), and both
optimizer benches assert the fused and reference parameter trajectories
stay **bit-for-bit identical** while they time them.

Results are persisted machine-readably to ``bench_results/`` and merged
into ``BENCH_perf.json`` at the repo root — the file future perf PRs are
measured against (floors replayed in tier-1 by ``tests/test_perf_floors.py``).

Run:  PYTHONPATH=src python benchmarks/bench_train_step.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_train_step.py -s
``--smoke`` runs tiny shapes with no floor assertions and without
touching ``BENCH_perf.json`` (wired into tier-1 so this script cannot
rot between perf PRs).
"""

from __future__ import annotations

import argparse
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit_perf, perf_record, timed

from repro.data.synthetic import make_cifar100_like
from repro.models.blocks import HeaderSpec
from repro.models.header_dag import DAGHeader
from repro.models.vit import VisionTransformer, ViTConfig
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor, _set_inplace_accumulation, using_dtype
from repro.train.trainer import TrainConfig, train_header

REPO_ROOT = Path(__file__).resolve().parent.parent

# Floors asserted by emit_perf — regressions below these fail the bench.
ADAM_FLOOR = 2.0
SGD_FLOOR = 1.5
TRAIN_HEADER_FLOOR = 1.2


def _fleet_shapes(smoke: bool):
    """A cluster-of-headers parameter set: many small tensors.

    This is the regime edge fleets live in (dozens of personalized
    headers, each a few dozen weight/bias tensors) and the one where the
    seed optimizer's per-tensor dispatch and temporaries dominate.
    """
    headers = 2 if smoke else 32
    dim = 8 if smoke else 24
    return ([(dim, dim)] * 16 + [(dim,)] * 16) * headers


def _make_params(shapes):
    rng = np.random.default_rng(0)
    params = [Tensor(rng.normal(size=s), requires_grad=True) for s in shapes]
    grad_rng = np.random.default_rng(1)
    for p in params:
        p.grad = grad_rng.normal(size=p.data.shape)
    return params


def _step_peak_bytes(optimizer) -> int:
    """tracemalloc peak of one steady-state step (after warm-up)."""
    tracemalloc.start()
    optimizer.step()
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return int(peak)


def bench_optimizer_step(opt_cls, label: str, floor, smoke: bool, **opt_kwargs):
    shapes = _fleet_shapes(smoke)
    repeats = 3 if smoke else 20

    def run_mode(fused: bool):
        params = _make_params(shapes)
        optimizer = opt_cls(params, lr=1e-3, fused=fused, **opt_kwargs)
        measurement = timed(optimizer.step, repeats=repeats, warmup=3)
        peak = _step_peak_bytes(optimizer)
        return measurement, peak, params

    fast, fast_peak, fast_params = run_mode(True)
    baseline, baseline_peak, baseline_params = run_mode(False)
    # Both modes ran the same number of steps from identical state: the
    # fused trajectory must match the reference bit-for-bit.
    for a, b in zip(fast_params, baseline_params):
        np.testing.assert_array_equal(a.data, b.data)
    return perf_record(
        label,
        fast=fast,
        baseline=baseline,
        floor=floor,
        tensors=len(shapes),
        total_scalars=int(sum(int(np.prod(s)) for s in shapes)),
        fast_step_peak_bytes=fast_peak,
        baseline_step_peak_bytes=baseline_peak,
    )


# ----------------------------------------------------------------------
def _train_header_setup(smoke: bool):
    vit = ViTConfig(
        num_classes=8, depth=1 if smoke else 3, embed_dim=32, num_heads=4
    )
    generator = make_cifar100_like(num_classes=8, image_size=16, seed=0)
    dataset = generator.generate(samples_per_class=4 if smoke else 12, seed=1)
    spec = HeaderSpec.from_sequence([0, 1, 0, 2, 1, 2, 2, 0])
    config = TrainConfig(epochs=1 if smoke else 3, batch_size=16, seed=0)
    return vit, dataset, spec, config


def bench_train_header(smoke: bool):
    """End-to-end frozen-backbone header training, fast vs seed path."""
    vit, dataset, spec, base_config = _train_header_setup(smoke)
    backbone = VisionTransformer(vit, seed=0)
    repeats = 2 if smoke else 5

    def run_once(fused: bool, trace: bool = False):
        header = DAGHeader(
            vit.embed_dim, vit.num_patches, vit.num_classes, spec,
            rng=np.random.default_rng(0),
        )
        config = TrainConfig(
            epochs=base_config.epochs,
            batch_size=base_config.batch_size,
            seed=base_config.seed,
            fused_optimizer=fused,
            cached_frozen_features=fused,
        )
        _set_inplace_accumulation(fused)
        try:
            if trace:
                tracemalloc.start()
            start = time.perf_counter()
            report = train_header(backbone, header, dataset, config)
            elapsed = time.perf_counter() - start
            peak = None
            if trace:
                _current, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
        finally:
            _set_inplace_accumulation(True)
        return elapsed, report, peak

    def run_mode(fused: bool):
        run_once(fused)  # warm caches (im2col indices, allocator pools)
        times, report = [], None
        for _ in range(repeats):
            elapsed, report, _peak = run_once(fused)
            times.append(elapsed)
        _elapsed, _report, peak = run_once(fused, trace=True)
        measurement = {
            "best_s": min(times),
            "mean_s": sum(times) / len(times),
            "repeats": repeats,
            "warmup": 1,
            "times_s": times,
        }
        return measurement, report, peak

    fast, fast_report, fast_peak = run_mode(True)
    baseline, baseline_report, baseline_peak = run_mode(False)
    # The allocation-lean path must not change the training trace.
    np.testing.assert_allclose(
        fast_report.epoch_losses, baseline_report.epoch_losses, rtol=1e-9
    )
    assert fast_report.epoch_accuracies == baseline_report.epoch_accuracies
    return perf_record(
        "train_header_end_to_end",
        fast=fast,
        baseline=baseline,
        floor=None if smoke else TRAIN_HEADER_FLOOR,
        epochs=base_config.epochs,
        batch_size=base_config.batch_size,
        final_loss=fast_report.final_loss,
        final_accuracy=fast_report.final_accuracy,
        fast_run_peak_bytes=fast_peak,
        baseline_run_peak_bytes=baseline_peak,
    )


def run_bench(smoke: bool = False):
    # The committed floors and the fused-vs-reference bit-for-bit
    # contract were measured under float64 (the protocol dtype pinned
    # by ``ACMEConfig.compute_dtype``); the engine default flipped to
    # float32 in PR 9, so the bench pins its historical dtype.
    with using_dtype("float64"):
        return _run_bench(smoke)


def _run_bench(smoke: bool):
    records = [
        bench_optimizer_step(
            Adam,
            "adam_step_fused_fleet",
            None if smoke else ADAM_FLOOR,
            smoke,
        ),
        bench_optimizer_step(
            SGD,
            "sgd_step_fused_fleet",
            None if smoke else SGD_FLOOR,
            smoke,
            momentum=0.9,
        ),
        bench_train_header(smoke),
    ]
    # Smoke runs exercise the full pipeline but never touch the committed
    # trajectory file or the full run's bench_results records.
    return emit_perf(
        "bench_train_step_smoke" if smoke else "bench_train_step",
        records,
        path=None if smoke else REPO_ROOT / "BENCH_perf.json",
    )


def test_train_step_bench():
    run_bench()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny shapes, no floor assertions, BENCH_perf.json untouched",
    )
    run_bench(smoke=parser.parse_args().smoke)
