"""Full-system demo: the bidirectional single-loop protocol end-to-end.

Builds a small cloud / edge / device hierarchy, runs all of ACME's phases
through the byte-accounted network, and prints per-cluster assignments,
per-device accuracies, and the traffic ledger against the centralized
baseline.

Run:  python examples/full_system_demo.py
"""

from repro.distributed import ACMEConfig, ACMESystem


def main() -> None:
    config = ACMEConfig(
        num_clusters=2,
        devices_per_cluster=3,
        num_classes=8,
        samples_per_class=80,
        public_samples_per_class=30,
        seed=0,
    )
    print("building the three-tier system (1 cloud, 2 edges, 6 devices) ...")
    system = ACMESystem(config)

    print("running: backbone generation → PFG assignment → header NAS → "
          "personalized aggregation → fine-tune ...")
    result = system.run()

    print("\nper-cluster outcomes:")
    for cluster in result.clusters:
        accs = ", ".join(f"{a:.3f}" for a in cluster.device_accuracies)
        print(f"  {cluster.edge_name}: backbone (w={cluster.width}, "
              f"d={cluster.depth}); device accuracies [{accs}]")
    print(f"fleet mean accuracy: {result.mean_accuracy:.3f}")

    print("\ntraffic ledger:")
    for kind, nbytes in sorted(result.traffic.by_kind.items()):
        print(f"  {kind:>20}: {nbytes / 1e6:8.3f} MB")
    print(f"  {'total upload':>20}: {result.traffic.upload_megabytes():8.3f} MB")

    cs = system.run_centralized_baseline()
    print(f"\ncentralized baseline upload: {cs.upload_megabytes():.3f} MB")
    print(f"ACME upload / centralized upload: "
          f"{result.traffic.upload_bytes / cs.upload_bytes:.1%} "
          "(the paper reports ≈6% at testbed scale)")


if __name__ == "__main__":
    main()
