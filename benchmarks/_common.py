"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Results are
printed (visible with ``pytest -s``) and appended to
``bench_results/<name>.txt`` so the EXPERIMENTS.md comparison can be
re-derived at any time.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"

#: Version tag of the machine-readable perf payload written by
#: :func:`emit_perf`; bump when the schema changes shape.
PERF_SCHEMA = "perf/v1"


def emit(name: str, lines: Sequence[str]) -> None:
    """Print a result block and persist it under bench_results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n=== {name} ===")
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload) -> None:
    """Persist machine-readable results alongside the text block."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=2, default=float))


def timed(
    fn: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
) -> Dict[str, object]:
    """``timeit``-style wall-clock measurement of a zero-argument callable.

    Runs ``warmup`` untimed calls, then ``repeats`` timed ones, and
    reports the **best** time (the standard low-noise estimator) plus the
    mean and raw samples.  All perf benches report through this helper so
    numbers stay comparable across PRs.
    """
    for _ in range(warmup):
        fn()
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {
        "best_s": min(times),
        "mean_s": sum(times) / len(times),
        "repeats": repeats,
        "warmup": warmup,
        "times_s": times,
    }


def perf_record(
    label: str,
    fast: Dict[str, object],
    baseline: Dict[str, object],
    floor: Optional[float] = None,
    **extra,
) -> Dict[str, object]:
    """One fast-vs-baseline comparison in the :data:`PERF_SCHEMA` layout."""
    speedup = float(baseline["best_s"]) / max(float(fast["best_s"]), 1e-12)
    record = {
        "label": label,
        "fast": fast,
        "baseline": baseline,
        "speedup": speedup,
        "floor": floor,
        **extra,
    }
    return record


def emit_perf(
    name: str,
    records: Sequence[Dict[str, object]],
    path: Optional[Path] = None,
    extra: Optional[Dict[str, object]] = None,
    merge: bool = True,
) -> Dict[str, object]:
    """Persist perf records under ``bench_results/`` (and ``path`` if given).

    Also prints a human-readable table and **asserts every record's
    ``floor``** so speedup regressions fail loudly in CI-style runs.

    With ``merge`` (the default) the trajectory file at ``path`` is
    updated record-by-record: records whose labels this bench rewrites
    are replaced, records from other benches are preserved — so
    ``BENCH_perf.json`` can accumulate the whole perf trajectory
    (hot-path kernels, parallel cluster phases, …) regardless of which
    bench ran last.  Each record carries a ``bench`` provenance field.
    """
    records = [dict(r) for r in records]
    for record in records:
        record.setdefault("bench", name)
    payload = {
        "bench": name,
        "schema": PERF_SCHEMA,
        "unix_time": time.time(),
        "results": list(records),
    }
    if extra:
        payload.update(extra)
    # The bench_results/ copy is a diagnostic record and is written even
    # for a failing run.
    emit_json(name, payload)
    rows = [
        (
            r["label"],
            float(r["fast"]["best_s"]),
            float(r["baseline"]["best_s"]),
            f"{r['speedup']:.2f}x",
            "-" if r.get("floor") is None else f"{r['floor']:.1f}x",
        )
        for r in records
    ]
    emit(name, table(["bench", "fast best (s)", "baseline best (s)", "speedup", "floor"], rows))
    for r in records:
        floor = r.get("floor")
        if floor is not None and r["speedup"] < floor:
            raise AssertionError(
                f"{name}:{r['label']} speedup {r['speedup']:.2f}x fell below "
                f"the {floor:.1f}x floor — a perf regression slipped in"
            )
    # The canonical trajectory file (e.g. BENCH_perf.json) is only
    # updated once every floor holds, so a regressed run cannot
    # overwrite the baseline it is measured against.
    if path is not None:
        path = Path(path)
        combined = list(records)
        if merge and path.exists():
            try:
                existing = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                existing = None
            if isinstance(existing, dict) and isinstance(existing.get("results"), list):
                # Each bench owns its namespace: a run replaces ALL of its
                # own previous records (so renamed/retired labels cannot
                # linger as stale floors) and never touches records owned
                # by other benches.  Legacy records without a provenance
                # field are claimed by label.  Cross-bench label
                # collisions are left in place — the trajectory replay
                # test asserts label uniqueness, so they fail loudly
                # instead of silently deleting another bench's baseline.
                new_labels = {r.get("label") for r in records}
                kept = [
                    r
                    for r in existing["results"]
                    if isinstance(r, dict)
                    and r.get("bench") != name
                    and not ("bench" not in r and r.get("label") in new_labels)
                ]
                combined = kept + combined
        benches = sorted({str(r.get("bench", name)) for r in combined})
        trajectory = {
            "bench": "+".join(benches),
            "schema": PERF_SCHEMA,
            "unix_time": time.time(),
            "results": combined,
        }
        path.write_text(json.dumps(trajectory, indent=2, default=float))
    return payload


def table(headers: Sequence[str], rows: Sequence[Sequence]) -> List[str]:
    """Plain-text table formatting."""
    headers = [str(h) for h in headers]
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    out = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return out


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def heatmap(matrix, labels=None) -> List[str]:
    """Render a small matrix as an aligned text heatmap."""
    import numpy as np

    matrix = np.asarray(matrix)
    n = matrix.shape[0]
    labels = labels or [str(i) for i in range(n)]
    lines = ["      " + "  ".join(f"{l:>6}" for l in labels)]
    for i in range(n):
        row = "  ".join(f"{matrix[i, j]:6.3f}" for j in range(n))
        lines.append(f"{labels[i]:>5} {row}")
    return lines
