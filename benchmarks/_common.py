"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Results are
printed (visible with ``pytest -s``) and appended to
``bench_results/<name>.txt`` so the EXPERIMENTS.md comparison can be
re-derived at any time.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Sequence

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


def emit(name: str, lines: Sequence[str]) -> None:
    """Print a result block and persist it under bench_results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n=== {name} ===")
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload) -> None:
    """Persist machine-readable results alongside the text block."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=2, default=float))


def table(headers: Sequence[str], rows: Sequence[Sequence]) -> List[str]:
    """Plain-text table formatting."""
    headers = [str(h) for h in headers]
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    out = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return out


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def heatmap(matrix, labels=None) -> List[str]:
    """Render a small matrix as an aligned text heatmap."""
    import numpy as np

    matrix = np.asarray(matrix)
    n = matrix.shape[0]
    labels = labels or [str(i) for i in range(n)]
    lines = ["      " + "  ".join(f"{l:>6}" for l in labels)]
    for i in range(n):
        row = "  ".join(f"{matrix[i, j]:6.3f}" for j in range(n))
        lines.append(f"{labels[i]:>5} {row}")
    return lines
