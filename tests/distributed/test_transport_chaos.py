"""Chaos over the wire: seeded faults through real TCP processes.

Satellite 3: the PR 6 fault machinery composes with the TCP transport.
Each edge process arms its own seeded :class:`FaultPolicy` (fault draws
are pure per-link functions, so the distributed draws equal the
loopback ones) and injects drops/duplicates/delays *on the sender
side* of the wire.  For the same seed, the fault ledger, participation
fractions and per-edge kind sequences must match the loopback chaos
run exactly — replay determinism survives the socket hop.
"""

import multiprocessing

import pytest

from repro.distributed.faults import FaultConfig
from repro.distributed.system import ACMEConfig, ACMESystem, run_multiprocess


def _chaos_config(**fault_overrides) -> ACMEConfig:
    faults = dict(seed=7, drop=0.12, duplicate=0.05, delay=0.08, churn=0.1)
    faults.update(fault_overrides)
    return ACMEConfig(
        num_clusters=2,
        devices_per_cluster=3,
        num_classes=6,
        samples_per_class=18,
        compute_dtype="float64",
        seed=0,
        fault_config=FaultConfig(**faults),
    )


class TestChaosOverWire:
    @pytest.fixture(scope="class")
    def runs(self):
        cfg = _chaos_config()
        loop = ACMESystem(cfg).run()
        mp = run_multiprocess(cfg, edge_timeout=300.0)
        return loop, mp

    def test_faults_were_actually_injected(self, runs):
        loop, _mp = runs
        assert sum(loop.fault_counts.values()) > 0

    def test_fault_ledger_replays_identically(self, runs):
        loop, mp = runs
        assert mp.fault_counts == loop.fault_counts
        assert mp.total_retries == loop.total_retries
        assert mp.delivery_attempts == loop.delivery_attempts
        assert mp.failed_deliveries == loop.failed_deliveries

    def test_kind_sequences_identical(self, runs):
        loop, mp = runs
        assert mp.message_kinds == loop.message_kinds
        assert mp.edge_message_kinds == loop.edge_message_kinds

    def test_participation_and_results_identical(self, runs):
        loop, mp = runs
        assert [c.round_participation for c in mp.clusters] == [
            c.round_participation for c in loop.clusters
        ]
        assert [c.device_accuracies for c in mp.clusters] == [
            c.device_accuracies for c in loop.clusters
        ]
        assert [c.protocol_retries for c in mp.clusters] == [
            c.protocol_retries for c in loop.clusters
        ]
        assert mp.participation == loop.participation

    def test_traffic_bytes_identical_drops_included(self, runs):
        # Dropped messages still leave the sender: bytes are accounted
        # on both fabrics identically.
        loop, mp = runs
        assert mp.traffic.total_bytes == loop.traffic.total_bytes
        assert dict(mp.traffic.by_kind) == dict(loop.traffic.by_kind)

    def test_tcp_chaos_replays_against_itself(self):
        cfg = _chaos_config(seed=11, drop=0.2)
        first = run_multiprocess(cfg, edge_timeout=300.0)
        second = run_multiprocess(cfg, edge_timeout=300.0)
        assert first.fault_counts == second.fault_counts
        assert first.message_kinds == second.message_kinds
        assert [c.device_accuracies for c in first.clusters] == [
            c.device_accuracies for c in second.clusters
        ]

    def test_dead_devices_respected_over_wire(self):
        cfg = _chaos_config(seed=3, drop=0.0, duplicate=0.0, delay=0.0,
                            churn=0.0, dead_devices=(1,))
        loop = ACMESystem(cfg).run()
        mp = run_multiprocess(cfg, edge_timeout=300.0)
        assert loop.participation < 1.0
        assert mp.participation == loop.participation
        assert [c.device_accuracies for c in mp.clusters] == [
            c.device_accuracies for c in loop.clusters
        ]

    def test_no_child_processes_leak(self, runs):
        _ = runs
        assert multiprocessing.active_children() == []
