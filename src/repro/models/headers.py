"""Fixed (hand-designed) header architectures.

These are the comparison points for ACME's NAS-generated headers: the
multi-exit header designs of Bakhtiarnia et al. ("Multi-exit vision
transformer for dynamic inference", BMVC 2021) referenced by the paper in
Fig. 7(b)/8/13(b).  Every header consumes :class:`BackboneFeatures` and
emits class logits, so headers and backbones compose freely.
"""

from __future__ import annotations

import math
from typing import Final, NamedTuple, Optional

import numpy as np

from repro.nn import init
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.conv import AvgPool2d, Conv2d, GlobalAvgPool2d
from repro.nn.layers import Activation, LayerNorm, Linear, Module, Sequential
from repro.nn.tensor import Tensor, concatenate


class BackboneFeatures(NamedTuple):
    """Everything a header may consume from the backbone.

    Attributes
    ----------
    cls:
        Normalized CLS embedding, shape ``(N, D)``.
    tokens:
        Final-layer patch tokens, shape ``(N, T, D)``.
    penultimate:
        Patch tokens from the penultimate active layer, shape ``(N, T, D)``.
    """

    cls: Tensor
    tokens: Tensor
    penultimate: Tensor

    @property
    def grid_size(self) -> int:
        t = self.tokens.shape[1]
        g = int(round(math.sqrt(t)))
        if g * g != t:
            raise ValueError(f"token count {t} is not a square grid")
        return g

    def tokens_as_map(self, source: str = "final") -> Tensor:
        """Reshape patch tokens into a ``(N, D, g, g)`` feature map."""
        tokens = self.tokens if source == "final" else self.penultimate
        n, t, d = tokens.shape
        g = self.grid_size
        return tokens.transpose((0, 2, 1)).reshape(n, d, g, g)


class Header(Module):
    """Base class marking modules usable as model headers."""

    def forward(self, features: BackboneFeatures) -> Tensor:
        raise NotImplementedError


class LinearHeader(Header):
    """The reference θH_0: a single linear probe on the CLS token."""

    def __init__(
        self,
        embed_dim: int,
        num_patches: int,
        num_classes: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_generator()
        self.fc = Linear(embed_dim, num_classes, rng=rng)

    def forward(self, features: BackboneFeatures) -> Tensor:
        return self.fc(features.cls)


class MLPHeader(Header):
    """Two-layer MLP on the CLS token."""

    def __init__(
        self,
        embed_dim: int,
        num_patches: int,
        num_classes: int,
        hidden: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_generator()
        hidden = hidden or 2 * embed_dim
        self.net = Sequential(
            Linear(embed_dim, hidden, rng=rng),
            Activation("gelu"),
            Linear(hidden, num_classes, rng=rng),
        )

    def forward(self, features: BackboneFeatures) -> Tensor:
        return self.net(features.cls)


class PoolHeader(Header):
    """Global average pool over patch tokens, then linear."""

    def __init__(
        self,
        embed_dim: int,
        num_patches: int,
        num_classes: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_generator()
        self.fc = Linear(embed_dim, num_classes, rng=rng)

    def forward(self, features: BackboneFeatures) -> Tensor:
        pooled = features.tokens.mean(axis=1)
        return self.fc(pooled)


class CNNHeader(Header):
    """Convolutional header over the token grid (local-feature extractor).

    3×3 conv → GELU → pool → 3×3 conv → global pool → linear; the design
    follows the CNN exit heads used in multi-exit ViT work.
    """

    def __init__(
        self,
        embed_dim: int,
        num_patches: int,
        num_classes: int,
        channels: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_generator()
        channels = channels or embed_dim
        self.conv1 = Conv2d(embed_dim, channels, 3, padding=1, rng=rng)
        self.act = Activation("gelu")
        self.conv2 = Conv2d(channels, channels, 3, padding=1, rng=rng)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels, num_classes, rng=rng)

    def forward(self, features: BackboneFeatures) -> Tensor:
        x = features.tokens_as_map()
        x = self.act(self.conv1(x))
        x = self.act(self.conv2(x))
        return self.fc(self.pool(x))


class CNNEnsembleHeader(Header):
    """Two parallel conv paths (3×3 and 5×5) fused by addition."""

    def __init__(
        self,
        embed_dim: int,
        num_patches: int,
        num_classes: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_generator()
        self.path_a = Conv2d(embed_dim, embed_dim, 3, padding=1, rng=rng)
        self.path_b = Conv2d(embed_dim, embed_dim, 5, padding=2, rng=rng)
        self.act = Activation("gelu")
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(embed_dim, num_classes, rng=rng)

    def forward(self, features: BackboneFeatures) -> Tensor:
        x = features.tokens_as_map()
        fused = self.act(self.path_a(x) + self.path_b(x))
        return self.fc(self.pool(fused))


class AttentionHeader(Header):
    """A single extra self-attention layer over tokens, then CLS probe.

    This mirrors the "single-layer vision transformer" exit head of
    Bakhtiarnia et al. (2022).
    """

    def __init__(
        self,
        embed_dim: int,
        num_patches: int,
        num_classes: int,
        num_heads: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_generator()
        self.norm = LayerNorm(embed_dim)
        self.attn = MultiHeadSelfAttention(embed_dim, num_heads, rng=rng)
        self.fc = Linear(embed_dim, num_classes, rng=rng)

    def forward(self, features: BackboneFeatures) -> Tensor:
        n, _t, d = features.tokens.shape
        cls = features.cls.reshape(n, 1, d)
        seq = concatenate([cls, features.tokens], axis=1)
        seq = seq + self.attn(self.norm(seq))
        return self.fc(seq[:, 0, :])


class HybridHeader(Header):
    """CLS token concatenated with pooled patch tokens, then MLP."""

    def __init__(
        self,
        embed_dim: int,
        num_patches: int,
        num_classes: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_generator()
        self.net = Sequential(
            Linear(2 * embed_dim, embed_dim, rng=rng),
            Activation("gelu"),
            Linear(embed_dim, num_classes, rng=rng),
        )

    def forward(self, features: BackboneFeatures) -> Tensor:
        pooled = features.tokens.mean(axis=1)
        return self.net(concatenate([features.cls, pooled], axis=1))


#: The fixed header designs compared against NAS headers in Fig. 7(b):
#: the paper evaluates four of Bakhtiarnia et al.'s designs.
FIXED_HEADERS: Final = {
    "linear": LinearHeader,
    "mlp": MLPHeader,
    "pool": PoolHeader,
    "cnn": CNNHeader,
    "cnn_ensemble": CNNEnsembleHeader,
    "attention": AttentionHeader,
    "hybrid": HybridHeader,
}


def build_fixed_header(
    kind: str,
    embed_dim: int,
    num_patches: int,
    num_classes: int,
    rng: Optional[np.random.Generator] = None,
) -> Header:
    """Instantiate one of the named fixed header designs."""
    if kind not in FIXED_HEADERS:
        raise ValueError(f"unknown header {kind!r}; options: {sorted(FIXED_HEADERS)}")
    return FIXED_HEADERS[kind](embed_dim, num_patches, num_classes, rng=rng)
