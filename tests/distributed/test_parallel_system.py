"""Parallel multi-device execution reproduces the serial run exactly.

``ACMEConfig.parallel_devices`` fans the cluster phases (importance
rounds, finalize/eval, NAS child scoring, similarity feature extraction)
out across worker threads.  Because per-device work is state-disjoint,
results are collected in device order, and the engine's grad/dtype
switches are context-local, any worker count must reproduce the serial
float64 run **bit-for-bit** — these tests assert exactly that, end to
end and phase by phase.
"""

import numpy as np
import pytest

from repro.core.nas import HeaderSearch, NASConfig
from repro.core.similarity import build_similarity_matrix
from repro.data.synthetic import make_cifar100_like
from repro.distributed import ACMEConfig, ACMESystem
from repro.models.vit import ViTConfig, VisionTransformer


def _small_config(**overrides) -> ACMEConfig:
    base = dict(
        num_clusters=1,
        devices_per_cluster=4,
        num_classes=6,
        samples_per_class=18,
        compute_dtype="float64",
        seed=0,
    )
    base.update(overrides)
    return ACMEConfig(**base)


@pytest.fixture(scope="module")
def serial_and_parallel_runs():
    # Module-scoped fixtures set up BEFORE the function-scoped autouse
    # reset in tests/conftest.py, so reset explicitly: these runs must
    # not inherit engine state from whichever test happened to run last.
    from tests.helpers import reset_engine_state

    reset_engine_state()
    serial = ACMESystem(_small_config()).run()
    parallel = ACMESystem(_small_config(parallel_devices=4)).run()
    return serial, parallel


class TestEndToEndParity:
    def test_accuracies_bit_for_bit(self, serial_and_parallel_runs):
        serial, parallel = serial_and_parallel_runs
        for cs, cp in zip(serial.clusters, parallel.clusters):
            assert cs.device_accuracies == cp.device_accuracies
            assert cs.device_losses == cp.device_losses
            assert (cs.width, cs.depth) == (cp.width, cp.depth)

    def test_message_sequence_identical(self, serial_and_parallel_runs):
        serial, parallel = serial_and_parallel_runs
        assert serial.message_kinds == parallel.message_kinds

    def test_traffic_ledger_identical(self, serial_and_parallel_runs):
        serial, parallel = serial_and_parallel_runs
        assert serial.traffic.upload_bytes == parallel.traffic.upload_bytes
        assert serial.traffic.download_bytes == parallel.traffic.download_bytes
        assert serial.traffic.by_kind == parallel.traffic.by_kind

    def test_mean_accuracy_identical(self, serial_and_parallel_runs):
        serial, parallel = serial_and_parallel_runs
        assert serial.mean_accuracy == parallel.mean_accuracy


class TestPhaseParity:
    def test_finalize_parallel_matches_serial_per_device(self):
        """finalize() with workers equals the serial loop, device by device."""
        serial_system = ACMESystem(_small_config(finalize=False))
        serial_system.run()
        parallel_system = ACMESystem(_small_config(finalize=False))
        parallel_system.run()

        serial_evals = serial_system.edges[0].finalize(max_workers=1)
        parallel_evals = parallel_system.edges[0].finalize(max_workers=4)
        assert [e["accuracy"] for e in serial_evals] == [
            e["accuracy"] for e in parallel_evals
        ]
        assert [e["loss"] for e in serial_evals] == [e["loss"] for e in parallel_evals]

    def test_similarity_matrices_identical(self):
        serial_system = ACMESystem(_small_config(finalize=False))
        serial_system.run()
        parallel_system = ACMESystem(_small_config(finalize=False, parallel_devices=4))
        parallel_system.run()
        for es, ep in zip(serial_system.edges, parallel_system.edges):
            np.testing.assert_array_equal(es.similarity, ep.similarity)

    def test_build_similarity_matrix_worker_parity(self):
        generator = make_cifar100_like(num_classes=4, image_size=16, seed=0)
        datasets = [
            generator.generate(8, seed=10 + i, name=f"d{i}") for i in range(4)
        ]
        model = VisionTransformer(
            ViTConfig(num_classes=4, depth=2, embed_dim=32), seed=0
        )
        serial = build_similarity_matrix(model, datasets, max_workers=None)
        parallel = build_similarity_matrix(model, datasets, max_workers=4)
        np.testing.assert_array_equal(serial, parallel)

    def test_stochastic_shared_model_stays_deterministic(self):
        """Training-mode dropout forces the shared-model fan-out serial:
        concurrent draws from one per-module Generator would be neither
        deterministic nor safe, so worker counts must not change the
        matrix even then."""
        from repro.nn import has_active_stochastic_modules

        generator = make_cifar100_like(num_classes=4, image_size=16, seed=0)
        datasets = [
            generator.generate(8, seed=20 + i, name=f"d{i}") for i in range(3)
        ]

        def fresh_model():
            model = VisionTransformer(
                ViTConfig(num_classes=4, depth=2, embed_dim=32, dropout=0.2), seed=0
            )
            model.train()
            return model

        assert has_active_stochastic_modules(fresh_model())
        serial = build_similarity_matrix(fresh_model(), datasets, max_workers=None)
        parallel = build_similarity_matrix(fresh_model(), datasets, max_workers=4)
        np.testing.assert_array_equal(serial, parallel)


class TestAggregationParity:
    def test_personalized_aggregation_worker_parity(self):
        """Algorithm 2's library entry point: any worker count produces
        bit-identical weights and pruning masks."""
        from repro.core.aggregation import personalized_architecture_aggregation
        from repro.models.blocks import HeaderSpec
        from repro.models.header_dag import DAGHeader

        generator = make_cifar100_like(num_classes=4, image_size=16, seed=0)
        datasets = [
            generator.generate(8, seed=30 + i, name=f"d{i}") for i in range(3)
        ]

        def run(workers):
            backbone = VisionTransformer(
                ViTConfig(num_classes=4, depth=2, embed_dim=32), seed=0
            )
            spec = HeaderSpec.from_sequence([0, 1, 0, 2])
            headers = [
                DAGHeader(
                    32,
                    backbone.config.num_patches,
                    4,
                    spec,
                    rng=np.random.default_rng(i),
                )
                for i in range(3)
            ]
            return personalized_architecture_aggregation(
                backbone, headers, datasets, num_rounds=1, max_workers=workers
            )

        serial, parallel = run(None), run(4)
        np.testing.assert_array_equal(serial.weights, parallel.weights)
        for hs, hp in zip(serial.headers, parallel.headers):
            assert set(hs._parameter_mask) == set(hp._parameter_mask)
            for key in hs._parameter_mask:
                np.testing.assert_array_equal(
                    hs._parameter_mask[key], hp._parameter_mask[key]
                )


class TestNASParity:
    def _search(self, workers):
        backbone = VisionTransformer(
            ViTConfig(num_classes=4, depth=2, embed_dim=32), seed=0
        )
        config = NASConfig(
            num_blocks=2,
            search_epochs=1,
            children_per_epoch=1,
            shared_steps_per_child=1,
            controller_updates_per_epoch=2,
            derive_samples=3,
            train_backbone=False,
            parallel_workers=workers,
            seed=0,
        )
        generator = make_cifar100_like(num_classes=4, image_size=16, seed=0)
        dataset = generator.generate(10, seed=5, name="nas")
        search = HeaderSearch(backbone, 4, config)
        return search.search(dataset)

    def test_parallel_child_scoring_matches_serial(self):
        serial = self._search(workers=None)
        parallel = self._search(workers=4)
        assert serial.spec.to_sequence() == parallel.spec.to_sequence()
        assert serial.best_reward == parallel.best_reward
        assert serial.reward_history == parallel.reward_history


class TestConfigWiring:
    def test_parallel_devices_propagates_to_edge_and_nas(self):
        config = _small_config(parallel_devices=3)
        assert config.edge.parallel_devices == 3
        assert config.edge.nas.parallel_workers == 3

    def test_explicit_edge_setting_not_clobbered(self):
        from repro.core.nas import NASConfig
        from repro.distributed.edge import EdgeConfig

        edge = EdgeConfig(
            nas=NASConfig(seed=0, parallel_workers=2), parallel_devices=2, seed=0
        )
        config = _small_config(parallel_devices=8, edge=edge)
        assert config.edge.parallel_devices == 2
        assert config.edge.nas.parallel_workers == 2

    def test_default_stays_serial(self):
        config = _small_config()
        assert config.edge.parallel_devices is None
        assert config.edge.nas.parallel_workers is None
