"""Property-based protocol layer: seeded-random scenario sweep.

Rather than hand-picking fault configurations, these tests draw random
topologies, fault policies, quorums and deadlines from a seeded
generator and assert the *invariants* every ACME run must keep:

1. the system never hangs and never raises anything past
   :class:`~repro.distributed.faults.ProtocolError`;
2. participation stays in ``(0, 1]`` and per-cluster round telemetry is
   complete;
3. each edge's aggregation weights (the similarity matrix) stay
   row-stochastic — the convexity precondition of Eq. (21), full-round
   and masked subset alike;
4. replaying the identical scenario reproduces the identical kind
   sequence, fault counts and traffic ledger (replay-determinism).

The generator is a seeded-random equivalent of a hypothesis strategy:
fixed seeds make failures reproducible by scenario index.
"""

import numpy as np
import pytest

from repro.distributed import (
    ACMEConfig,
    ACMESystem,
    FaultConfig,
    ProtocolError,
)


def _random_scenario(rng: np.random.Generator) -> ACMEConfig:
    """One random-but-seeded system configuration."""
    fault = None
    if rng.random() < 0.8:
        fault = FaultConfig(
            seed=int(rng.integers(0, 1000)),
            drop=float(rng.choice([0.0, 0.1, 0.2])),
            churn=float(rng.choice([0.0, 0.05, 0.1])),
            duplicate=float(rng.choice([0.0, 0.05])),
            retries=int(rng.integers(1, 4)),
        )
    config = ACMEConfig(
        num_clusters=int(rng.integers(1, 3)),
        devices_per_cluster=int(rng.integers(2, 4)),
        num_classes=4,
        samples_per_class=12,
        finalize=False,
        compute_dtype="float64",
        fault_config=fault,
        seed=int(rng.integers(0, 1000)),
    )
    config.edge.round_quorum = float(rng.choice([0.5, 0.67, 1.0] if fault is None else [0.5, 0.67]))
    config.edge.round_retries = int(rng.integers(1, 3))
    if rng.random() < 0.3:
        # A deadline somewhere inside the plausible latency range; some
        # draws exclude nobody, some exclude slow devices entirely.
        config.edge.round_deadline = float(rng.uniform(2.0, 12.0))
    return config


def _run(config: ACMEConfig):
    from tests.helpers import reset_engine_state

    reset_engine_state()
    system = ACMESystem(config)
    result = system.run()
    return system, result


class TestScenarioSweep:
    @pytest.mark.parametrize("scenario", range(5))
    def test_invariants_hold(self, scenario):
        rng = np.random.default_rng(9000 + scenario)
        config = _random_scenario(rng)
        try:
            system, result = _run(config)
        except ProtocolError:
            # A legitimate terminal outcome (e.g. a cluster whose every
            # upload died past the retry budget) — loud, typed, no hang.
            return

        # -- participation ------------------------------------------------
        assert 0.0 < result.participation <= 1.0
        for cluster in result.clusters:
            assert len(cluster.round_participation) == config.edge.aggregation_rounds
            for rate in cluster.round_participation:
                assert 0.0 <= rate <= 1.0

        # -- aggregation weights are row-stochastic -----------------------
        for edge in system.edges:
            assert edge.similarity is not None
            rows = edge.similarity.sum(axis=1)
            np.testing.assert_allclose(rows, np.ones_like(rows), atol=1e-9)
            assert np.all(edge.similarity >= 0.0)

        # -- ledger sanity ------------------------------------------------
        assert system.network.stats.total_bytes > 0
        counts = system.network.kind_counts
        assert counts.get("model_distribution", 0) > 0
        assert counts.get("importance_set", 0) > 0

    @pytest.mark.parametrize("scenario", range(2))
    def test_replay_determinism(self, scenario):
        rng = np.random.default_rng(4200 + scenario)
        config = _random_scenario(rng)

        def observe():
            try:
                system, result = _run(config)
            except ProtocolError as err:
                return ("protocol-error", str(err))
            return (
                system.network.kind_sequence(),
                system.network.fault_counts(),
                system.network.stats.total_bytes,
                result.participation,
                [c.round_participation for c in result.clusters],
            )

        assert observe() == observe()
