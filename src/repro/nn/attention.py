"""Multi-head self-attention with maskable heads.

ACME's backbone generation (§III-B1) ranks attention heads by first-order
Taylor importance and removes the least important ones.  To support this,
:class:`MultiHeadSelfAttention` keeps a boolean *head mask*: masked heads
contribute zero output but remain in the parameter tensors, so pruning is
reversible and importance can be re-estimated cheaply.  It also exposes the
per-head output tensor of the last forward pass, which is exactly the
``O_h`` required by Eq. (8): ``I_h = |∂F/∂O_h · O_h|``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor


class MultiHeadSelfAttention(Module):
    """Standard pre-softmax-scaled multi-head self-attention.

    Parameters
    ----------
    embed_dim:
        Token embedding dimension.
    num_heads:
        Number of attention heads; must divide ``embed_dim``.
    rng:
        Random generator for weight initialization.
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError(
                f"embed_dim {embed_dim} must be divisible by num_heads {num_heads}"
            )
        rng = rng if rng is not None else init.default_generator()
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.qkv = Linear(embed_dim, 3 * embed_dim, rng=rng)
        self.proj = Linear(embed_dim, embed_dim, rng=rng)
        # Boolean keep-mask over heads; plain numpy state, not trained.
        self.head_mask = np.ones(num_heads, dtype=bool)
        # Per-head outputs of the most recent forward pass (for Eq. 8).
        self.last_head_output: Optional[Tensor] = None

    def set_head_mask(self, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_heads,):
            raise ValueError(f"head mask shape {mask.shape} != ({self.num_heads},)")
        self.head_mask = mask.copy()

    def active_heads(self) -> int:
        return int(self.head_mask.sum())

    def forward(self, x: Tensor) -> Tensor:
        n, t, d = x.shape
        h, hd = self.num_heads, self.head_dim

        qkv = self.qkv(x)  # (N, T, 3D)
        qkv = qkv.reshape(n, t, 3, h, hd)
        qkv = qkv.transpose((2, 0, 3, 1, 4))  # (3, N, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(hd))  # (N, H, T, T)
        attn = F.softmax(scores, axis=-1)
        heads = attn @ v  # (N, H, T, hd)

        # Record per-head output and apply the keep-mask.  The mask
        # multiplies the recorded tensor so that gradients w.r.t. O_h are
        # observable on ``last_head_output`` — Eq. (8) reads them directly.
        self.last_head_output = heads
        if not self.head_mask.all():
            mask = Tensor(self.head_mask.astype(float).reshape(1, h, 1, 1))
            heads = heads * mask

        merged = heads.transpose((0, 2, 1, 3)).reshape(n, t, d)
        return self.proj(merged)
