"""BERT-style text backbone with the same δ(θ0, w, d) scalability.

Demonstrates the paper's claim that ACME "can serve different
Transformer-based models": the encoder, width masking (heads + MLP
neurons), depth toggling, importance ordering and ζ accounting are all the
*same machinery* as the ViT backbone — only the embedding front-end
changes (token + position embeddings with a [CLS] slot instead of patch
projection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.layers import LayerNorm, Linear, Module, Parameter
from repro.nn.tensor import Tensor, concatenate
from repro.nn.transformer import TransformerEncoder


@dataclass(frozen=True)
class TextConfig:
    """Architecture of the reference text backbone."""

    vocab_size: int = 64
    seq_len: int = 16
    embed_dim: int = 32
    depth: int = 4
    num_heads: int = 4
    mlp_ratio: float = 2.0
    num_classes: int = 8

    def __post_init__(self) -> None:
        if self.embed_dim % self.num_heads != 0:
            raise ValueError("num_heads must divide embed_dim")

    @property
    def mlp_hidden(self) -> int:
        return int(self.embed_dim * self.mlp_ratio)

    @property
    def head_params(self) -> int:
        d = self.embed_dim
        return 4 * d * d + 4 * d

    def zeta(self, width: float, depth: int) -> float:
        """The same ζ(θ) = d·w·(H + 2·ξ_h·ξ_f) size model as the ViT."""
        if not 0.0 < width <= 1.0:
            raise ValueError(f"width must be in (0, 1], got {width}")
        if not 1 <= depth <= self.depth:
            raise ValueError(f"depth must be in [1, {self.depth}], got {depth}")
        return depth * width * (self.head_params + 2 * self.embed_dim * self.mlp_hidden)


class TextTransformer(Module):
    """Token-classification Transformer: embeddings → encoder → CLS head."""

    def __init__(self, config: TextConfig, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.token_embed = Parameter(
            init.truncated_normal((config.vocab_size, config.embed_dim), rng)
        )
        self.cls_token = Parameter(init.truncated_normal((1, 1, config.embed_dim), rng))
        self.pos_embed = Parameter(
            init.truncated_normal((1, config.seq_len + 1, config.embed_dim), rng)
        )
        self.encoder = TransformerEncoder(
            depth=config.depth,
            embed_dim=config.embed_dim,
            num_heads=config.num_heads,
            mlp_ratio=config.mlp_ratio,
            rng=rng,
        )
        self.norm = LayerNorm(config.embed_dim)
        self.head = Linear(config.embed_dim, config.num_classes, rng=rng)
        self._head_orders: List[np.ndarray] = [
            np.arange(config.num_heads) for _ in range(config.depth)
        ]
        self._neuron_orders: List[np.ndarray] = [
            np.arange(config.mlp_hidden) for _ in range(config.depth)
        ]
        self.width: float = 1.0

    # -- δ(θ0, w, d), identical contract to the ViT ---------------------
    def set_importance_orders(self, head_orders=None, neuron_orders=None) -> None:
        if head_orders is not None:
            if len(head_orders) != self.config.depth:
                raise ValueError("need one head order per layer")
            self._head_orders = [np.asarray(o, dtype=np.int64) for o in head_orders]
        if neuron_orders is not None:
            if len(neuron_orders) != self.config.depth:
                raise ValueError("need one neuron order per layer")
            self._neuron_orders = [np.asarray(o, dtype=np.int64) for o in neuron_orders]

    def set_width(self, width: float) -> None:
        if not 0.0 < width <= 1.0:
            raise ValueError(f"width must be in (0, 1], got {width}")
        cfg = self.config
        keep_heads = max(1, int(round(width * cfg.num_heads)))
        keep_neurons = max(1, int(round(width * cfg.mlp_hidden)))
        for i, layer in enumerate(self.encoder.layers):
            head_mask = np.zeros(cfg.num_heads, dtype=bool)
            head_mask[self._head_orders[i][:keep_heads]] = True
            layer.attn.set_head_mask(head_mask)
            neuron_mask = np.zeros(cfg.mlp_hidden, dtype=bool)
            neuron_mask[self._neuron_orders[i][:keep_neurons]] = True
            layer.mlp.set_neuron_mask(neuron_mask)
        self.width = width

    def set_depth(self, depth: int) -> None:
        self.encoder.set_active_depth(depth)

    def scale(self, width: float, depth: int) -> "TextTransformer":
        self.set_width(width)
        self.set_depth(depth)
        return self

    @property
    def depth(self) -> int:
        return self.encoder.active_depth()

    def zeta(self) -> float:
        return self.config.zeta(self.width, self.depth)

    # -- forward ---------------------------------------------------------
    def _embed(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        n = tokens.shape[0]
        embedded = self.token_embed[tokens]  # (N, T, D)
        cls = self.cls_token + Tensor(np.zeros((n, 1, self.config.embed_dim)))
        seq = concatenate([cls, embedded], axis=1)
        return seq + self.pos_embed

    def forward_features(self, tokens: np.ndarray) -> Tuple[Tensor, Tensor]:
        x = self.encoder(self._embed(tokens))
        x = self.norm(x)
        return x[:, 0, :], x[:, 1:, :]

    def forward(self, tokens: np.ndarray) -> Tensor:
        cls, _seq = self.forward_features(tokens)
        return self.head(cls)
