"""Simulated network with full traffic accounting — sharded for parallelism.

The :class:`Network` delivers messages between named nodes instantly (this
is a protocol/cost simulation, not a latency simulation) and records every
transfer: per message kind, per direction, and per (sender, receiver) pair.
Table I's "Upload Data" column is read directly from these counters.

Concurrency model.  The fabric is a two-level ledger:

* the root :class:`Network` owns the handler table and the *global*
  ledger (``stats`` + ``log``);
* a :class:`NetworkShard` (one per edge cluster, created with
  :meth:`Network.shard`) records traffic into its own *local* ledger
  while delivering through the root's handler table.  Shards touch no
  root ledger state, so any number of edges can send concurrently;
  :meth:`Network.merge_shards` then folds the local ledgers into the
  global one **in the deterministic order the caller passes** (edge
  index order in :class:`~repro.distributed.system.ACMESystem`), which
  makes the merged log — and therefore ``kind_sequence()`` and the
  Table-I byte counters — bit-identical to a serial edge-by-edge run.

While a shard is delivering (or inside :meth:`NetworkShard.activate`),
it is installed as the *ambient route* in a :mod:`contextvars` variable:
nested sends issued through the root ``Network`` — e.g. the cloud
handler's ``BACKBONE_ASSIGNMENT`` reply, written against the root it was
constructed with — are transparently recorded on the shard that carried
the request, keeping each edge's conversation on that edge's ledger.
``contextvars`` (not a plain thread-local) so
:func:`repro.distributed.executor.parallel_map`, which runs tasks in a
copy of the caller's context, propagates an edge's active shard into
any nested per-device fan-out.

``Message.sequence`` numbers remain global construction order — a
debugging aid only; ledger order is defined by the (merged) ``log``.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.distributed.messages import Message

#: The shard currently carrying a delivery (None = record on the root).
_ACTIVE_SHARD: contextvars.ContextVar[Optional["NetworkShard"]] = contextvars.ContextVar(
    "repro_active_network_shard", default=None
)


@dataclass
class TrafficStats:
    """Aggregated transfer counters."""

    total_bytes: int = 0
    upload_bytes: int = 0
    download_bytes: int = 0
    message_count: int = 0
    by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    by_pair: Dict[Tuple[str, str], int] = field(default_factory=lambda: defaultdict(int))

    def record(self, message: Message) -> None:
        self.total_bytes += message.nbytes
        self.message_count += 1
        if message.kind.is_upload:
            self.upload_bytes += message.nbytes
        else:
            self.download_bytes += message.nbytes
        self.by_kind[message.kind.value] += message.nbytes
        self.by_pair[(message.sender, message.receiver)] += message.nbytes

    def merge_from(self, other: "TrafficStats") -> None:
        """Fold another ledger's counters into this one (shard merge)."""
        self.total_bytes += other.total_bytes
        self.upload_bytes += other.upload_bytes
        self.download_bytes += other.download_bytes
        self.message_count += other.message_count
        for kind, nbytes in other.by_kind.items():
            self.by_kind[kind] += nbytes
        for pair, nbytes in other.by_pair.items():
            self.by_pair[pair] += nbytes

    def upload_megabytes(self) -> float:
        return self.upload_bytes / 1e6

    def total_megabytes(self) -> float:
        return self.total_bytes / 1e6


class Network:
    """In-process message fabric connecting cloud, edges and devices.

    The root fabric: owns the (lock-protected) handler table and the
    global ledger.  Direct :meth:`send` calls record globally unless an
    ambient :class:`NetworkShard` is active — see the module docstring.
    """

    def __init__(self) -> None:
        self._handlers: Dict[str, Callable[[Message], Optional[Message]]] = {}
        self._registry_lock = threading.Lock()
        self._ledger_lock = threading.Lock()
        self.stats = TrafficStats()
        self.log: List[Message] = []

    # -- registry -------------------------------------------------------
    def register(
        self,
        name: str,
        handler: Callable[[Message], Optional[Message]],
        shard: Optional["NetworkShard"] = None,
    ) -> None:
        """Register a node's message handler under its unique name.

        Names are fabric-global: registering through a shard and through
        the root address the same table, and a collision raises
        immediately instead of silently overwriting the existing node's
        handler — stale registrations from a torn-down system must be
        removed with :meth:`unregister` first.
        """
        with self._registry_lock:
            if name in self._handlers:
                via = f" (via shard {shard.owner!r})" if shard is not None else ""
                raise ValueError(
                    f"node name {name!r} is already registered on this fabric"
                    f"{via}; names are global across shards — unregister() the "
                    f"existing node (tearing down a previous system?) or pick "
                    f"a unique name"
                )
            self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        """Remove a node, freeing its name for a rebuilt system.

        Raises :class:`KeyError` for unknown names so a teardown that
        drifted out of sync with the registry fails loudly.
        """
        with self._registry_lock:
            if name not in self._handlers:
                raise KeyError(
                    f"cannot unregister unknown node {name!r}; "
                    f"registered nodes: {sorted(self._handlers)}"
                )
            del self._handlers[name]

    def nodes(self) -> List[str]:
        with self._registry_lock:
            return sorted(self._handlers)

    def _resolve(self, receiver: str, shard: Optional["NetworkShard"] = None):
        with self._registry_lock:
            handler = self._handlers.get(receiver)
        if handler is None:
            via = f" (via shard {shard.owner!r})" if shard is not None else ""
            raise KeyError(
                f"unknown receiver {receiver!r}{via}; "
                f"registered nodes: {self.nodes()}"
            )
        return handler

    # -- delivery -------------------------------------------------------
    def send(self, message: Message) -> Optional[Message]:
        """Deliver a message; returns the receiver's (unrecorded) reply.

        Replies returned by handlers are control-flow conveniences for the
        simulation; protocols that need the reply *transmitted* must send it
        as an explicit message so its bytes are accounted.

        When an ambient shard of this fabric is active (the send happens
        inside a delivery or an :meth:`NetworkShard.activate` scope), the
        transfer is recorded on that shard's local ledger instead of the
        global one.
        """
        shard = _ACTIVE_SHARD.get()
        if shard is not None and shard.root is self:
            return shard.send(message)
        handler = self._resolve(message.receiver)
        with self._ledger_lock:
            self.stats.record(message)
            self.log.append(message)
        return handler(message)

    # -- sharding -------------------------------------------------------
    def shard(self, owner: str) -> "NetworkShard":
        """A local ledger view for one edge's conversation."""
        return NetworkShard(self, owner)

    def merge_shards(self, shards: Sequence["NetworkShard"]) -> None:
        """Fold shard ledgers into the global one, in the given order.

        The order is the determinism contract: merging in edge index
        order reproduces the serial edge-by-edge log exactly.  Each
        shard is drained (its local ledger reset) so a shard can never
        be double-counted.
        """
        with self._ledger_lock:
            for shard in shards:
                if shard.root is not self:
                    raise ValueError(
                        f"shard {shard.owner!r} belongs to a different fabric"
                    )
                self.stats.merge_from(shard.stats)
                self.log.extend(shard.log)
                shard.stats = TrafficStats()
                shard.log = []

    # -- inspection -----------------------------------------------------
    def kind_sequence(self) -> List[str]:
        """The ordered kinds of all delivered messages (for conformance tests)."""
        return [m.kind.value for m in self.log]

    def reset_stats(self) -> None:
        with self._ledger_lock:
            self.stats = TrafficStats()
            self.log = []


class NetworkShard:
    """One edge's ledger view of the fabric.

    Shares the root's handler table (delivery semantics are identical)
    but records traffic into a local :class:`TrafficStats`/log that only
    this shard's owner writes — the thread-safety unit of the fabric.
    Fold into the global ledger with :meth:`Network.merge_shards`.
    """

    def __init__(self, root: Network, owner: str) -> None:
        self.root = root
        self.owner = owner
        self.stats = TrafficStats()
        self.log: List[Message] = []

    def register(self, name: str, handler: Callable[[Message], Optional[Message]]) -> None:
        """Register on the *root* registry (names are fabric-global)."""
        self.root.register(name, handler, shard=self)

    def send(self, message: Message) -> Optional[Message]:
        """Deliver through the root's handler table, record locally.

        The shard is installed as the ambient route for the duration of
        the delivery, so a handler's nested sends through the root land
        on this ledger too.
        """
        handler = self.root._resolve(message.receiver, shard=self)
        self.stats.record(message)
        self.log.append(message)
        token = _ACTIVE_SHARD.set(self)
        try:
            return handler(message)
        finally:
            _ACTIVE_SHARD.reset(token)

    @contextlib.contextmanager
    def activate(self):
        """Scope in which root sends are routed to this shard's ledger."""
        token = _ACTIVE_SHARD.set(self)
        try:
            yield self
        finally:
            _ACTIVE_SHARD.reset(token)

    def kind_sequence(self) -> List[str]:
        """Ordered kinds of this shard's (unmerged) local log."""
        return [m.kind.value for m in self.log]
