"""Synthetic token-sequence classification workloads.

The paper notes ACME "can serve different Transformer-based models by
designing various NAS search spaces" and cites BERT-family early-exit work
(BERxiT, EE-Tuning).  This module provides the text-side workload so the
BERT-style backbone in :mod:`repro.models.text` is exercisable end-to-end:
each class is a distribution over *topic tokens*; a sequence samples most
of its tokens from its class topic and the rest from a shared background
vocabulary — the standard synthetic topic-classification construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class TextSpec:
    """Parameters of a synthetic text-classification task."""

    num_classes: int
    vocab_size: int = 64
    seq_len: int = 16
    topic_tokens_per_class: int = 6
    topic_strength: float = 0.6  # fraction of tokens drawn from the topic

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.vocab_size < self.num_classes * 2:
            raise ValueError("vocab too small for distinct topics")
        if not 0.0 < self.topic_strength <= 1.0:
            raise ValueError("topic_strength must be in (0, 1]")


class TextDataset:
    """In-memory token sequences with integer labels.

    Mirrors the :class:`~repro.data.dataset.ArrayDataset` interface where
    it matters (``__len__``, ``tokens``/``labels`` arrays, ``subset``,
    ``split``) so training loops can stay generic.
    """

    def __init__(self, tokens: np.ndarray, labels: np.ndarray, num_classes: int,
                 vocab_size: int, name: str = "text") -> None:
        tokens = np.asarray(tokens, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be (N, T), got {tokens.shape}")
        if labels.shape != (tokens.shape[0],):
            raise ValueError("one label per sequence required")
        if tokens.size and tokens.max() >= vocab_size:
            raise ValueError("token id out of vocabulary range")
        self.tokens = tokens
        self.labels = labels
        self.num_classes = int(num_classes)
        self.vocab_size = int(vocab_size)
        self.name = name

    def __len__(self) -> int:
        return self.tokens.shape[0]

    def subset(self, indices) -> "TextDataset":
        indices = np.asarray(indices, dtype=np.int64)
        return TextDataset(self.tokens[indices], self.labels[indices],
                           self.num_classes, self.vocab_size, name=self.name)

    def split(self, fraction: float, rng: np.random.Generator
              ) -> Tuple["TextDataset", "TextDataset"]:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        order = rng.permutation(len(self))
        cut = max(1, int(round(fraction * len(self))))
        return self.subset(order[:cut]), self.subset(order[cut:])


class SyntheticTextGenerator:
    """Deterministic generator of topic-classification datasets."""

    def __init__(self, spec: TextSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Disjoint topic-token sets per class, carved from the vocabulary.
        shuffled = rng.permutation(spec.vocab_size)
        needed = spec.num_classes * spec.topic_tokens_per_class
        if needed > spec.vocab_size:
            raise ValueError("not enough vocabulary for disjoint topics")
        self.topics = shuffled[:needed].reshape(
            spec.num_classes, spec.topic_tokens_per_class
        )
        self.background = shuffled[needed:]
        if self.background.size == 0:
            self.background = shuffled  # degenerate but valid

    def generate(self, samples_per_class: int, seed: int = 1,
                 name: str = "synthetic-text") -> TextDataset:
        spec = self.spec
        rng = np.random.default_rng((self.seed, seed))
        tokens = []
        labels = []
        for cls in range(spec.num_classes):
            for _ in range(samples_per_class):
                from_topic = rng.random(spec.seq_len) < spec.topic_strength
                seq = np.where(
                    from_topic,
                    rng.choice(self.topics[cls], size=spec.seq_len),
                    rng.choice(self.background, size=spec.seq_len),
                )
                tokens.append(seq)
                labels.append(cls)
        tokens = np.stack(tokens)
        labels = np.asarray(labels, dtype=np.int64)
        order = rng.permutation(len(labels))
        return TextDataset(tokens[order], labels[order], spec.num_classes,
                           spec.vocab_size, name=name)
