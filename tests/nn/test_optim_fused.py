"""Fused in-place optimizer parity and allocation regression tests.

The fused Adam/SGD paths must reproduce the reference (seed) updates
**bit-for-bit** under float64 — including weight decay, momentum, and
shared-parameter dedup — while allocating O(1) arrays per parameter in
steady state (the reference allocates ~6 fresh temporaries per parameter
per step).  In-place gradient accumulation must keep every grad an
exclusively owned buffer, and ``zero_grad``'s buffer-reuse mode must
recycle step N's arrays for step N+1.
"""

import tracemalloc

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.tensor import Tensor, _set_inplace_accumulation, using_dtype


@pytest.fixture(autouse=True)
def _float64_engine():
    # These are float64 bit-for-bit contracts: the fixtures hand raw
    # float64 numpy draws to Tensor data and ``p.grad``, which under the
    # float32 engine default would mix precisions between the fused and
    # reference paths.
    with using_dtype("float64"):
        yield


def _make_params(rng, shapes):
    return [Tensor(rng.normal(size=s), requires_grad=True) for s in shapes]


SHAPES = [(64, 32), (32,), (128, 16), (7, 5, 3)]


def _grad_stream(rng, steps):
    return [[rng.normal(size=s) for s in SHAPES] for _ in range(steps)]


class TestFusedParity:
    @pytest.mark.parametrize(
        "opt_cls, kwargs",
        [
            (Adam, dict(lr=1e-2)),
            (Adam, dict(lr=3e-3, betas=(0.8, 0.99), eps=1e-6)),
            (Adam, dict(lr=1e-2, weight_decay=0.1)),
            (SGD, dict(lr=1e-2)),
            (SGD, dict(lr=1e-2, momentum=0.9)),
            (SGD, dict(lr=1e-2, weight_decay=0.05)),
            (SGD, dict(lr=1e-2, momentum=0.9, weight_decay=0.05)),
        ],
    )
    def test_bit_for_bit_float64(self, opt_cls, kwargs):
        rng = np.random.default_rng(11)
        datas = [rng.normal(size=s) for s in SHAPES]
        grads = _grad_stream(rng, 30)
        fused_params = [Tensor(d.copy(), requires_grad=True) for d in datas]
        ref_params = [Tensor(d.copy(), requires_grad=True) for d in datas]
        fused_opt = opt_cls(fused_params, fused=True, **kwargs)
        ref_opt = opt_cls(ref_params, fused=False, **kwargs)
        for step_grads in grads:
            for p, g in zip(fused_params, step_grads):
                p.grad = g.copy()
            for p, g in zip(ref_params, step_grads):
                p.grad = g.copy()
            fused_opt.step()
            ref_opt.step()
            for a, b in zip(fused_params, ref_params):
                np.testing.assert_array_equal(a.data, b.data)

    def test_bit_for_bit_through_training_graph(self):
        """Parity through real backward passes with grad-buffer reuse."""

        def run(fused):
            rng = np.random.default_rng(5)
            w = Tensor(rng.normal(size=(8, 4)), requires_grad=True)
            b = Tensor(rng.normal(size=(4,)), requires_grad=True)
            opt = Adam([w, b], lr=1e-2, fused=fused, reuse_grad_buffers=fused)
            xs = [rng.normal(size=(16, 8)) for _ in range(20)]
            for x in xs:
                opt.zero_grad()
                out = Tensor(x) @ w + b
                (out * out).sum().backward()
                opt.step()
            return w.data.copy(), b.data.copy()

        wf, bf = run(True)
        wr, br = run(False)
        np.testing.assert_array_equal(wf, wr)
        np.testing.assert_array_equal(bf, br)

    def test_shared_parameter_stepped_once(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(32, 8))
        grads = [rng.normal(size=(32, 8)) for _ in range(12)]
        p_fused = Tensor(data.copy(), requires_grad=True)
        p_ref = Tensor(data.copy(), requires_grad=True)
        # The same tensor passed several times must be deduplicated.
        fused_opt = Adam([p_fused, p_fused, p_fused], lr=1e-2, fused=True)
        ref_opt = Adam([p_ref, p_ref, p_ref], lr=1e-2, fused=False)
        for g in grads:
            p_fused.grad = g.copy()
            p_ref.grad = g.copy()
            fused_opt.step()
            ref_opt.step()
            np.testing.assert_array_equal(p_fused.data, p_ref.data)

    def test_state_reallocated_after_astype(self):
        """dtype changes (Module.astype) must invalidate fused state."""
        p = Tensor(np.ones((4, 4)), requires_grad=True)
        opt = Adam([p], lr=1e-2, fused=True)
        p.grad = np.ones((4, 4))
        opt.step()
        p.data = p.data.astype(np.float32)
        p.grad = np.ones((4, 4), dtype=np.float32)
        opt.step()  # must not raise or write float64 state into float32
        assert p.data.dtype == np.float32


class TestAllocationRegression:
    def _measure_step_peak(self, fused: bool) -> int:
        rng = np.random.default_rng(0)
        p = Tensor(rng.normal(size=(512, 512)), requires_grad=True)
        opt = Adam([p], lr=1e-3, fused=fused)
        p.grad = rng.normal(size=(512, 512))
        opt.step()  # warm-up: state/scratch allocation happens here
        tracemalloc.start()
        opt.step()
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    def test_fused_step_allocates_o1(self):
        """A steady-state fused step allocates no per-element arrays."""
        param_bytes = 512 * 512 * 8
        fused_peak = self._measure_step_peak(fused=True)
        reference_peak = self._measure_step_peak(fused=False)
        # The reference path materializes several full-size temporaries...
        assert reference_peak > 2 * param_bytes
        # ...the fused path none (allow small bookkeeping noise).
        assert fused_peak < param_bytes // 8

    def test_grad_accumulation_reuses_buffer_across_steps(self):
        rng = np.random.default_rng(1)
        p = Tensor(rng.normal(size=(64, 64)), requires_grad=True)
        opt = SGD([p], lr=1e-3, fused=True, reuse_grad_buffers=True)
        x = Tensor(rng.normal(size=(8, 64)))
        (x @ p).sum().backward()
        opt.step()  # flattens: p.grad becomes a view of the flat buffer
        flat_buffer = p.grad
        opt.zero_grad()
        assert p.grad is None
        (x @ p).sum().backward()
        # Step N+1 accumulated straight into the optimizer's flat grad
        # buffer, not a fresh array.
        assert p.grad is flat_buffer
        opt.step()
        opt.zero_grad()
        (x @ p).sum().backward()
        assert p.grad is flat_buffer

    def test_zero_grad_without_reuse_drops_buffer(self):
        rng = np.random.default_rng(1)
        p = Tensor(rng.normal(size=(8, 8)), requires_grad=True)
        opt = SGD([p], lr=1e-3, fused=True, reuse_grad_buffers=False)
        x = Tensor(rng.normal(size=(4, 8)))
        (x @ p).sum().backward()
        first_buffer = p.grad
        opt.zero_grad()
        (x @ p).sum().backward()
        assert p.grad is not first_buffer


class TestInPlaceAccumulation:
    def test_grad_never_aliases_incoming_arrays(self):
        p = Tensor(np.zeros((3, 3)), requires_grad=True)
        incoming = np.ones((3, 3))
        p._accumulate(incoming)
        assert p.grad is not incoming
        incoming[:] = 99.0  # mutating the source must not leak into grad
        np.testing.assert_array_equal(p.grad, np.ones((3, 3)))

    def test_multiple_contributions_sum_in_place(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p._accumulate(np.ones(4))
        owned = p.grad
        p._accumulate(2 * np.ones(4))
        assert p.grad is owned  # accumulated with +=, no reallocation
        np.testing.assert_array_equal(p.grad, 3 * np.ones(4))

    def test_matches_legacy_accumulation(self):
        """The in-place engine and the seed engine agree bit-for-bit."""

        def run():
            rng = np.random.default_rng(9)
            x = Tensor(rng.normal(size=(6, 5)), requires_grad=True)
            y = (x * x).sum() + (x.tanh() * x).sum() + x.reshape(30).sum()
            y.backward()
            return x.grad.copy()

        inplace = run()
        _set_inplace_accumulation(False)
        try:
            legacy = run()
        finally:
            _set_inplace_accumulation(True)
        np.testing.assert_array_equal(inplace, legacy)


class TestFusedClipGradNorm:
    def test_matches_reference_norm_closely(self):
        rng = np.random.default_rng(4)
        params = _make_params(rng, SHAPES)
        for p in params:
            p.grad = rng.normal(size=p.data.shape)
        grads_before = [p.grad.copy() for p in params]
        fused_norm = clip_grad_norm(params, max_norm=1.0, fused=True)
        fused_grads = [p.grad.copy() for p in params]
        for p, g in zip(params, grads_before):
            p.grad = g.copy()
        ref_norm = clip_grad_norm(params, max_norm=1.0, fused=False)
        assert fused_norm == pytest.approx(ref_norm, rel=1e-12)
        for fg, p in zip(fused_grads, params):
            np.testing.assert_allclose(fg, p.grad, rtol=1e-12)

    def test_scales_in_place(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 10.0)
        buffer = p.grad
        clip_grad_norm([p], max_norm=1.0, fused=True)
        assert p.grad is buffer  # scaled with *=, not reallocated
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_scaling_below_threshold(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        p.grad = np.array([0.1, 0.1])
        clip_grad_norm([p], max_norm=5.0, fused=True)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])
