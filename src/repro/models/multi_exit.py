"""Multi-exit ViT with early-exit inference (§V related work, reproduced).

The paper positions ACME against multi-exit/early-exit header designs
(Bakhtiarnia et al., LGViT): attach classification headers at intermediate
Transformer layers and stop at the first exit whose prediction is
confident enough.  This module provides that capability on the
reproduction's substrate so the comparison systems of §V are runnable:

* :class:`MultiExitViT` wraps a backbone and one header per chosen exit
  layer (any :class:`~repro.models.headers.Header` design);
* joint training sums per-exit losses (the standard multi-exit recipe);
* :meth:`MultiExitViT.predict_early_exit` runs inference with a
  max-softmax confidence threshold and reports, per sample, which exit
  answered — the quantity behind early-exit latency savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.headers import BackboneFeatures, Header, build_fixed_header
from repro.models.vit import VisionTransformer
from repro.nn import functional as F
from repro.nn.layers import Module
from repro.nn.tensor import Tensor


@dataclass
class EarlyExitResult:
    """Outcome of a confidence-thresholded inference pass."""

    predictions: np.ndarray  # (N,) predicted classes
    exit_indices: np.ndarray  # (N,) which exit answered (position in exits)
    confidences: np.ndarray  # (N,) max-softmax confidence of the answer

    def mean_exit_depth(self, exit_layers: Sequence[int]) -> float:
        """Average backbone depth actually executed."""
        layers = np.asarray(exit_layers)[self.exit_indices]
        return float(layers.mean())


class MultiExitViT(Module):
    """A ViT backbone with classification exits at intermediate layers.

    Parameters
    ----------
    backbone:
        The (possibly scaled) Vision Transformer; its own head is unused.
    exit_layers:
        1-based layer indices (within the *active* depth) after which an
        exit header is attached.  The final active layer is always an exit.
    header_kind:
        Which fixed header design to attach at each exit.
    """

    def __init__(
        self,
        backbone: VisionTransformer,
        exit_layers: Sequence[int],
        header_kind: str = "mlp",
        seed: int = 0,
    ) -> None:
        super().__init__()
        depth = backbone.depth
        exits = sorted(set(int(e) for e in exit_layers) | {depth})
        if any(not 1 <= e <= depth for e in exits):
            raise ValueError(f"exit layers must be in [1, {depth}], got {exit_layers}")
        self.backbone = backbone
        self.exit_layers: List[int] = exits
        rng = np.random.default_rng(seed)
        cfg = backbone.config
        self.headers: List[Header] = []
        for i, layer in enumerate(exits):
            header = build_fixed_header(
                header_kind, cfg.embed_dim, cfg.num_patches, cfg.num_classes, rng=rng
            )
            self.register_module(f"exit{layer}", header)
            self.headers.append(header)

    # ------------------------------------------------------------------
    def _exit_features(self, images) -> List[BackboneFeatures]:
        """Per-exit features from a single backbone pass."""
        backbone = self.backbone
        x = backbone._embed(images if isinstance(images, Tensor) else Tensor(images))
        features: List[BackboneFeatures] = []
        active_index = 0
        previous = x
        current = x
        exit_set = set(self.exit_layers)
        for layer in backbone.encoder.layers:
            if not layer.active:
                continue
            previous = current
            current = layer(current)
            active_index += 1
            if active_index in exit_set:
                normed = backbone.norm(current)
                features.append(
                    BackboneFeatures(
                        cls=normed[:, 0, :],
                        tokens=normed[:, 1:, :],
                        penultimate=previous[:, 1:, :],
                    )
                )
        return features

    def forward_all_exits(self, images) -> List[Tensor]:
        """Logits from every exit (one backbone pass, shared prefix)."""
        return [
            header(feat)
            for header, feat in zip(self.headers, self._exit_features(images))
        ]

    def forward(self, images) -> Tensor:
        """Logits of the final exit."""
        return self.forward_all_exits(images)[-1]

    # ------------------------------------------------------------------
    def joint_loss(self, images, labels: np.ndarray) -> Tensor:
        """Sum of per-exit cross-entropies (standard multi-exit training)."""
        total: Optional[Tensor] = None
        for logits in self.forward_all_exits(images):
            loss = F.cross_entropy(logits, labels)
            total = loss if total is None else total + loss
        assert total is not None
        return total

    def predict_early_exit(self, images, threshold: float = 0.9) -> EarlyExitResult:
        """Answer each sample at the first exit whose confidence clears
        ``threshold`` (the last exit answers whatever remains)."""
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        all_logits = self.forward_all_exits(images)
        n = all_logits[0].shape[0]
        predictions = np.full(n, -1, dtype=np.int64)
        exit_indices = np.zeros(n, dtype=np.int64)
        confidences = np.zeros(n)
        unresolved = np.ones(n, dtype=bool)

        for i, logits in enumerate(all_logits):
            probs = F.softmax(logits).data
            conf = probs.max(axis=-1)
            preds = probs.argmax(axis=-1)
            is_last = i == len(all_logits) - 1
            take = unresolved & ((conf >= threshold) | is_last)
            predictions[take] = preds[take]
            exit_indices[take] = i
            confidences[take] = conf[take]
            unresolved &= ~take
        assert not unresolved.any()
        return EarlyExitResult(predictions, exit_indices, confidences)
