"""Batched cross-device backbone serving reproduces per-device results.

The engine's kernels are row-independent, so serving many devices'
inputs through one concatenated ``no_grad`` forward must be bit-for-bit
identical per device to the separate forwards it replaces — these tests
assert exactly that for raw features, header evaluation, similarity
feature extraction, NAS child scoring, and the edge finalize phase.
"""

import numpy as np
import pytest

from repro.core.nas import HeaderSearch, NASConfig
from repro.core.similarity import build_similarity_matrix, extract_features
from repro.data.synthetic import make_cifar100_like
from repro.models.vit import ViTConfig, VisionTransformer
from repro.models.headers import build_fixed_header
from repro.nn.tensor import Tensor, no_grad
from repro.train.evaluate import evaluate_header
from repro.train.serving import (
    backbones_equivalent,
    batched_evaluate_headers,
    batched_extract_features,
    batched_forward_features_multi,
    gather_features,
    precompute_backbone_features,
)

VIT = ViTConfig(num_classes=6, depth=2, embed_dim=32, num_heads=4)


@pytest.fixture()
def backbone():
    return VisionTransformer(VIT, seed=0)


@pytest.fixture()
def datasets():
    generator = make_cifar100_like(num_classes=6, image_size=16, seed=0)
    # Deliberately different sizes so devices drop out of later rounds.
    return [
        generator.generate(samples_per_class=n, seed=40 + i, name=f"d{i}")
        for i, n in enumerate([4, 7, 2])
    ]


class TestBatchedForward:
    def test_bitwise_identical_to_separate_forwards(self, backbone):
        rng = np.random.default_rng(0)
        arrays = [rng.normal(size=(n, 3, 16, 16)) for n in (5, 16, 3)]
        batched = batched_forward_features_multi(backbone, arrays)
        for array, features in zip(arrays, batched):
            with no_grad():
                cls, tokens, penult = backbone.forward_features_multi(Tensor(array))
            np.testing.assert_array_equal(features.cls.data, cls.data)
            np.testing.assert_array_equal(features.tokens.data, tokens.data)
            np.testing.assert_array_equal(features.penultimate.data, penult.data)

    def test_empty_input(self, backbone):
        assert batched_forward_features_multi(backbone, []) == []

    def test_single_input_matches(self, backbone):
        rng = np.random.default_rng(1)
        array = rng.normal(size=(4, 3, 16, 16))
        (features,) = batched_forward_features_multi(backbone, [array])
        with no_grad():
            cls, _tokens, _penult = backbone.forward_features_multi(Tensor(array))
        np.testing.assert_array_equal(features.cls.data, cls.data)


class TestBatchedEvaluate:
    def test_matches_evaluate_header_per_pair(self, backbone, datasets):
        headers = [
            build_fixed_header(
                kind, VIT.embed_dim, VIT.num_patches, VIT.num_classes,
                rng=np.random.default_rng(i),
            )
            for i, kind in enumerate(["linear", "mlp", "hybrid"])
        ]
        batched = batched_evaluate_headers(
            backbone, headers, datasets, batch_size=8
        )
        for header, dataset, result in zip(headers, datasets, batched):
            expected = evaluate_header(backbone, header, dataset, batch_size=8)
            assert result == expected  # dict equality: bit-for-bit floats

    def test_stochastic_model_falls_back(self, datasets):
        dropout_backbone = VisionTransformer(
            ViTConfig(num_classes=6, depth=2, embed_dim=32, num_heads=4, dropout=0.2),
            seed=0,
        )
        dropout_backbone.train()
        headers = [
            build_fixed_header(
                "linear", VIT.embed_dim, VIT.num_patches, VIT.num_classes,
                rng=np.random.default_rng(i),
            )
            for i in range(3)
        ]
        batched = batched_evaluate_headers(
            dropout_backbone, headers, datasets, batch_size=8
        )
        # The fallback evaluates pair by pair, so each pair consumes the
        # dropout stream exactly like the unbatched loop does.
        assert all(0.0 <= r["accuracy"] <= 1.0 for r in batched)
        assert [r["samples"] for r in batched] == [len(d) for d in datasets]

    def test_mismatched_lengths_rejected(self, backbone, datasets):
        header = build_fixed_header(
            "linear", VIT.embed_dim, VIT.num_patches, VIT.num_classes,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError):
            batched_evaluate_headers(backbone, [header], datasets)


class TestBatchedExtractFeatures:
    def test_matches_per_dataset_extraction(self, backbone, datasets):
        batched = batched_extract_features(backbone, datasets, max_samples=8, seed=3)
        for i, dataset in enumerate(datasets):
            expected = extract_features(backbone, dataset, max_samples=8, seed=3 + i)
            np.testing.assert_array_equal(batched[i], expected)

    def test_build_similarity_matrix_batched_parity(self, backbone, datasets):
        batched = build_similarity_matrix(backbone, datasets, max_samples=8, batched=True)
        unbatched = build_similarity_matrix(
            backbone, datasets, max_samples=8, batched=False
        )
        np.testing.assert_array_equal(batched, unbatched)


class TestBackbonesEquivalent:
    def test_value_identical_clones(self, backbone):
        clone = VisionTransformer(VIT, seed=1)
        clone.load_state_dict(backbone.state_dict())
        assert backbones_equivalent([backbone, clone])

    def test_detects_weight_drift(self, backbone):
        clone = VisionTransformer(VIT, seed=1)
        clone.load_state_dict(backbone.state_dict())
        clone.parameters()[0].data[0] += 1e-9
        assert not backbones_equivalent([backbone, clone])

    def test_empty_fleet(self):
        assert not backbones_equivalent([])


class TestPrecomputedFeatures:
    def test_gathered_rows_match_batch_forwards(self, backbone, datasets):
        """The train_header fast path: full-set features once, rows
        gathered per mini-batch — bit-identical to forwarding the batch."""
        dataset = datasets[1]
        cache = precompute_backbone_features(backbone, dataset.images, chunk_size=5)
        rng = np.random.default_rng(0)
        indices = rng.permutation(len(dataset))[:6]
        gathered = gather_features(cache, indices)
        with no_grad():
            cls, tokens, penult = backbone.forward_features_multi(
                Tensor(dataset.images[indices])
            )
        np.testing.assert_array_equal(gathered.cls.data, cls.data)
        np.testing.assert_array_equal(gathered.tokens.data, tokens.data)
        np.testing.assert_array_equal(gathered.penultimate.data, penult.data)

    def test_train_header_cached_path_matches_per_batch(self, backbone, datasets):
        from repro.train.trainer import TrainConfig, train_header

        def run(cached):
            header = build_fixed_header(
                "mlp", VIT.embed_dim, VIT.num_patches, VIT.num_classes,
                rng=np.random.default_rng(0),
            )
            config = TrainConfig(
                epochs=2, batch_size=8, seed=0, cached_frozen_features=cached
            )
            report = train_header(backbone, header, datasets[0], config)
            return report.epoch_losses, report.epoch_accuracies

        assert run(True) == run(False)  # traces bit-for-bit identical

    def test_capped_epochs_skip_precompute(self, backbone, datasets):
        """max_batches_per_epoch caps the loop; precomputing the whole
        dataset would cost more than it saves, so the per-batch path
        must be used (observable: identical results either way)."""
        from repro.train.trainer import TrainConfig, train_header

        def run(cached):
            header = build_fixed_header(
                "linear", VIT.embed_dim, VIT.num_patches, VIT.num_classes,
                rng=np.random.default_rng(0),
            )
            config = TrainConfig(
                epochs=1,
                batch_size=8,
                max_batches_per_epoch=1,
                seed=0,
                cached_frozen_features=cached,
            )
            return train_header(backbone, header, datasets[0], config).epoch_losses

        assert run(True) == run(False)


class TestNASBatchedScoring:
    def _search(self, batched, train_backbone):
        backbone = VisionTransformer(VIT, seed=0)
        config = NASConfig(
            num_blocks=2,
            search_epochs=1,
            children_per_epoch=1,
            shared_steps_per_child=1,
            controller_updates_per_epoch=2,
            derive_samples=3,
            train_backbone=train_backbone,
            batched_scoring=batched,
            seed=0,
        )
        generator = make_cifar100_like(num_classes=6, image_size=16, seed=0)
        dataset = generator.generate(10, seed=5, name="nas")
        search = HeaderSearch(backbone, 6, config)
        return search.search(dataset)

    @pytest.mark.parametrize("train_backbone", [False, True])
    def test_batched_scoring_matches_per_child(self, train_backbone):
        batched = self._search(batched=True, train_backbone=train_backbone)
        per_child = self._search(batched=False, train_backbone=train_backbone)
        assert batched.spec.to_sequence() == per_child.spec.to_sequence()
        assert batched.best_reward == per_child.best_reward
        assert batched.reward_history == per_child.reward_history


class TestEdgeFinalizeBatched:
    def _finalized_system(self, batched_serving):
        from repro.distributed import ACMEConfig, ACMESystem

        config = ACMEConfig(
            num_clusters=1,
            devices_per_cluster=3,
            num_classes=6,
            samples_per_class=18,
            compute_dtype="float64",
            finalize=False,
            seed=0,
        )
        config.edge.batched_serving = batched_serving
        system = ACMESystem(config)
        system.run()
        return system.edges[0].finalize()

    def test_batched_finalize_matches_per_device(self):
        from tests.helpers import reset_engine_state

        reset_engine_state()
        batched = self._finalized_system(batched_serving=True)
        reset_engine_state()
        per_device = self._finalized_system(batched_serving=False)
        assert batched == per_device  # accuracies/losses bit-for-bit


class TestServingFront:
    from repro.train.serving import ServingFront  # noqa: F401 (import check)

    def _headers(self, backbone, count):
        kinds = ["linear", "mlp", "hybrid"]
        return [
            build_fixed_header(
                kinds[i % len(kinds)], VIT.embed_dim, VIT.num_patches,
                VIT.num_classes, rng=np.random.default_rng(10 + i),
            )
            for i in range(count)
        ]

    def test_micro_batched_serving_matches_per_request(self, backbone, datasets):
        """Any micro-batch grouping is bit-identical to direct evaluation."""
        from repro.train.serving import ServingFront

        headers = self._headers(backbone, len(datasets))
        expected = [
            evaluate_header(backbone, header, dataset)
            for header, dataset in zip(headers, datasets)
        ]
        for micro_batch in (1, 2, 16):
            front = ServingFront(backbone, micro_batch=micro_batch)
            tickets = [
                front.submit(header, dataset)
                for header, dataset in zip(headers, datasets)
            ]
            front.flush()
            for ticket, want in zip(tickets, expected):
                assert front.result(ticket) == want

    def test_fifo_tickets_and_flush_counters(self, backbone, datasets):
        from repro.train.serving import ServingFront

        headers = self._headers(backbone, 5)
        front = ServingFront(backbone, micro_batch=2)
        tickets = [front.submit(h, datasets[0]) for h in headers]
        assert tickets == [0, 1, 2, 3, 4]
        assert front.pending == 5
        assert front.max_queue_depth == 5
        served = front.flush()
        assert served == tickets  # FIFO order preserved across groups
        assert front.pending == 0
        assert front.flushes == 3  # ceil(5 / 2) micro-batches
        assert front.requests_served == 5

    def test_result_pops_and_unserved_raises(self, backbone, datasets):
        from repro.train.serving import ServingFront

        front = ServingFront(backbone, micro_batch=4)
        ticket = front.submit(self._headers(backbone, 1)[0], datasets[0])
        with pytest.raises(KeyError, match="not served"):
            front.result(ticket)
        front.flush()
        front.result(ticket)
        with pytest.raises(KeyError):
            front.result(ticket)  # popped on first read

    def test_invalid_micro_batch_rejected(self, backbone):
        from repro.train.serving import ServingFront

        with pytest.raises(ValueError, match="micro_batch"):
            ServingFront(backbone, micro_batch=0)
