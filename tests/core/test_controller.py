"""Tests for the LSTM architecture controller."""

import numpy as np
import pytest

from repro.core.controller import (
    ArchitectureController,
    MovingAverageBaseline,
)
from repro.models.blocks import BlockSpec, HeaderSpec, num_operations
from repro.nn.optim import Adam


class TestController:
    def test_step_vocab_sizes(self):
        ctrl = ArchitectureController(num_blocks=3)
        sizes = ctrl.step_vocab_sizes()
        ops = num_operations()
        assert sizes == [2, 2, ops, ops, 3, 3, ops, ops, 4, 4, ops, ops]

    def test_sample_produces_valid_spec(self):
        ctrl = ArchitectureController(num_blocks=3, repeats=2, seed=0)
        rng = np.random.default_rng(0)
        for _ in range(10):
            sample = ctrl.sample(rng)
            sample.spec.validate(num_operations())
            assert sample.spec.num_blocks == 3
            assert sample.spec.repeats == 2

    def test_log_prob_is_negative_scalar(self):
        ctrl = ArchitectureController(num_blocks=2, seed=0)
        sample = ctrl.sample(np.random.default_rng(1))
        assert sample.log_prob.size == 1
        assert float(sample.log_prob.data) < 0.0
        assert sample.entropy > 0.0

    def test_greedy_is_deterministic(self):
        ctrl = ArchitectureController(num_blocks=2, seed=0)
        a = ctrl.sample(np.random.default_rng(0), greedy=True).spec
        b = ctrl.sample(np.random.default_rng(99), greedy=True).spec
        assert a == b

    def test_log_prob_of_matches_sample(self):
        ctrl = ArchitectureController(num_blocks=2, seed=3)
        sample = ctrl.sample(np.random.default_rng(5))
        recomputed = ctrl.log_prob_of(sample.spec)
        np.testing.assert_allclose(
            float(recomputed.data), float(sample.log_prob.data), atol=1e-10
        )

    def test_predict_accuracy_in_unit_interval(self):
        ctrl = ArchitectureController(num_blocks=2, seed=0)
        spec = HeaderSpec(blocks=(BlockSpec(0, 1, 0, 1), BlockSpec(1, 2, 2, 3)))
        estimate = float(ctrl.predict_accuracy(spec).data)
        assert 0.0 <= estimate <= 1.0

    def test_reinforce_shifts_policy_toward_rewarded_spec(self):
        """Rewarding one spec must raise its sampling probability."""
        ctrl = ArchitectureController(num_blocks=1, seed=0)
        rng = np.random.default_rng(0)
        target = ctrl.sample(rng).spec
        before = float(ctrl.log_prob_of(target).data)
        opt = Adam(ctrl.parameters(), lr=5e-2)
        for _ in range(10):
            lp = ctrl.log_prob_of(target)
            loss = lp * (-1.0)  # advantage = +1 for this spec
            opt.zero_grad()
            loss.backward()
            opt.step()
        after = float(ctrl.log_prob_of(target).data)
        assert after > before

    def test_policy_gradient_decreases_prob_on_negative_advantage(self):
        ctrl = ArchitectureController(num_blocks=1, seed=4)
        target = ctrl.sample(np.random.default_rng(2)).spec
        before = float(ctrl.log_prob_of(target).data)
        opt = Adam(ctrl.parameters(), lr=5e-2)
        for _ in range(10):
            loss = ctrl.log_prob_of(target) * 1.0  # advantage = -1
            opt.zero_grad()
            loss.backward()
            opt.step()
        after = float(ctrl.log_prob_of(target).data)
        assert after < before


class TestBaseline:
    def test_first_update_returns_reward(self):
        b = MovingAverageBaseline()
        assert b.update(0.7) == 0.7

    def test_moving_average(self):
        b = MovingAverageBaseline(decay=0.5)
        b.update(1.0)
        previous = b.update(0.0)
        assert previous == 1.0
        assert b.value == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingAverageBaseline(decay=1.0)
