"""NAS block vocabulary: operations and architecture specs (Fig. 5).

A header architecture is a DAG of ``B`` blocks repeated ``U`` times.  Each
block is the paper's 5-tuple ``(Î_b,1, Î_b,2, Ô_b,1, Ô_b,2, Ĉ)`` with the
combiner Ĉ fixed to element-wise addition (following Zoph et al., as the
paper does).  Blocks operate on ``(N, C, g, g)`` feature maps; every
candidate operation is shape-preserving so any pair of block outputs can be
added directly (the role of the paper's dimension-fixing 1×1 convolutions
is folded into the operations themselves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.conv import AvgPool2d, Conv2d, MaxPool2d
from repro.nn.layers import Activation, LayerNorm, Module, Sequential
from repro.nn.tensor import Tensor


@dataclass(frozen=True)
class BlockSpec:
    """One DAG block: two inputs, two operations, combined by addition.

    ``input1``/``input2`` index into the block's input set
    ``[backbone, penultimate, block_1, ..., block_{b-1}]`` (so block ``b``
    has ``b + 1`` choices); ``op1``/``op2`` index the operation registry.
    """

    input1: int
    input2: int
    op1: int
    op2: int

    def validate(self, block_index: int, num_ops: int) -> None:
        limit = block_index + 2  # block b (0-indexed) sees b+2 inputs
        for value, bound, label in (
            (self.input1, limit, "input1"),
            (self.input2, limit, "input2"),
            (self.op1, num_ops, "op1"),
            (self.op2, num_ops, "op2"),
        ):
            if not 0 <= value < bound:
                raise ValueError(
                    f"block {block_index}: {label}={value} out of range [0, {bound})"
                )


@dataclass(frozen=True)
class HeaderSpec:
    """A full header architecture: ``B`` blocks repeated ``U`` times."""

    blocks: Tuple[BlockSpec, ...]
    repeats: int = 1

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("header needs at least one block")
        if self.repeats < 1:
            raise ValueError("repeats (U) must be >= 1")

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def validate(self, num_ops: int) -> None:
        for b, block in enumerate(self.blocks):
            block.validate(b, num_ops)

    def to_sequence(self) -> List[int]:
        """Flatten to the controller's 4B-long decision sequence."""
        seq: List[int] = []
        for block in self.blocks:
            seq.extend([block.input1, block.input2, block.op1, block.op2])
        return seq

    @staticmethod
    def from_sequence(seq: Sequence[int], repeats: int = 1) -> "HeaderSpec":
        seq = list(seq)
        if len(seq) % 4 != 0:
            raise ValueError(f"sequence length {len(seq)} is not a multiple of 4")
        blocks = tuple(
            BlockSpec(*seq[i : i + 4]) for i in range(0, len(seq), 4)
        )
        return HeaderSpec(blocks=blocks, repeats=repeats)


class _ConvOp(Module):
    """k×k convolution with GELU, shape-preserving."""

    def __init__(self, channels: int, kernel: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.conv = Conv2d(channels, channels, kernel, padding=kernel // 2, rng=rng)
        self.act = Activation("gelu")

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.conv(x))


class _PoolOp(Module):
    """3×3 pooling with stride 1 and padding 1 (shape-preserving)."""

    def __init__(self, channels: int, kind: str, rng: np.random.Generator) -> None:
        super().__init__()
        pool_cls = MaxPool2d if kind == "max" else AvgPool2d
        self.pool = pool_cls(3, stride=1, padding=1)

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(x)


class _IdentityOp(Module):
    def __init__(self, channels: int, rng: np.random.Generator) -> None:
        super().__init__()

    def forward(self, x: Tensor) -> Tensor:
        return x


class _DownsampleOp(Module):
    """Halve resolution with average pooling, restore it by repetition.

    Shape-preserving surrogate for the search space's downsampling option:
    the output carries only the coarse (2×-downsampled) information.
    """

    def __init__(self, channels: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.pool = AvgPool2d(2, stride=2)

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if h < 2 or w < 2:
            return x
        coarse = self.pool(x)  # (N, C, h//2, w//2)
        ch, cw = coarse.shape[2], coarse.shape[3]
        up = coarse.reshape(n, c, ch, 1, cw, 1)
        up = up + Tensor(np.zeros((n, c, ch, 2, cw, 2)))
        up = up.reshape(n, c, ch * 2, cw * 2)
        if ch * 2 != h or cw * 2 != w:
            up = up.pad(((0, 0), (0, 0), (0, h - ch * 2), (0, w - cw * 2)))
        return up


#: The operation registry used in the paper's experiments (§IV-A):
#: convolutions of kernel size 1/3/5, identity, downsampling, and
#: average/max pooling.
OPERATION_NAMES: Tuple[str, ...] = (
    "conv1x1",
    "conv3x3",
    "conv5x5",
    "identity",
    "downsample",
    "avg_pool",
    "max_pool",
)


def build_operation(name: str, channels: int, rng: np.random.Generator) -> Module:
    """Instantiate a candidate operation by registry name."""
    if name == "conv1x1":
        return _ConvOp(channels, 1, rng)
    if name == "conv3x3":
        return _ConvOp(channels, 3, rng)
    if name == "conv5x5":
        return _ConvOp(channels, 5, rng)
    if name == "identity":
        return _IdentityOp(channels, rng)
    if name == "downsample":
        return _DownsampleOp(channels, rng)
    if name == "avg_pool":
        return _PoolOp(channels, "avg", rng)
    if name == "max_pool":
        return _PoolOp(channels, "max", rng)
    raise ValueError(f"unknown operation {name!r}; options: {OPERATION_NAMES}")


def num_operations() -> int:
    return len(OPERATION_NAMES)
