"""Process supervisor: the ACME tiers as real OS processes over TCP.

:func:`run_multiprocess` launches one **cloud process** (serving a
:class:`~repro.distributed.transport.WireHub`) and one **edge process
per cluster** (each hosting its devices on a local
:class:`~repro.distributed.transport.WireFabric` and dialing the hub
through a :class:`~repro.distributed.transport.WireLink`), then merges
the per-edge results and ledgers in edge index order.

Determinism without data on the wire.  Every process rebuilds its slice
of the world locally from ``(ACMEConfig, seed)`` via
:func:`~repro.distributed.system.build_fleet_data` /
:func:`~repro.distributed.system.build_cluster` — dataset partition,
splits, fleet profiles and model init are pure functions of the seed —
so only protocol messages cross the sockets.  Each edge process's
fabric ledger is exactly the loopback run's per-edge shard ledger;
concatenating them in edge index order reproduces the loopback
``kind_sequence()`` and Table-I byte counters bit-for-bit.

Degraded mode, never a hang.  Every wait in the supervisor is bounded:
a killed or wedged edge process is detected (process exit, pipe EOF or
``edge_timeout``), surfaced internally as the protocol's own
:class:`~repro.distributed.faults.DeliveryError`, and folded into the
result as a crashed cluster — ``round_participation`` all zero, a
``"crash"`` entry in ``fault_counts``, one failed delivery — while the
surviving clusters' results stand.  All child processes are reaped on
every exit path (they are also daemonic, so even a dying supervisor
cannot leak them).

Test hooks: ``kill_edge``/``kill_point`` make the chosen edge process
SIGKILL *itself* at a deterministic protocol point, which is how the
kill-an-edge integration test produces a real mid-campaign crash.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import time
import traceback
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.distributed.faults import DeliveryError, FaultRecord
from repro.distributed.metrics import centralized_upload_bytes
from repro.distributed.network import TrafficStats, _fault
from repro.distributed.system import (
    ACMEConfig,
    ACMERunResult,
    ClusterResult,
    arm_fault_policy,
    build_cluster,
    build_fleet_data,
    run_edge_phases,
)
from repro.distributed.transport import TcpTransport, TransportConfig

__all__ = ["run_multiprocess", "EdgeLedger", "KILL_POINTS"]

#: Deterministic self-SIGKILL points for the kill-an-edge hook.
#: ``mid_rounds`` = after one aggregation round, the canonical
#: "mid-campaign" crash; the rest map to ``run_edge_phases`` checkpoints.
KILL_POINTS = ("backbone", "search", "distribute", "mid_rounds", "aggregate")


@dataclass
class EdgeLedger:
    """A picklable capture of one edge process's fabric ledger."""

    kinds: List[str]
    kind_counts: Dict[str, int]
    stats: Dict[str, object]
    fault_records: List[FaultRecord]
    fault_counts: Dict[str, int]
    delivery_attempts: int = 0
    retry_count: int = 0
    failed_deliveries: int = 0


def _dtype_scope(config: ACMEConfig):
    if config.compute_dtype is not None:
        from repro.nn.tensor import using_dtype

        return using_dtype(config.compute_dtype)
    return contextlib.nullcontext()


def _capture_stats(stats: TrafficStats) -> Dict[str, object]:
    """Plain-dict form of a ledger's counters (defaultdicts don't pickle)."""
    return {
        "total_bytes": stats.total_bytes,
        "upload_bytes": stats.upload_bytes,
        "download_bytes": stats.download_bytes,
        "message_count": stats.message_count,
        "by_kind": dict(stats.by_kind),
        "by_pair": dict(stats.by_pair),
    }


def _merge_stats(target: TrafficStats, captured: Dict[str, object]) -> None:
    target.total_bytes += captured["total_bytes"]
    target.upload_bytes += captured["upload_bytes"]
    target.download_bytes += captured["download_bytes"]
    target.message_count += captured["message_count"]
    for kind, nbytes in captured["by_kind"].items():
        target.by_kind[kind] += nbytes
    for pair, nbytes in captured["by_pair"].items():
        target.by_pair[pair] += nbytes


def _capture_ledger(fabric) -> EdgeLedger:
    """Snapshot an edge fabric's ledger for the trip home.

    Mirrors ``Network.merge_shards``: still-pending delayed messages are
    recorded as ``"expired"`` faults at the end of this edge's slot.
    """
    for message, _countdown in list(fabric._delayed):
        fabric._record_fault(_fault(message, "expired"))
    fabric._delayed = []
    return EdgeLedger(
        kinds=fabric.kind_sequence(),
        kind_counts=dict(fabric.kind_counts),
        stats=_capture_stats(fabric.stats),
        fault_records=list(fabric.fault_log),
        fault_counts=fabric.fault_counts(),
        delivery_attempts=fabric.delivery_attempts,
        retry_count=fabric.retry_count,
        failed_deliveries=fabric.failed_deliveries,
    )


# ---------------------------------------------------------------------------
# Worker processes
# ---------------------------------------------------------------------------
def _cloud_worker(config: ACMEConfig, tcfg: TransportConfig, conn) -> None:
    """Cloud tier: pretrain/candidates, then serve edges until told to stop."""
    transport = None
    try:
        with _dtype_scope(config):
            from repro.distributed.cloud import CloudServer
            from repro.models.vit import VisionTransformer

            data = build_fleet_data(config)
            transport = TcpTransport.serve("cloud-hub", tcfg)
            reference = VisionTransformer(config.vit, seed=config.seed)
            cloud = CloudServer(
                reference, data.public_dataset, transport.network, config.cloud
            )
            cloud.pretrain_reference()
            cloud.generate_dynamic_backbone()
            cloud.prepare_candidates()
            conn.send(("ready", transport.port))
        while True:
            command = conn.recv()  # EOF here = the supervisor died
            if command == "stop":
                break
    except EOFError:
        pass
    # reprolint: broad-except -- worker-process boundary: any cloud-tier failure
    # is reported over the pipe for the supervisor to reap; the process exits next
    except Exception:
        with contextlib.suppress(Exception):
            conn.send(("error", traceback.format_exc()))
    finally:
        if transport is not None:
            transport.close()
        with contextlib.suppress(Exception):
            conn.close()


def _edge_worker(
    config: ACMEConfig,
    tcfg: TransportConfig,
    cluster_idx: int,
    conn,
    kill_point: Optional[str],
) -> None:
    """Edge tier: build the cluster locally, dial the hub, run the phases."""
    try:
        with _dtype_scope(config):
            data = build_fleet_data(config)
            port = conn.recv()  # the supervisor sends it once the hub is up
            if not isinstance(port, int):
                return  # supervisor aborted the launch
            transport = TcpTransport.connect(
                f"edge{cluster_idx}-link", tcfg.host, port, tcfg
            )
            try:
                edge = build_cluster(config, data, cluster_idx, transport.network)
                arm_fault_policy(transport.network, config, [edge])
                transport.start()
                if kill_point == "mid_rounds":
                    # The canonical mid-campaign crash: one aggregation
                    # round done, the rest never happen.
                    edge.request_backbone()
                    edge.search_header()
                    edge.distribute_models()
                    edge.aggregation_loop(num_rounds=1)
                    os.kill(os.getpid(), signal.SIGKILL)
                checkpoint = None
                if kill_point is not None:

                    def checkpoint(phase: str) -> None:
                        if phase == kill_point:
                            os.kill(os.getpid(), signal.SIGKILL)

                result = run_edge_phases(config, edge, checkpoint=checkpoint)
                conn.send(("result", (result, _capture_ledger(transport.network))))
            finally:
                transport.close()
    # reprolint: broad-except -- worker-process boundary: any edge-tier failure
    # is reported over the pipe for the supervisor to reap; the process exits next
    except Exception:
        with contextlib.suppress(Exception):
            conn.send(("error", traceback.format_exc()))
    finally:
        with contextlib.suppress(Exception):
            conn.close()


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------
def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _await_report(conn, process, timeout: float, name: str) -> Tuple[str, object]:
    """Wait (bounded) for a worker's report; crash/timeout → DeliveryError."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            if conn.poll(0.2):
                return conn.recv()
        except (EOFError, OSError):
            raise DeliveryError(
                f"{name} process closed its pipe without reporting a result"
            ) from None
        if not process.is_alive():
            # Drain a report that raced the exit.
            with contextlib.suppress(EOFError, OSError):
                if conn.poll(0):
                    return conn.recv()
            raise DeliveryError(
                f"{name} process exited with code {process.exitcode} "
                f"before reporting a result"
            )
        if time.monotonic() > deadline:
            raise DeliveryError(
                f"{name} process produced no result within {timeout}s"
            )


def _degraded_cluster(config: ACMEConfig, cluster_idx: int) -> ClusterResult:
    """The result slot of a crashed edge: zero participation, no evals."""
    return ClusterResult(
        edge_name=f"edge{cluster_idx}",
        width=0.0,
        depth=0,
        round_participation=[0.0] * config.edge.aggregation_rounds,
    )


def _reap(processes: List) -> None:
    """Terminate, then kill, then join every child — no orphans, ever."""
    for process in processes:
        with contextlib.suppress(Exception):
            if process.is_alive():
                process.terminate()
    for process in processes:
        with contextlib.suppress(Exception):
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
    for process in processes:
        with contextlib.suppress(Exception):
            process.close()


def run_multiprocess(
    config: ACMEConfig,
    transport: Optional[TransportConfig] = None,
    edge_timeout: float = 900.0,
    kill_edge: Optional[int] = None,
    kill_point: str = "mid_rounds",
) -> ACMERunResult:
    """Run the full ACME pipeline as separate processes over TCP.

    Parameters
    ----------
    config:
        The same :class:`ACMEConfig` a loopback run takes.  The result
        is bit-for-bit the loopback result for the same seed (asserted
        in ``tests/distributed/test_transport.py``).
    transport:
        TCP liveness/recovery knobs (heartbeat interval and miss
        threshold, request/connect timeouts, reconnect backoff).
    edge_timeout:
        Per-process ceiling (seconds) on cloud readiness and on each
        edge's full pipeline; an overrun degrades that edge instead of
        hanging the run.
    kill_edge / kill_point:
        Fault-injection hook: edge ``kill_edge`` SIGKILLs itself at
        ``kill_point`` (one of :data:`KILL_POINTS`).  The run completes
        degraded: participation < 1.0, a ``"crash"`` fault count, one
        failed delivery.
    """
    cfg = config
    tcfg = transport if transport is not None else TransportConfig()
    if kill_edge is not None and kill_point not in KILL_POINTS:
        raise ValueError(f"kill_point must be one of {KILL_POINTS}, got {kill_point!r}")
    ctx = _mp_context()
    processes: List = []
    conns: List = []
    try:
        cloud_conn, cloud_child = ctx.Pipe()
        conns.append(cloud_conn)
        cloud_proc = ctx.Process(
            target=_cloud_worker,
            args=(cfg, tcfg, cloud_child),
            name="acme-cloud",
            daemon=True,
        )
        cloud_proc.start()
        processes.append(cloud_proc)
        cloud_child.close()

        edge_conns: List = []
        edge_procs: List = []
        for cluster_idx in range(cfg.num_clusters):
            parent_conn, child_conn = ctx.Pipe()
            conns.append(parent_conn)
            process = ctx.Process(
                target=_edge_worker,
                args=(
                    cfg,
                    tcfg,
                    cluster_idx,
                    child_conn,
                    kill_point if kill_edge == cluster_idx else None,
                ),
                name=f"acme-edge{cluster_idx}",
                daemon=True,
            )
            process.start()
            processes.append(process)
            child_conn.close()
            edge_conns.append(parent_conn)
            edge_procs.append(process)

        # The cloud's "ready" carries the bound port; edges idle on their
        # pipes (rebuilding their data meanwhile) until it arrives.
        try:
            status, payload = _await_report(
                cloud_conn, cloud_proc, edge_timeout, "cloud"
            )
        except DeliveryError as exc:
            raise RuntimeError(f"cloud process failed to start: {exc}") from exc
        if status == "error":
            raise RuntimeError(f"cloud process failed:\n{payload}")
        port = int(payload)
        for parent_conn in edge_conns:
            with contextlib.suppress(Exception):
                parent_conn.send(port)

        clusters: List[ClusterResult] = []
        ledgers: List[Optional[EdgeLedger]] = []
        crashes: List[Tuple[int, DeliveryError]] = []
        for cluster_idx, (parent_conn, process) in enumerate(
            zip(edge_conns, edge_procs)
        ):
            try:
                status, payload = _await_report(
                    parent_conn, process, edge_timeout, f"edge{cluster_idx}"
                )
            except DeliveryError as exc:
                # The degraded path: the crash becomes a recorded fault
                # and a zero-participation cluster, not a dead run.
                crashes.append((cluster_idx, exc))
                clusters.append(_degraded_cluster(cfg, cluster_idx))
                ledgers.append(None)
                continue
            if status == "error":
                raise RuntimeError(f"edge{cluster_idx} process failed:\n{payload}")
            result, ledger = payload
            clusters.append(result)
            ledgers.append(ledger)

        with contextlib.suppress(Exception):
            cloud_conn.send("stop")
        cloud_proc.join(timeout=10.0)
        return _merge_results(cfg, clusters, ledgers, crashes)
    finally:
        _reap(processes)
        for conn in conns:
            with contextlib.suppress(Exception):
                conn.close()


def _merge_results(
    cfg: ACMEConfig,
    clusters: List[ClusterResult],
    ledgers: List[Optional[EdgeLedger]],
    crashes: List[Tuple[int, DeliveryError]],
) -> ACMERunResult:
    """Fold per-edge ledgers (edge index order — the parity contract)."""
    traffic = TrafficStats()
    kinds: List[str] = []
    edge_kinds: Dict[str, List[str]] = {}
    fault_counter: Counter = Counter()
    retries = attempts = failed = 0
    for cluster_idx, ledger in enumerate(ledgers):
        if ledger is None:
            continue
        _merge_stats(traffic, ledger.stats)
        kinds.extend(ledger.kinds)
        edge_kinds[f"edge{cluster_idx}"] = list(ledger.kinds)
        fault_counter.update(ledger.fault_counts)
        retries += ledger.retry_count
        attempts += ledger.delivery_attempts
        failed += ledger.failed_deliveries
    for _cluster_idx, _error in crashes:
        # DeliveryError-derived: the supervisor's liveness check raised
        # it; the counters speak the fault ledger's language.
        fault_counter["crash"] += 1
        failed += 1
    data = build_fleet_data(cfg)
    return ACMERunResult(
        clusters=clusters,
        traffic=traffic,
        centralized_upload_bytes=centralized_upload_bytes(data.device_datasets),
        message_kinds=kinds,
        edge_message_kinds=edge_kinds,
        fault_counts=dict(fault_counter),
        total_retries=retries,
        delivery_attempts=attempts,
        failed_deliveries=failed,
    )