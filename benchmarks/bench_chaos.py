"""Perf bench: the fault-injection fabric's overhead and retry cost.

PR 6 teaches the in-process fabric to inject deterministic faults
(drops, corruption, duplicates, delays, churn) and the protocol to
degrade gracefully (retries with backoff, quorum rounds, carried-forward
sets).  That machinery sits on the hot ``send`` path of every message,
so this bench guards two budgets in ``BENCH_perf.json``:

* ``chaos_fabric_overhead`` — a raw ``Network.send`` microbench, the
  no-policy path vs the same loop with an armed-but-zero-rate
  :class:`FaultPolicy`.  The armed path pays the fault draw + checksum
  verification; the floor (0.95x) asserts the *no-policy* path never
  quietly inherits that cost — fault-free users must keep paying
  nothing.
* ``chaos_campaign_10pct_drop`` — a full multi-edge campaign under a
  seeded 10% drop policy vs the identical fault-free campaign.  The
  speedup is fault-free-time / chaos-time; the 0.5x floor bounds the
  retry + re-poll overhead of absorbing a 10% loss rate at roughly 2x
  wall-clock.  The record also logs completed rounds/s, the retry count
  and the injected-fault census for the EXPERIMENTS.md narrative.

The campaign leg asserts the chaos run *completes every aggregation
round* (the degraded-mode contract) before any timing is recorded.

Run:  PYTHONPATH=src python benchmarks/bench_chaos.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_chaos.py -s
Smoke (tiny shapes, no floors, trajectory untouched — wired into tier-1
via tests/test_bench_chaos_smoke.py):
      PYTHONPATH=src python benchmarks/bench_chaos.py --smoke
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from _common import emit_perf, perf_record, timed

from repro.distributed.faults import FaultConfig, FaultPolicy
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import Network
from repro.distributed.system import ACMEConfig, ACMESystem

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The no-policy send path vs the armed-but-silent path.  >=1.0 means
#: "armed costs more than plain", the expected direction; the floor only
#: trips if the plain path becomes measurably slower than the armed one.
OVERHEAD_FLOOR = 0.95
#: Fault-free campaign time / 10%-drop campaign time: retries and quorum
#: re-polls may cost up to ~2x before the floor trips.
CAMPAIGN_FLOOR = 0.5
DROP_RATE = 0.10


def _send_loop(sends: int, policy_config):
    """A zero-arg callable driving ``sends`` ACK messages through a fabric."""
    network = Network()
    network.register("sink", lambda message: None)
    if policy_config is not None:
        network.install_fault_policy(FaultPolicy(policy_config))
    block = np.zeros(64)

    def fn():
        network.reset_stats()
        for _ in range(sends):
            network.send(
                Message(
                    sender="src",
                    receiver="sink",
                    kind=MessageKind.ACK,
                    payload={"block": block},
                )
            )

    return fn


def _campaign_config(smoke: bool, fault=None) -> ACMEConfig:
    return ACMEConfig(
        num_clusters=2 if smoke else 4,
        devices_per_cluster=2 if smoke else 3,
        num_classes=4 if smoke else 6,
        samples_per_class=12 if smoke else 24,
        compute_dtype="float64",
        finalize=False,  # time the protocol rounds, not the fine-tune
        fault_config=fault,
        seed=0,
    )


def _run_campaign(smoke: bool, fault=None):
    config = _campaign_config(smoke, fault=fault)
    if fault is not None:
        config.edge.round_quorum = 0.6
    system = ACMESystem(config)
    start = time.perf_counter()
    result = system.run()
    elapsed = time.perf_counter() - start
    rounds = config.num_clusters * config.edge.aggregation_rounds
    for cluster in result.clusters:
        if len(cluster.round_participation) != config.edge.aggregation_rounds:
            raise AssertionError(
                f"{cluster.edge_name} completed "
                f"{len(cluster.round_participation)} of "
                f"{config.edge.aggregation_rounds} rounds under faults"
            )
    return elapsed, rounds, result


def bench_chaos(smoke: bool = False):
    sends = 200 if smoke else 2000
    reps = dict(repeats=3, warmup=1) if smoke else dict(repeats=5, warmup=1)
    plain = timed(_send_loop(sends, None), **reps)
    armed = timed(_send_loop(sends, FaultConfig(seed=0)), **reps)

    clean_s, rounds, _ = _run_campaign(smoke)
    chaos_s, chaos_rounds, chaos = _run_campaign(
        smoke, fault=FaultConfig(seed=7, drop=DROP_RATE, retries=3)
    )
    if chaos_rounds != rounds:
        raise AssertionError(f"round count moved: {chaos_rounds} vs {rounds}")

    one_run = {"repeats": 1, "warmup": 0}
    return [
        perf_record(
            "chaos_fabric_overhead",
            fast=plain,
            baseline=armed,
            floor=None if smoke else OVERHEAD_FLOOR,
            sends=sends,
            metric="no-policy Network.send loop vs armed zero-rate policy "
            "(floor = the fault-free path must not inherit the armed cost)",
        ),
        perf_record(
            "chaos_campaign_10pct_drop",
            fast={"best_s": chaos_s, "mean_s": chaos_s, **one_run},
            baseline={"best_s": clean_s, "mean_s": clean_s, **one_run},
            floor=None if smoke else CAMPAIGN_FLOOR,
            drop_rate=DROP_RATE,
            completed_rounds=chaos_rounds,
            completed_rounds_per_s=chaos_rounds / max(chaos_s, 1e-12),
            retries=chaos.total_retries,
            failed_deliveries=chaos.failed_deliveries,
            fault_counts=chaos.fault_counts,
            participation=chaos.participation,
            metric="seeded 10%-drop campaign wall-clock vs fault-free "
            "(speedup = clean/chaos; floor bounds retry overhead at ~2x)",
        ),
    ]


def run_bench(smoke: bool = False):
    if smoke:
        # Tiny shapes, no floors, committed trajectory untouched — the
        # tier-1 mode proving the bench itself (fabric microbench, chaos
        # campaign completion asserts, record plumbing) cannot rot.
        return emit_perf("bench_chaos_smoke", bench_chaos(smoke=True))
    return emit_perf(
        "bench_chaos",
        bench_chaos(),
        path=REPO_ROOT / "BENCH_perf.json",
    )


def test_chaos_bench():
    run_bench(smoke="--smoke" in sys.argv)


if __name__ == "__main__":
    run_bench(smoke="--smoke" in sys.argv)
