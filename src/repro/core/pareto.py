"""Pareto Front Grid construction and model selection (Eqs. 10-13, Alg. 1).

Phase 1's backbone customization evaluates every (w, d) candidate on three
objectives — loss on the public cloud dataset, worst-case cluster energy,
and model size ζ — then:

1. partitions the objective space into ``K = |f¹(θ*) - f¹(θ⁻)| / γ_p``
   intervals derived from the performance window γ_p (Eq. 11);
2. maps every candidate to grid coordinates Ψ_l (Eq. 11);
3. keeps, per objective and interval, the candidates with the best grid
   coordinate — their union is the Pareto Front Grid (Eq. 12);
4. truncates the PFG by the storage constraint, finds the best-performing
   surviving cell, and inside it picks the candidate closest (in grid
   space) to the ideal point θ* (Eq. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

NUM_OBJECTIVES = 3  # (loss, energy, size) — l ∈ {1, 2, 3} in the paper


@dataclass(frozen=True)
class Candidate:
    """One evaluated backbone configuration ˜θ_s = δ(θ0, w, d).

    ``objectives`` is the vector f(˜θ) = (loss, energy, ζ); lower is better
    for every component.
    """

    width: float
    depth: int
    objectives: Tuple[float, float, float]

    @property
    def loss(self) -> float:
        return self.objectives[0]

    @property
    def energy(self) -> float:
        return self.objectives[1]

    @property
    def size(self) -> float:
        return self.objectives[2]


@dataclass
class ParetoFrontGrid:
    """The constructed PFG with everything needed for selection."""

    candidates: List[Candidate]
    grid_coords: np.ndarray  # (n_candidates, 3) integer Ψ values
    ideal: np.ndarray  # f(θ*): per-objective minima
    worst: np.ndarray  # f(θ⁻): per-objective maxima
    num_intervals: int  # K
    members: List[int] = field(default_factory=list)  # indices in the PFG


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if objective vector ``a`` Pareto-dominates ``b`` (minimization)."""
    a = np.asarray(a)
    b = np.asarray(b)
    return bool((a <= b).all() and (a < b).any())


def pareto_front(candidates: Sequence[Candidate]) -> List[int]:
    """Indices of non-dominated candidates (exact, O(n²) reference)."""
    indices = []
    for i, c in enumerate(candidates):
        if not any(
            dominates(other.objectives, c.objectives)
            for j, other in enumerate(candidates)
            if j != i
        ):
            indices.append(i)
    return indices


def grid_coordinates(
    values: np.ndarray,
    ideal: np.ndarray,
    worst: np.ndarray,
    num_intervals: int,
    sigma: float = 1e-9,
) -> np.ndarray:
    """Eq. (11): Ψ_l(θ) = ⌈(f_l(θ) - f_l(θ*) + σ) / r_l⌉ per objective."""
    if num_intervals < 1:
        raise ValueError(f"num_intervals must be >= 1, got {num_intervals}")
    spans = (worst - ideal + 2 * sigma) / num_intervals  # r_l
    coords = np.ceil((values - ideal + sigma) / spans).astype(int)
    return np.clip(coords, 1, num_intervals)


def build_pfg(
    candidates: Sequence[Candidate],
    performance_window: float,
    sigma: float = 1e-9,
) -> ParetoFrontGrid:
    """Construct the Pareto Front Grid from evaluated candidates.

    ``performance_window`` is γ_p: the acceptable trade-off granularity on
    the performance (loss) objective; it determines the interval count
    ``K = |f¹(θ*) - f¹(θ⁻)| / γ_p`` applied uniformly to all objectives.
    """
    if not candidates:
        raise ValueError("cannot build a PFG from zero candidates")
    if performance_window <= 0:
        raise ValueError(f"performance_window must be positive, got {performance_window}")

    values = np.array([c.objectives for c in candidates], dtype=float)
    ideal = values.min(axis=0)
    worst = values.max(axis=0)
    perf_span = abs(worst[0] - ideal[0])
    num_intervals = max(1, int(np.ceil(perf_span / performance_window)))

    coords = grid_coordinates(values, ideal, worst, num_intervals, sigma)

    # Eq. (12): keep, per objective interval, the solutions with optimal
    # grid coordinates.  Operationally this is grid (ε-)dominance: a
    # candidate joins the PFG iff no other candidate weakly improves its
    # grid coordinates on every objective while strictly improving one.
    # Candidates sharing one grid cell are all kept (Eq. 13 breaks ties).
    members: List[int] = []
    n = len(candidates)
    for i in range(n):
        ci = coords[i]
        grid_dominated = False
        for j in range(n):
            if j == i:
                continue
            cj = coords[j]
            if (cj <= ci).all() and (cj < ci).any():
                grid_dominated = True
                break
        if not grid_dominated:
            members.append(i)

    return ParetoFrontGrid(
        candidates=list(candidates),
        grid_coords=coords,
        ideal=ideal,
        worst=worst,
        num_intervals=num_intervals,
        members=members,
    )


def select_model(
    pfg: ParetoFrontGrid,
    storage_limit: float,
) -> Candidate:
    """Eq. (13): pick the final model under the storage constraint.

    Truncate the PFG by ζ(θ) < storage_limit, locate the best-performing
    surviving cell, and within the candidates sharing that cell choose the
    one minimizing the Euclidean distance (in grid coordinates) to the
    ideal point — whose grid coordinate is 1 on every objective.

    Ties break on the candidate's (width, depth) — a total order over
    the grid — so the selection is a pure function of the candidate
    *set*, independent of list order or of the order concurrent cluster
    requests reach the cloud.
    """
    feasible = [
        i for i in pfg.members if pfg.candidates[i].size < storage_limit
    ]
    if not feasible:
        raise ValueError(
            f"no PFG member satisfies storage limit {storage_limit}; "
            f"smallest member size is "
            f"{min(pfg.candidates[i].size for i in pfg.members):.1f}"
        )

    def _tie_break(i: int) -> Tuple[float, int]:
        return (pfg.candidates[i].width, pfg.candidates[i].depth)

    # Highest-performing feasible model → its grid cell is the search space.
    best_idx = min(feasible, key=lambda i: (pfg.candidates[i].loss, _tie_break(i)))
    best_cell = pfg.grid_coords[best_idx, 0]
    cell_members = [i for i in feasible if pfg.grid_coords[i, 0] == best_cell]

    ideal_coords = np.ones(NUM_OBJECTIVES)
    chosen = min(
        cell_members,
        key=lambda i: (
            float(((pfg.grid_coords[i] - ideal_coords) ** 2).sum()),
            _tie_break(i),
        ),
    )
    return pfg.candidates[chosen]


def pfg_members(pfg: ParetoFrontGrid) -> List[Candidate]:
    """The candidates forming the Pareto Front Grid."""
    return [pfg.candidates[i] for i in pfg.members]
