"""Reverse-mode automatic differentiation on numpy arrays.

This module implements the :class:`Tensor` type used throughout the
reproduction.  A :class:`Tensor` wraps a ``numpy.ndarray`` and records the
operations applied to it; calling :meth:`Tensor.backward` propagates
gradients through the recorded graph in reverse topological order.

The design follows the classic define-by-run tape:

* every operation returns a new :class:`Tensor` holding references to its
  parents and a closure that accumulates gradients into them;
* broadcasting is supported for elementwise binary operations, with
  gradients "unbroadcast" (summed) back to each parent's shape;
* gradients accumulate additively, so a tensor used several times in a
  graph receives the sum of all its downstream contributions.

The engine is intentionally small but complete enough to train Vision
Transformers, convolutional headers and LSTM controllers on CPU.

Two switches control the engine's speed/accuracy trade-off:

* **grad mode** — :func:`no_grad` / :func:`set_grad_enabled` disable the
  tape: inside a disabled region no parents or backward closures are
  recorded, so pure-inference code pays only the forward numpy cost;
* **default dtype** — :func:`set_default_dtype` selects the compute
  precision (**float32 by default** since PR 9 — it roughly halves
  memory traffic on every kernel; scope :func:`using_dtype`
  ``("float64")`` around code that needs full precision, e.g.
  finite-difference gradient checks and the published protocol
  reproductions, whose configs pin float64 explicitly).

Both switches are **context-local** (:mod:`contextvars`), not module
globals: a ``no_grad()`` or ``using_dtype()`` region entered in one
thread cannot drop another thread's tape or flip its dtype, which is
what makes the thread-parallel device loops in
:mod:`repro.distributed.executor` safe.  Threads started outside
:func:`repro.distributed.executor.parallel_map` begin from the engine
defaults (grad on, float32); the executor instead captures the caller's
context at submit time so scoped settings (e.g. a float64 system run)
propagate to its workers.
"""

from __future__ import annotations

import contextvars
from typing import Callable, Final, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

#: Supported compute dtypes, keyed by their canonical names.
_SUPPORTED_DTYPES: Final = {
    "float32": np.float32,
    "float64": np.float64,
}

#: Engine compute precision for newly created tensors (context-local).
#: float32 is the import-time default (PR 9): the protocol's published
#: numbers stay on float64 because ``ACMEConfig.compute_dtype`` pins it
#: per run, while everything else gets the halved memory traffic.
_DEFAULT_DTYPE_VAR: contextvars.ContextVar = contextvars.ContextVar(
    "repro_default_dtype", default=np.float32
)

# Tape recording state.  ``_GRAD_ENABLED_VAR`` is toggled by ``no_grad``
# / ``set_grad_enabled``; ``_GRAD_OVERRIDE_VAR`` (benchmark-only) pins
# the mode regardless of ``no_grad`` regions so the pre-fast-path engine
# behavior can be reproduced for timing comparisons.
_GRAD_ENABLED_VAR: contextvars.ContextVar = contextvars.ContextVar(
    "repro_grad_enabled", default=True
)
_GRAD_OVERRIDE_VAR: contextvars.ContextVar = contextvars.ContextVar(
    "repro_grad_override", default=None
)

# ``numpy.power`` with a small integer exponent routes through libm pow
# and is ~100x slower than repeated multiplication on large arrays; the
# engine expands those exponents by hand.  ``_set_fast_pow(False)`` is a
# benchmark-only switch restoring the libm behavior of the seed engine.
_FAST_POW_VAR: contextvars.ContextVar = contextvars.ContextVar(
    "repro_fast_pow", default=True
)

# Gradient accumulation strategy.  With in-place accumulation (the
# default) every tensor owns its ``grad`` array outright: the first
# contribution is copied into an owned buffer and later contributions are
# added with ``+=`` instead of allocating a fresh sum each time.
# ``_set_inplace_accumulation(False)`` is a benchmark-only switch
# restoring the allocate-per-accumulation behavior of the seed engine.
_INPLACE_ACCUM_VAR: contextvars.ContextVar = contextvars.ContextVar(
    "repro_inplace_accum", default=True
)


def _set_inplace_accumulation(enabled: bool) -> None:
    _INPLACE_ACCUM_VAR.set(bool(enabled))


def _set_fast_pow(enabled: bool) -> None:
    _FAST_POW_VAR.set(bool(enabled))


def _pow(base: np.ndarray, exponent) -> np.ndarray:
    """``base ** exponent`` with small integer/half exponents expanded."""
    if _FAST_POW_VAR.get():
        if exponent == 2:
            return base * base
        if exponent == 3:
            return base * base * base
        if exponent == 4:
            sq = base * base
            return sq * sq
        if exponent == 1:
            return base
        if exponent == 0.5:
            return np.sqrt(base)
        if exponent == -0.5:
            return 1.0 / np.sqrt(base)
        if exponent == -1:
            return 1.0 / base
    return base**exponent


def _resolve_dtype(dtype):
    """Normalize a dtype spec (str / np.dtype / type) to a numpy scalar type."""
    if isinstance(dtype, str):
        if dtype not in _SUPPORTED_DTYPES:
            raise ValueError(
                f"unsupported dtype {dtype!r}; options: {sorted(_SUPPORTED_DTYPES)}"
            )
        return _SUPPORTED_DTYPES[dtype]
    resolved = np.dtype(dtype)
    for candidate in _SUPPORTED_DTYPES.values():
        if resolved == np.dtype(candidate):
            return candidate
    raise ValueError(
        f"unsupported dtype {dtype!r}; options: {sorted(_SUPPORTED_DTYPES)}"
    )


def set_default_dtype(dtype) -> None:
    """Set the engine compute dtype (``"float32"`` or ``"float64"``).

    Applies to tensors created afterwards; existing tensors keep their
    dtype (convert modules with :meth:`repro.nn.Module.astype`).  The
    setting is context-local: it affects the calling thread (and any
    executor workers that copy its context), never a concurrently
    running thread.
    """
    _DEFAULT_DTYPE_VAR.set(_resolve_dtype(dtype))


def get_default_dtype():
    """The dtype new tensors are created with (in the current context)."""
    return _DEFAULT_DTYPE_VAR.get()


class using_dtype:
    """Context manager scoping :func:`set_default_dtype` to a block."""

    def __init__(self, dtype) -> None:
        self._dtype = _resolve_dtype(dtype)
        self._previous = None

    def __enter__(self) -> "using_dtype":
        self._previous = _DEFAULT_DTYPE_VAR.get()
        set_default_dtype(self._dtype)
        return self

    def __exit__(self, *exc) -> None:
        set_default_dtype(self._previous)


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd tape."""
    override = _GRAD_OVERRIDE_VAR.get()
    if override is not None:
        return override
    return _GRAD_ENABLED_VAR.get()


def set_grad_enabled(mode: bool) -> bool:
    """Enable/disable tape recording for the current context.

    Returns the previous mode.  Context-local: one thread's setting is
    invisible to other threads.
    """
    previous = _GRAD_ENABLED_VAR.get()
    _GRAD_ENABLED_VAR.set(bool(mode))
    return previous


def _set_grad_override(mode: Optional[bool]) -> None:
    """Benchmark hook: pin grad mode regardless of ``no_grad`` regions.

    Pass ``True`` to force recording (emulating the engine before the
    inference fast path existed), ``None`` to restore normal behavior.
    """
    _GRAD_OVERRIDE_VAR.set(mode)


class _GradMode:
    """Context manager / decorator setting tape recording to ``mode``."""

    _mode = True

    def __init__(self) -> None:
        self._previous: Optional[bool] = None

    def __enter__(self) -> "_GradMode":
        self._previous = set_grad_enabled(self._mode)
        return self

    def __exit__(self, *exc) -> None:
        set_grad_enabled(self._previous)

    def __call__(self, fn: Callable) -> Callable:
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with type(self)():
                return fn(*args, **kwargs)

        return wrapper


class no_grad(_GradMode):
    """Disable tape recording: forwards run as plain numpy pipelines.

    Usable as a context manager (``with no_grad(): ...``) or decorator.
    Tensors produced inside have no parents and no backward closures, so
    they cannot be backpropagated through — use for inference only.
    """

    _mode = False


class enable_grad(_GradMode):
    """Re-enable tape recording inside a ``no_grad`` region."""

    _mode = True


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``data`` to a numpy array with the engine's default dtype.

    Floating arrays wider than the default dtype are cast down so that a
    float32 session never silently upcasts to float64; narrower floating
    arrays (e.g. float32 wire payloads under a float64 default) pass
    through untouched, preserving the historical behavior.
    """
    if isinstance(data, np.ndarray):
        if dtype is not None:
            return data if data.dtype == dtype else data.astype(dtype)
        default = _DEFAULT_DTYPE_VAR.get()
        if data.dtype.kind in "fc":
            if data.dtype.kind == "f" and data.dtype.itemsize > np.dtype(default).itemsize:
                return data.astype(default)
            return data
        return data.astype(default)
    return np.asarray(data, dtype=dtype or _DEFAULT_DTYPE_VAR.get())


def _index_is_unique(index) -> bool:
    """True if ``index`` is basic indexing (ints/slices only), which can
    never address the same element twice — allowing gradient scatter via
    assignment instead of ``np.add.at``."""
    if isinstance(index, (int, np.integer, slice)) or index is Ellipsis or index is None:
        return True
    if isinstance(index, tuple):
        return all(
            isinstance(part, (int, np.integer, slice)) or part is Ellipsis or part is None
            for part in index
        )
    return False


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along dimensions that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array node in an autograd graph.

    Parameters
    ----------
    data:
        The wrapped value (anything ``numpy.asarray`` accepts).
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    name:
        Optional human-readable label used in ``repr`` and debugging.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "name",
        "_backward",
        "_parents",
        "_grad_buffer",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self.name = name
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        # Retained grad storage for cross-step buffer reuse (see
        # ``zero_grad(keep_buffer=True)``); always exclusively owned by
        # this tensor, never an alias of an activation or another grad.
        self._grad_buffer: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add a backward contribution to ``self.grad``.

        Ownership/copy rules: ``self.grad`` is always an array this tensor
        owns exclusively — the first contribution is **copied** (never
        adopted by reference), so a backward closure can pass a view of a
        live activation or another tensor's grad without it ever being
        aliased into ``self.grad``.  Later contributions accumulate with
        ``+=`` into the owned buffer; incoming arrays are only read.
        Callers that assign ``tensor.grad`` directly transfer ownership of
        the assigned array to the tensor.
        """
        grad = _unbroadcast(np.asarray(grad), self.data.shape)
        current = self.grad
        if current is not None:
            if _INPLACE_ACCUM_VAR.get() and grad.dtype == current.dtype:
                current += grad
            else:
                self.grad = current + grad
                if self._grad_buffer is current:
                    self._grad_buffer = self.grad
            return
        if _INPLACE_ACCUM_VAR.get():
            buf = self._grad_buffer
            if (
                buf is not None
                and buf.shape == grad.shape
                and buf.dtype == grad.dtype
            ):
                # Reuse last step's array instead of allocating a fresh one.
                np.copyto(buf, grad)
                self.grad = buf
                return
            buf = grad.copy()
            self._grad_buffer = buf
            self.grad = buf
        else:
            self.grad = grad.copy()

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but severed from the graph."""
        return Tensor(self.data)

    def zero_grad(self, keep_buffer: bool = False) -> None:
        """Clear the gradient.

        With ``keep_buffer=True`` the grad array is retained (detached
        from ``grad``) so the next backward pass accumulates into it
        instead of allocating a fresh one — the buffer-reuse mode
        :meth:`repro.nn.optim.Optimizer.zero_grad` uses between steps.
        """
        if keep_buffer:
            if self.grad is not None:
                self._grad_buffer = self.grad
        else:
            self._grad_buffer = None
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones (and must be provided for non-scalar outputs
            where that default would be surprising).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        # Build reverse topological order iteratively (graphs can be deep).
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / _pow(other.data, 2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = _pow(self.data, exponent)
        if out_data is self.data:  # exponent == 1: don't alias the input
            out_data = self.data.copy()

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * _pow(self.data, exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Comparison operators (no gradients; return numpy bool arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):  # pragma: no cover - trivial
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):  # pragma: no cover - trivial
        return self.data < (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data * out_data))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian Error Linear Unit (tanh approximation)."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        inner = c * (x + 0.044715 * _pow(x, 3))
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad: np.ndarray) -> None:
            dinner = c * (1.0 + 3 * 0.044715 * _pow(x, 2))
            local = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
            self._accumulate(grad * local)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            mask = self.data == expanded
            # Split gradient equally among ties to keep the op well-defined.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(np.broadcast_to(g, self.data.shape) * mask / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra / shape manipulation
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        if self.data.ndim < 2 or other.data.ndim < 2:
            raise ValueError("matmul requires both operands to have ndim >= 2")
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                ga = grad @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(ga, a.shape))
            if other.requires_grad:
                gb = np.swapaxes(a, -1, -2) @ grad
                other._accumulate(_unbroadcast(gb, b.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            if _index_is_unique(index):
                # Basic indexing never selects the same element twice, so
                # plain assignment replaces the (much slower) ufunc.at
                # scatter-add.
                full[index] = grad
            else:
                np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad; ``pad_width`` follows ``numpy.pad`` conventions."""
        out_data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(before, before + dim)
            for (before, _after), dim in zip(pad_width, self.data.shape)
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad[slices])

        return Tensor._make(out_data, (self,), backward)

    def flatten(self, start_axis: int = 0) -> "Tensor":
        shape = self.data.shape
        new_shape = shape[:start_axis] + (-1,)
        return self.reshape(new_shape)


# ----------------------------------------------------------------------
# Free functions operating on tensors
# ----------------------------------------------------------------------
def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, end)
                t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for t, g in zip(tensors, moved):
            if t.requires_grad:
                t._accumulate(g)

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a plain boolean array."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * cond)
        if b.requires_grad:
            b._accumulate(grad * (~cond))

    return Tensor._make(out_data, (a, b), backward)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE_VAR.get()), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE_VAR.get()), requires_grad=requires_grad)
