"""Gradient and algebra tests for the autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, concatenate, stack, where, zeros, ones
from tests.helpers import check_gradient

RNG = np.random.default_rng(42)


class TestElementwise:
    def test_add_broadcast_gradient(self):
        x = RNG.normal(size=(3, 4))
        other = Tensor(RNG.normal(size=(4,)))
        check_gradient(lambda t: ((t + other) ** 2).sum(), x)

    def test_mul_gradient(self):
        x = RNG.normal(size=(3, 4))
        other = Tensor(RNG.normal(size=(3, 4)))
        check_gradient(lambda t: (t * other).sum(), x)

    def test_div_gradient(self):
        x = RNG.normal(size=(3, 4)) + 3.0
        check_gradient(lambda t: (Tensor(np.ones((3, 4))) / t).sum(), x)

    def test_sub_and_neg(self):
        x = RNG.normal(size=(5,))
        check_gradient(lambda t: (-(t - 2.0)).sum(), x)

    def test_pow_gradient(self):
        x = RNG.normal(size=(4,)) ** 2 + 0.5
        check_gradient(lambda t: (t**3).sum(), x)

    def test_both_operands_receive_grads(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_reused_tensor_accumulates(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        loss = (a * a) + a  # d/da = 2a + 1 = 5
        loss.sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])


class TestUnary:
    @pytest.mark.parametrize(
        "op",
        ["exp", "tanh", "sigmoid", "relu", "gelu", "abs"],
    )
    def test_unary_gradients(self, op):
        x = RNG.normal(size=(3, 5)) + 0.1  # avoid relu/abs kink at 0
        check_gradient(lambda t: getattr(t, op)().sum(), x)

    def test_log_gradient(self):
        x = RNG.random((3, 4)) + 0.5
        check_gradient(lambda t: t.log().sum(), x)

    def test_sqrt_gradient(self):
        x = RNG.random((6,)) + 0.5
        check_gradient(lambda t: t.sqrt().sum(), x)


class TestReductions:
    def test_sum_axis_gradient(self):
        x = RNG.normal(size=(3, 4, 2))
        check_gradient(lambda t: (t.sum(axis=1) ** 2).sum(), x)

    def test_sum_keepdims_gradient(self):
        x = RNG.normal(size=(3, 4))
        check_gradient(lambda t: (t.sum(axis=0, keepdims=True) ** 2).sum(), x)

    def test_mean_gradient(self):
        x = RNG.normal(size=(4, 5))
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), x)

    def test_var_gradient(self):
        x = RNG.normal(size=(4, 6))
        check_gradient(lambda t: t.var(axis=1).sum(), x)

    def test_max_gradient_no_ties(self):
        x = np.arange(12, dtype=float).reshape(3, 4)
        check_gradient(lambda t: (t.max(axis=1) ** 2).sum(), x)

    def test_max_splits_gradient_among_ties(self):
        x = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])


class TestShapes:
    def test_matmul_gradient(self):
        a = RNG.normal(size=(3, 4))
        b = Tensor(RNG.normal(size=(4, 2)))
        check_gradient(lambda t: (t @ b).sum(), a)

    def test_batched_matmul_gradient(self):
        a = RNG.normal(size=(2, 3, 4))
        b = Tensor(RNG.normal(size=(2, 4, 5)))
        check_gradient(lambda t: ((t @ b) ** 2).sum(), a)

    def test_matmul_broadcast_batch(self):
        a = RNG.normal(size=(2, 3, 4))
        b = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        out = Tensor(a, requires_grad=True) @ b
        out.sum().backward()
        assert b.grad.shape == (4, 5)

    def test_matmul_rejects_vectors(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)) @ Tensor(np.ones((3, 2)))

    def test_reshape_gradient(self):
        x = RNG.normal(size=(2, 6))
        check_gradient(lambda t: (t.reshape(3, 4) ** 2).sum(), x)

    def test_transpose_gradient(self):
        x = RNG.normal(size=(2, 3, 4))
        check_gradient(lambda t: (t.transpose((2, 0, 1)) ** 2).sum(), x)

    def test_swapaxes_roundtrip(self):
        x = Tensor(RNG.normal(size=(2, 3, 4)))
        np.testing.assert_allclose(x.swapaxes(1, 2).swapaxes(1, 2).data, x.data)

    def test_getitem_gradient(self):
        x = RNG.normal(size=(4, 5))
        check_gradient(lambda t: (t[1:3, ::2] ** 2).sum(), x)

    def test_getitem_advanced_indexing_accumulates(self):
        x = Tensor(np.zeros((3, 2)), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [[2.0, 2.0], [0.0, 0.0], [1.0, 1.0]])

    def test_pad_gradient(self):
        x = RNG.normal(size=(2, 3))
        check_gradient(lambda t: (t.pad(((1, 1), (2, 0))) ** 2).sum(), x)

    def test_concatenate_gradient(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        concatenate([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 2)))

    def test_stack_gradient(self):
        a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        (stack([a, b], axis=0) * Tensor(np.array([[1.0, 2, 3], [4, 5, 6]]))).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 2, 3])
        np.testing.assert_allclose(b.grad, [4, 5, 6])

    def test_where_routes_gradients(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        where(np.array([True, False]), a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestBackwardSemantics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_backward_shape_mismatch(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            t.backward(np.ones(4))

    def test_detach_severs_graph(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a.detach() * 3).sum()  # no graph; nothing to backward through
        assert a.grad is None

    def test_deep_chain_does_not_overflow(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_diamond_graph_gradient(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2
        b = x * 5
        (a + b).sum().backward()  # d/dx = 7
        np.testing.assert_allclose(x.grad, [7.0])

    def test_zeros_ones_helpers(self):
        assert zeros((2, 2)).data.sum() == 0
        assert ones((2, 2)).data.sum() == 4


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(-10, 10), min_size=1, max_size=8),
    st.lists(st.floats(-10, 10), min_size=1, max_size=8),
)
def test_property_add_commutes(xs, ys):
    n = min(len(xs), len(ys))
    a = Tensor(np.array(xs[:n]))
    b = Tensor(np.array(ys[:n]))
    np.testing.assert_allclose((a + b).data, (b + a).data)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-5, 5), min_size=2, max_size=10))
def test_property_sum_linearity(xs):
    a = Tensor(np.array(xs), requires_grad=True)
    (a * 3.0).sum().backward()
    np.testing.assert_allclose(a.grad, np.full(len(xs), 3.0))


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
def test_property_matmul_shape(n, k, m):
    a = Tensor(np.ones((n, k)))
    b = Tensor(np.ones((k, m)))
    out = a @ b
    assert out.shape == (n, m)
    np.testing.assert_allclose(out.data, np.full((n, m), float(k)))
