"""Perf bench: the TCP wire transport's overhead over loopback.

PR 8 makes the transport pluggable: the same seeded campaign can run
in-process (loopback) or as real OS processes over TCP with the wire
codec carrying every message.  Two budgets in ``BENCH_perf.json``:

* ``transport_tcp_overhead`` — the same 2-edge campaign over loopback
  vs over TCP processes (speedup = loopback-time / TCP-time, so < 1.0
  by construction).  TCP pays process spawn, per-process dataset
  rebuild, codec work and socket hops; the 0.1x floor bounds that at
  ~10x wall-clock, loud enough to catch a reconnect storm, a heartbeat
  busy-loop or a serialization blow-up while tolerating CI noise.  The
  record asserts bit-identical results first — a fast-but-wrong
  transport never records a number.
* ``wire_codec_vs_npz`` — round-tripping a model state dict through the
  wire codec vs the npz serializer (``repro.nn.serialization``, its
  uncompressed mode — the fair baseline: the wire codec does not
  compress either).  The floor (0.5x) guards against the codec becoming
  pathologically slower than the format it replaced on the wire.

Run:  PYTHONPATH=src python benchmarks/bench_transport.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_transport.py -s
Smoke (tiny shapes, no floors, trajectory untouched — wired into tier-1
via tests/test_bench_transport_smoke.py):
      PYTHONPATH=src python benchmarks/bench_transport.py --smoke
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit_perf, perf_record, timed

from repro.distributed.system import ACMEConfig, ACMESystem, run_multiprocess
from repro.distributed.wire import decode_value, encode_value
from repro.models.vit import ViTConfig, VisionTransformer
from repro.nn.serialization import state_from_bytes, state_to_bytes

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Loopback-time / TCP-time: spawn + rebuild + codec + sockets may cost
#: up to ~10x before the floor trips.
TCP_OVERHEAD_FLOOR = 0.1
#: Wire-codec round-trip vs uncompressed npz round-trip.
CODEC_FLOOR = 0.5


def _campaign_config(smoke: bool) -> ACMEConfig:
    return ACMEConfig(
        num_clusters=2,
        devices_per_cluster=2 if smoke else 3,
        num_classes=4 if smoke else 6,
        samples_per_class=12 if smoke else 24,
        compute_dtype="float64",
        seed=0,
    )


def _campaigns(smoke: bool):
    """Run the same seeded campaign over both transports; assert parity."""
    config = _campaign_config(smoke)
    start = time.perf_counter()
    loop = ACMESystem(config).run()
    loop_s = time.perf_counter() - start
    start = time.perf_counter()
    tcp = run_multiprocess(config, edge_timeout=600.0)
    tcp_s = time.perf_counter() - start
    # Overhead is only worth recording for a transport that is *right*.
    if tcp.message_kinds != loop.message_kinds:
        raise AssertionError("TCP kind sequence diverged from loopback")
    if [c.device_accuracies for c in tcp.clusters] != [
        c.device_accuracies for c in loop.clusters
    ]:
        raise AssertionError("TCP accuracies diverged from loopback")
    if tcp.traffic.total_bytes != loop.traffic.total_bytes:
        raise AssertionError("TCP traffic ledger diverged from loopback")
    return loop_s, tcp_s, loop


def _codec_loops(smoke: bool):
    """Round-trip a backbone state dict through both serializers."""
    config = ViTConfig() if not smoke else ViTConfig(embed_dim=16, depth=2, num_heads=2)
    state = VisionTransformer(config, seed=0).state_dict()

    def wire_fn():
        decode_value(encode_value(state))

    def npz_fn():
        state_from_bytes(state_to_bytes(state, compress=False))

    return state, wire_fn, npz_fn


def bench_transport(smoke: bool = False):
    loop_s, tcp_s, loop = _campaigns(smoke)
    state, wire_fn, npz_fn = _codec_loops(smoke)
    reps = dict(repeats=3, warmup=1) if smoke else dict(repeats=7, warmup=2)
    wire_t = timed(wire_fn, **reps)
    npz_t = timed(npz_fn, **reps)
    state_bytes = sum(a.nbytes for a in state.values())

    one_run = {"repeats": 1, "warmup": 0}
    return [
        perf_record(
            "transport_tcp_overhead",
            fast={"best_s": tcp_s, "mean_s": tcp_s, **one_run},
            baseline={"best_s": loop_s, "mean_s": loop_s, **one_run},
            floor=None if smoke else TCP_OVERHEAD_FLOOR,
            loopback_s=loop_s,
            tcp_s=tcp_s,
            tcp_over_loopback=tcp_s / max(loop_s, 1e-12),
            mean_accuracy=loop.mean_accuracy,
            messages=len(loop.message_kinds),
            metric="same seeded campaign: speedup = loopback-time / "
            "TCP-time (results asserted bit-identical first; the floor "
            "bounds transport overhead at ~10x wall-clock)",
        ),
        perf_record(
            "wire_codec_vs_npz",
            fast=wire_t,
            baseline=npz_t,
            floor=None if smoke else CODEC_FLOOR,
            state_mb=state_bytes / 1e6,
            arrays=len(state),
            metric="wire-codec state-dict round-trip vs uncompressed npz "
            "round-trip (floor guards codec pathologies)",
        ),
    ]


def run_bench(smoke: bool = False):
    if smoke:
        # Tiny shapes, no floors, committed trajectory untouched — the
        # tier-1 mode proving the bench itself (both transports end to
        # end with parity asserts, the codec loops, record plumbing)
        # cannot rot between perf PRs.
        return emit_perf("bench_transport_smoke", bench_transport(smoke=True))
    return emit_perf(
        "bench_transport",
        bench_transport(),
        path=REPO_ROOT / "BENCH_perf.json",
    )


def test_transport_bench():
    run_bench(smoke="--smoke" in sys.argv)


if __name__ == "__main__":
    run_bench(smoke="--smoke" in sys.argv)
