"""Gradient-based optimizers.

Plain SGD (with momentum and weight decay) and Adam, operating on lists of
:class:`~repro.nn.layers.Parameter`.  All state is keyed by parameter
identity, so parameters can be shared between child models (the ENAS
weight-sharing scheme) and still receive a single, consistent update.

Both optimizers run **fused in-place** by default.  On the first step the
parameters are flattened into one contiguous buffer per dtype (a
:class:`_FlatGroup`): each parameter's ``data`` becomes a view into the
flat buffer, its grad buffer a view into a flat grad buffer, and the
optimizer state (momentum / moments) plus two scratch buffers live as
flat arrays of the same length.  A steady-state step is then a fixed
handful of ``out=``-style ufunc passes (``np.multiply(..., out=)``,
``flat_data -= ...``) over the whole parameter set — zero allocations
and zero per-parameter Python dispatch, which is where the seed
implementation (~6 fresh temporaries per parameter per step, ~15 numpy
calls per parameter) spent most of its time on realistic models.

Every fused update keeps the exact per-element operation sequence of the
original implementations (only swapping operands of commutative
``+``/``*``, which is bitwise-neutral under IEEE-754), so fused float64
training traces are **bit-for-bit identical** to the reference path.
The reference implementations are retained behind ``fused=False`` for
parity tests and seed-equivalent benchmarking.  Steps where some
parameters have no gradient (e.g. partially-used ENAS shared pools) fall
back to an equivalent per-parameter in-place update over the same flat
state, preserving the reference semantics of skipping those parameters.

``Optimizer.zero_grad`` defaults to the buffer-reuse mode: cleared
parameter grads keep their arrays (see
:meth:`repro.nn.tensor.Tensor.zero_grad`) so step N+1's backward pass
accumulates straight into the flat grad buffer instead of freshly
allocated arrays.
"""

from __future__ import annotations

import weakref
from typing import Dict, Final, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.registry import hotpath, register_lock
from repro.nn.tensor import Tensor

#: Live optimizers, notified when a module rebinds parameter storage
#: (``Module.astype``) so fused flat groups never step stale memory.
#: Mutated only under ``_REGISTRY_LOCK``; never rebound.
_LIVE_OPTIMIZERS: Final["weakref.WeakSet"] = weakref.WeakSet()
_REGISTRY_LOCK = register_lock(
    "optim.live-registry", module=__name__, attr="_REGISTRY_LOCK"
)

#: Cache-block size (elements) for the fused flat-buffer sweeps.  A full
#: fused step is ~14 ufunc passes over up to 6 arrays; on flat buffers
#: larger than the last-level-cache slice every pass re-streams the
#: whole working set from DRAM.  Chunking the sweep keeps one block of
#: all six arrays cache-resident across the passes while still
#: amortizing per-ufunc dispatch over tens of thousands of elements.
#: 65536 elements × 6 arrays ≈ 3 MiB at float64 / 1.5 MiB at float32 —
#: measured best (1.1–1.2x over unblocked) across 0.5M–4M-element
#: buffers in ``benchmarks/bench_process_pool.py``.  Because every pass
#: is elementwise, a blocked sweep is **bit-for-bit** identical to the
#: unblocked one (asserted in ``tests/nn/test_optim_blocked.py``).
#: ``0`` disables blocking.
_FUSED_BLOCK_ELEMS = 65536


def set_fused_block_elems(elems: int) -> int:
    """Set the fused-sweep cache-block size; returns the previous value.

    Benchmark/test hook: ``0`` disables blocking (the pre-blocking
    behavior), any positive value chunks flat sweeps at that many
    elements.  Parity is unconditional — this knob only moves cache
    behavior, never results.
    """
    global _FUSED_BLOCK_ELEMS
    previous = _FUSED_BLOCK_ELEMS
    _FUSED_BLOCK_ELEMS = int(elems)
    return previous


def _block_slices(size: int):
    """Slices chunking a flat buffer at the configured block size.

    Yields the identity slice when blocking is off or the buffer already
    fits a single block, so callers need no special cases.
    """
    block = _FUSED_BLOCK_ELEMS
    if block <= 0 or size <= block:
        yield slice(None)
        return
    for lo in range(0, size, block):
        yield slice(lo, min(lo + block, size))


def notify_params_rebound(params: Sequence[Tensor], dtype) -> None:
    """Tell live optimizers that ``params`` were rebound to new storage.

    Called by ``Module.astype`` after converting parameter dtypes: every
    optimizer holding any of these parameters rebuilds its flat groups
    around the new arrays and casts its per-parameter state (moments /
    velocity) to ``dtype`` — on both the fused and the reference path —
    so subsequent steps update the live arrays instead of the detached
    flat buffers, and never silently upcast the model back.
    """
    ids = {id(p) for p in params}
    with _REGISTRY_LOCK:
        live = list(_LIVE_OPTIMIZERS)
    for optimizer in live:
        optimizer._on_params_rebound(ids, np.dtype(dtype))


class _FlatGroup:
    """Parameters of one dtype flattened into contiguous step buffers.

    Layout: ``flat_data`` (parameter values; each parameter's ``data`` is
    rebound to a view of it), ``flat_grad`` (the owned grad buffers the
    backward pass accumulates into), ``num_state`` zero-initialized state
    arrays and ``num_scratch`` uninitialized scratch arrays.  Per-param
    views of every buffer are kept for the partial (per-parameter)
    update path.
    """

    __slots__ = (
        "params",
        "flat_data",
        "flat_grad",
        "flat_state",
        "flat_scratch",
        "data_views",
        "grad_views",
        "state_views",
        "scratch_views",
    )

    def __init__(
        self,
        params: Sequence[Tensor],
        num_state: int,
        num_scratch: int,
        carry_state: Optional[Dict[int, List[np.ndarray]]] = None,
    ) -> None:
        self.params = list(params)
        dtype = self.params[0].data.dtype
        total = int(sum(p.size for p in self.params))
        self.flat_data = np.empty(total, dtype=dtype)
        self.flat_grad = np.empty(total, dtype=dtype)
        self.flat_state = [np.zeros(total, dtype=dtype) for _ in range(num_state)]
        self.flat_scratch = [np.empty(total, dtype=dtype) for _ in range(num_scratch)]
        self.data_views: List[np.ndarray] = []
        self.grad_views: List[np.ndarray] = []
        self.state_views: List[List[np.ndarray]] = [[] for _ in range(num_state)]
        self.scratch_views: List[List[np.ndarray]] = [[] for _ in range(num_scratch)]
        offset = 0
        for p in self.params:
            end = offset + p.size
            shape = p.data.shape
            dview = self.flat_data[offset:end].reshape(shape)
            gview = self.flat_grad[offset:end].reshape(shape)
            np.copyto(dview, p.data)
            p.data = dview
            if p.grad is not None and p.grad.shape == shape and p.grad.dtype == dtype:
                np.copyto(gview, p.grad)
                p.grad = gview
            # Route future backward accumulations straight into the flat
            # grad buffer (Tensor._accumulate reuses a matching buffer).
            p._grad_buffer = gview
            self.data_views.append(dview)
            self.grad_views.append(gview)
            for k in range(num_state):
                sview = self.flat_state[k][offset:end].reshape(shape)
                carried = carry_state.get(id(p)) if carry_state else None
                # Dtype may legitimately differ after ``Module.astype``:
                # the moments follow the parameter into the new precision
                # (copyto casts) instead of being silently zeroed.
                if carried is not None and carried[k].shape == shape:
                    np.copyto(sview, carried[k], casting="unsafe")
                self.state_views[k].append(sview)
            for k in range(num_scratch):
                self.scratch_views[k].append(
                    self.flat_scratch[k][offset:end].reshape(shape)
                )
            offset = end

    def carried_state(self) -> Dict[int, List[np.ndarray]]:
        """Per-parameter state views, for carrying across a rebuild."""
        return {
            id(p): [views[i] for views in self.state_views]
            for i, p in enumerate(self.params)
        }

    def sync(self) -> str:
        """Re-establish the flat layout before a step.

        Returns ``"flat"`` when every parameter's data is (again) a view
        of ``flat_data`` and every parameter has its gradient in
        ``flat_grad`` — the whole group can be stepped with single flat
        ufunc passes.  ``"partial"`` when some parameter has no gradient
        (it must be skipped, so the step runs per parameter over the same
        views).  ``"rebuild"`` when a parameter changed shape or dtype
        (e.g. ``Module.astype``) and the group must be re-flattened.
        Parameters whose ``data`` was rebound to a fresh array of the
        same layout (``load_state_dict``, mask installation) are copied
        back into the flat buffer — values follow the parameter, the
        flat buffer is never authoritative across a rebind.
        """
        status = "flat"
        for p, dview, gview in zip(self.params, self.data_views, self.grad_views):
            if p.data is not dview:
                if p.data.shape != dview.shape or p.data.dtype != dview.dtype:
                    return "rebuild"
                np.copyto(dview, p.data)
                p.data = dview
            grad = p.grad
            if grad is None:
                status = "partial"
                continue
            if grad is not gview:
                if grad.shape != gview.shape or grad.dtype != gview.dtype:
                    status = "partial"
                    continue
                np.copyto(gview, grad)
                p.grad = gview
                p._grad_buffer = gview
        return status


class Optimizer:
    """Base class: holds parameters, exposes ``step`` and ``zero_grad``."""

    #: Zero-initialized flat state arrays per group (overridden: Adam 2,
    #: SGD-with-momentum 1) and scratch arrays per group.
    _NUM_STATE = 0
    _NUM_SCRATCH = 1

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        fused: bool = True,
        reuse_grad_buffers: bool = True,
    ) -> None:
        # Deduplicate by identity so shared modules are stepped once.
        seen = set()
        self.params: List[Tensor] = []
        for p in params:
            if id(p) not in seen:
                seen.add(id(p))
                self.params.append(p)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.fused = bool(fused)
        self.reuse_grad_buffers = bool(reuse_grad_buffers)
        self._flat_groups: Optional[List[_FlatGroup]] = None
        with _REGISTRY_LOCK:
            _LIVE_OPTIMIZERS.add(self)

    def zero_grad(self) -> None:
        keep = self.reuse_grad_buffers
        for p in self.params:
            p.zero_grad(keep_buffer=keep)

    def step(self) -> None:
        raise NotImplementedError

    # -- flat-group plumbing (fused path) ------------------------------
    def _build_groups(self) -> List[_FlatGroup]:
        carry: Dict[int, List[np.ndarray]] = {}
        if self._flat_groups is not None:
            for group in self._flat_groups:
                carry.update(group.carried_state())
        by_dtype: "Dict[np.dtype, List[Tensor]]" = {}
        for p in self.params:
            by_dtype.setdefault(p.data.dtype, []).append(p)
        return [
            _FlatGroup(group_params, self._NUM_STATE, self._NUM_SCRATCH, carry_state=carry)
            for group_params in by_dtype.values()
        ]

    def _on_params_rebound(self, ids: Set[int], dtype: np.dtype) -> None:
        """React to ``Module.astype`` rebinding some of our parameters."""
        if not any(id(p) in ids for p in self.params):
            return
        self._cast_reference_state(ids, dtype)
        if self._flat_groups is not None:
            # Rebuild around the new arrays; per-parameter state is
            # carried (and cast) by ``_FlatGroup``'s carry path.
            self._flat_groups = self._build_groups()

    def _cast_reference_state(self, ids: Set[int], dtype: np.dtype) -> None:
        """Cast the non-fused per-parameter state dicts (overridden)."""

    def _prepare_groups(self) -> List:
        """Lazily build, sync, and (at most once) rebuild the flat groups."""
        if self._flat_groups is None:
            self._flat_groups = self._build_groups()
        synced = []
        for group in self._flat_groups:
            status = group.sync()
            if status == "rebuild":
                self._flat_groups = self._build_groups()
                # Freshly built groups always sync cleanly.
                return [(g, g.sync()) for g in self._flat_groups]
            synced.append((group, status))
        return synced


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        fused: bool = True,
        reuse_grad_buffers: bool = True,
    ) -> None:
        super().__init__(params, lr, fused=fused, reuse_grad_buffers=reuse_grad_buffers)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._NUM_STATE = 1 if momentum else 0
        self._velocity: Dict[int, np.ndarray] = {}

    def _cast_reference_state(self, ids: Set[int], dtype: np.dtype) -> None:
        for key, buf in list(self._velocity.items()):
            if key in ids and buf.dtype != dtype:
                self._velocity[key] = buf.astype(dtype)

    def step(self) -> None:
        if not self.fused:
            self._step_reference()
            return
        for group, status in self._prepare_groups():
            if status == "flat":
                self._update(
                    group.flat_data,
                    group.flat_grad,
                    group.flat_state[0] if self.momentum else None,
                    group.flat_scratch[0],
                )
            else:
                for i, p in enumerate(group.params):
                    if p.grad is None:
                        continue
                    self._update(
                        group.data_views[i],
                        p.grad,
                        group.state_views[0][i] if self.momentum else None,
                        group.scratch_views[0][i],
                    )

    @hotpath
    def _update(self, data, grad, velocity, scratch) -> None:
        """One in-place SGD update; exact reference operation order.

        Flat (1-D) sweeps run cache-blocked (see ``_block_slices``):
        every operation is elementwise, so the blocked sweep is
        bit-for-bit the unblocked one.
        """
        if data.ndim == 1:
            for sl in _block_slices(data.size):
                self._update_block(
                    data[sl], grad[sl],
                    velocity[sl] if velocity is not None else None,
                    scratch[sl],
                )
            return
        self._update_block(data, grad, velocity, scratch)

    @hotpath
    def _update_block(self, data, grad, velocity, scratch) -> None:
        if self.weight_decay:
            np.multiply(data, self.weight_decay, out=scratch)
            scratch += grad
            grad = scratch
        if self.momentum:
            np.multiply(velocity, self.momentum, out=velocity)
            velocity += grad
            grad = velocity
        np.multiply(grad, self.lr, out=scratch)
        data -= scratch

    def _step_reference(self) -> None:
        """The original allocating update (kept for bit-for-bit parity)."""
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                buf = self._velocity.get(id(p))
                if buf is None:
                    buf = np.zeros_like(p.data)
                buf = self.momentum * buf + grad
                self._velocity[id(p)] = buf
                grad = buf
            p.data = p.data - self.lr * grad


@hotpath
def _adam_inplace_update(
    data, grad, m, v, s1, s2, lr, beta1, beta2, eps, weight_decay, bias1, bias2
) -> None:
    """The fused in-place Adam update; exact reference operation order.

    Only commutative operand swaps separate this from the reference
    formula, so float64 results are bit-for-bit identical.  Shared by
    :class:`Adam` (one pass per flat group / per parameter) and
    :class:`FleetOptimizer` (one pass per fleet buffer / member slice) —
    elementwise ufuncs make a pass over a concatenation equal, bit for
    bit, to passes over its pieces.

    The same elementwise property is what makes the sweep safely
    **cache-blocked**: flat (1-D) buffers larger than one block are
    updated chunk by chunk (all 14 passes per chunk, keeping the six
    arrays' block L2-resident) with results identical to one pass over
    the whole buffer.
    """
    if data.ndim == 1:
        for sl in _block_slices(data.size):
            _adam_block(
                data[sl], grad[sl], m[sl], v[sl], s1[sl], s2[sl],
                lr, beta1, beta2, eps, weight_decay, bias1, bias2,
            )
        return
    _adam_block(
        data, grad, m, v, s1, s2,
        lr, beta1, beta2, eps, weight_decay, bias1, bias2,
    )


@hotpath
def _adam_block(
    data, grad, m, v, s1, s2, lr, beta1, beta2, eps, weight_decay, bias1, bias2
) -> None:
    """One contiguous span of the fused Adam sweep (see above)."""
    if weight_decay:
        np.multiply(data, weight_decay, out=s1)
        s1 += grad
        grad = s1
    # m = b1 * m + (1 - b1) * grad
    np.multiply(m, beta1, out=m)
    np.multiply(grad, 1.0 - beta1, out=s2)
    m += s2
    # v = b2 * v + (1 - b2) * grad²
    np.multiply(grad, grad, out=s2)
    s2 *= 1.0 - beta2
    np.multiply(v, beta2, out=v)
    v += s2
    # p -= lr * (m / bias1) / (sqrt(v / bias2) + eps)
    np.divide(v, bias2, out=s2)
    np.sqrt(s2, out=s2)
    s2 += eps
    np.divide(m, bias1, out=s1)  # grad (possibly aliasing s1) is dead here
    s1 *= lr
    s1 /= s2
    data -= s1


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    _NUM_STATE = 2  # first and second moments
    _NUM_SCRATCH = 2

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        fused: bool = True,
        reuse_grad_buffers: bool = True,
    ) -> None:
        super().__init__(params, lr, fused=fused, reuse_grad_buffers=reuse_grad_buffers)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: int = 0

    def _cast_reference_state(self, ids: Set[int], dtype: np.dtype) -> None:
        for state in (self._m, self._v):
            for key, buf in list(state.items()):
                if key in ids and buf.dtype != dtype:
                    state[key] = buf.astype(dtype)

    def step(self) -> None:
        if not self.fused:
            self._step_reference()
            return
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for group, status in self._prepare_groups():
            if status == "flat":
                self._update(
                    group.flat_data,
                    group.flat_grad,
                    group.flat_state[0],
                    group.flat_state[1],
                    group.flat_scratch[0],
                    group.flat_scratch[1],
                    bias1,
                    bias2,
                )
            else:
                for i, p in enumerate(group.params):
                    if p.grad is None:
                        continue
                    self._update(
                        group.data_views[i],
                        p.grad,
                        group.state_views[0][i],
                        group.state_views[1][i],
                        group.scratch_views[0][i],
                        group.scratch_views[1][i],
                        bias1,
                        bias2,
                    )

    def _update(self, data, grad, m, v, s1, s2, bias1, bias2) -> None:
        """One in-place Adam update; exact reference operation order."""
        _adam_inplace_update(
            data, grad, m, v, s1, s2,
            self.lr, self.beta1, self.beta2, self.eps, self.weight_decay,
            bias1, bias2,
        )

    def _step_reference(self) -> None:
        """The original allocating update (kept for bit-for-bit parity)."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = b1 * m + (1 - b1) * grad
            v = b2 * v + (1 - b2) * (grad * grad)
            self._m[id(p)] = m
            self._v[id(p)] = v
            p.data = p.data - self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


class _FleetSegment:
    """One member's contiguous span inside a fleet flat group."""

    __slots__ = ("member", "param_lo", "param_hi", "lo", "hi")

    def __init__(self, member: int, param_lo: int, param_hi: int, lo: int, hi: int) -> None:
        self.member = member
        self.param_lo = param_lo
        self.param_hi = param_hi
        self.lo = lo
        self.hi = hi


class FleetOptimizer:
    """Fused Adam over a whole fleet of independent parameter sets.

    Where :class:`Adam` flattens *one* model's parameters, the fleet
    optimizer flattens the parameters of **many members** (e.g. every
    device header in an edge cluster) into one contiguous buffer per
    dtype, laid out member-major so each member owns a contiguous slice.
    A training round in which every member steps is then a *single*
    fused pass over the whole fleet — ~14 ``out=``-ufunc calls total,
    regardless of how many members (and how many small tensors each)
    participate — instead of one fused step per member.

    Semantics are exactly "one fused :class:`Adam` per member":

    * independent step counters per member (bias correction follows each
      member's own step count, so members may join/leave rounds freely —
      heterogeneous dataset sizes, empty devices);
    * independent learning rates per member (``lr`` may be a sequence);
    * the per-element update is :func:`_adam_inplace_update`, the same
      operation sequence :class:`Adam` runs — and elementwise ufuncs
      over a concatenation equal the per-slice passes bit for bit — so
      float64 fleet training traces are **bit-for-bit identical** to the
      serial per-member path (asserted in ``tests/train/test_fleet.py``).

    Rounds where only some members step (or some parameters lack
    gradients) fall back to per-member slice passes / per-parameter
    updates over the same flat state, mirroring ``Adam``'s partial path.
    """

    def __init__(
        self,
        member_params: Sequence[Sequence[Tensor]],
        lr=1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        reuse_grad_buffers: bool = True,
    ) -> None:
        self.members: List[List[Tensor]] = []
        seen_ids: Set[int] = set()
        for params in member_params:
            member: List[Tensor] = []
            local: Set[int] = set()
            for p in params:
                if id(p) in local:
                    continue  # dedup within a member, like Optimizer
                if id(p) in seen_ids:
                    raise ValueError(
                        "FleetOptimizer members must not share parameters: "
                        "a shared tensor cannot occupy two flat slices "
                        "(and per-member optimizers would double-step it)"
                    )
                local.add(id(p))
                member.append(p)
            seen_ids.update(local)
            self.members.append(member)
        if not self.members or not any(self.members):
            raise ValueError("FleetOptimizer received no parameters")
        num = len(self.members)
        lrs = [float(lr)] * num if np.isscalar(lr) else [float(v) for v in lr]
        if len(lrs) != num:
            raise ValueError(f"{len(lrs)} learning rates for {num} members")
        if any(v <= 0 for v in lrs):
            raise ValueError("learning rates must be positive")
        self.lrs = lrs
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.reuse_grad_buffers = bool(reuse_grad_buffers)
        self._t: List[int] = [0] * num
        self._groups: Optional[List[_FlatGroup]] = None
        self._segments: List[List[_FleetSegment]] = []
        with _REGISTRY_LOCK:
            _LIVE_OPTIMIZERS.add(self)

    # -- plumbing -------------------------------------------------------
    @property
    def params(self) -> List[Tensor]:
        return [p for member in self.members for p in member]

    def member_parameters(self, member: int) -> List[Tensor]:
        return list(self.members[member])

    def step_count(self, member: int) -> int:
        return self._t[member]

    def zero_grad(self, active: Optional[Sequence[int]] = None) -> None:
        members = self.members if active is None else [self.members[m] for m in active]
        keep = self.reuse_grad_buffers
        for member in members:
            for p in member:
                p.zero_grad(keep_buffer=keep)

    def _on_params_rebound(self, ids: Set[int], dtype: np.dtype) -> None:
        if self._groups is not None and any(id(p) in ids for p in self.params):
            self._build_groups()

    def _build_groups(self) -> None:
        carry: Dict[int, List[np.ndarray]] = {}
        if self._groups is not None:
            for group in self._groups:
                carry.update(group.carried_state())
        by_dtype: "Dict[np.dtype, List[Tensor]]" = {}
        spans: "Dict[np.dtype, List[Tuple[int, int, int]]]" = {}
        for m, member in enumerate(self.members):
            for p in member:
                bucket = by_dtype.setdefault(p.data.dtype, [])
                spans.setdefault(p.data.dtype, [])
                span = spans[p.data.dtype]
                if span and span[-1][0] == m:
                    span[-1] = (m, span[-1][1], len(bucket) + 1)
                else:
                    span.append((m, len(bucket), len(bucket) + 1))
                bucket.append(p)
        self._groups = []
        self._segments = []
        for dt, group_params in by_dtype.items():
            group = _FlatGroup(group_params, num_state=2, num_scratch=2, carry_state=carry)
            offsets = np.concatenate(
                ([0], np.cumsum([p.size for p in group_params], dtype=np.int64))
            )
            segs = [
                _FleetSegment(m, lo, hi, int(offsets[lo]), int(offsets[hi]))
                for (m, lo, hi) in spans[dt]
            ]
            self._groups.append(group)
            self._segments.append(segs)

    def _sync_member(self, group: _FlatGroup, seg: _FleetSegment) -> str:
        """Per-member :meth:`_FlatGroup.sync`, scoped to the segment."""
        status = "flat"
        for i in range(seg.param_lo, seg.param_hi):
            p = group.params[i]
            dview = group.data_views[i]
            gview = group.grad_views[i]
            if p.data is not dview:
                if p.data.shape != dview.shape or p.data.dtype != dview.dtype:
                    return "rebuild"
                np.copyto(dview, p.data)
                p.data = dview
            grad = p.grad
            if grad is None:
                status = "partial"
                continue
            if grad is not gview:
                if grad.shape != gview.shape or grad.dtype != gview.dtype:
                    status = "partial"
                    continue
                np.copyto(gview, grad)
                p.grad = gview
                p._grad_buffer = gview
        return status

    # -- the step -------------------------------------------------------
    def step(self, active: Optional[Sequence[int]] = None) -> None:
        """Advance every member in ``active`` (default: all) by one step."""
        members = range(len(self.members)) if active is None else list(active)
        active_set = set(members)
        for m in members:
            self._t[m] += 1
        if self._groups is None:
            self._build_groups()
        for attempt in range(2):
            statuses: List[List[str]] = []
            rebuild = False
            for group, segs in zip(self._groups, self._segments):
                group_status = [
                    self._sync_member(group, seg) if seg.member in active_set else "skip"
                    for seg in segs
                ]
                if "rebuild" in group_status:
                    rebuild = True
                    break
                statuses.append(group_status)
            if not rebuild:
                break
            self._build_groups()
        else:  # pragma: no cover - second rebuild cannot miss
            raise RuntimeError("fleet flat groups failed to stabilize")

        for group, segs, group_status in zip(self._groups, self._segments, statuses):
            self._step_group(group, segs, group_status, active_set)

    def _step_group(
        self,
        group: _FlatGroup,
        segs: List[_FleetSegment],
        status: List[str],
        active_set: Set[int],
    ) -> None:
        active_segs = [s for s in segs if s.member in active_set]
        if not active_segs:
            return
        ts = {self._t[s.member] for s in active_segs}
        lrs = {self.lrs[s.member] for s in active_segs}
        if (
            len(active_segs) == len(segs)
            and all(st == "flat" for st in status if st != "skip")
            and len(ts) == 1
            and len(lrs) == 1
        ):
            # Whole-fleet fast path: one fused pass over the buffers.
            t = ts.pop()
            _adam_inplace_update(
                group.flat_data,
                group.flat_grad,
                group.flat_state[0],
                group.flat_state[1],
                group.flat_scratch[0],
                group.flat_scratch[1],
                lrs.pop(),
                self.beta1,
                self.beta2,
                self.eps,
                self.weight_decay,
                1.0 - self.beta1**t,
                1.0 - self.beta2**t,
            )
            return
        for seg, st in zip(segs, status):
            if st == "skip":
                continue
            t = self._t[seg.member]
            lr = self.lrs[seg.member]
            bias1 = 1.0 - self.beta1**t
            bias2 = 1.0 - self.beta2**t
            if st == "flat":
                _adam_inplace_update(
                    group.flat_data[seg.lo : seg.hi],
                    group.flat_grad[seg.lo : seg.hi],
                    group.flat_state[0][seg.lo : seg.hi],
                    group.flat_state[1][seg.lo : seg.hi],
                    group.flat_scratch[0][seg.lo : seg.hi],
                    group.flat_scratch[1][seg.lo : seg.hi],
                    lr, self.beta1, self.beta2, self.eps, self.weight_decay,
                    bias1, bias2,
                )
                continue
            for i in range(seg.param_lo, seg.param_hi):
                p = group.params[i]
                if p.grad is None:
                    continue
                _adam_inplace_update(
                    group.data_views[i],
                    p.grad,
                    group.state_views[0][i],
                    group.state_views[1][i],
                    group.scratch_views[0][i],
                    group.scratch_views[1][i],
                    lr, self.beta1, self.beta2, self.eps, self.weight_decay,
                    bias1, bias2,
                )


def clip_grad_norm(
    params: Iterable[Tensor], max_norm: float, fused: bool = True
) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging).  The fused path
    computes each parameter's squared norm with a single BLAS
    ``np.dot`` over a raveled view (no ``grad * grad`` temporary) and
    scales in place with ``*=``; ``fused=False`` restores the original
    allocating implementation.
    """
    params = [p for p in params if p.grad is not None]
    if not fused:
        total = float(np.sqrt(sum(float((p.grad * p.grad).sum()) for p in params)))
        if total > max_norm and total > 0:
            scale = max_norm / total
            for p in params:
                p.grad = p.grad * scale
        return total
    total_sq = 0.0
    for p in params:
        flat = p.grad.ravel()
        total_sq += float(np.dot(flat, flat))
    total = float(np.sqrt(total_sq))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
