"""Training, evaluation, and batched serving loops."""

from repro.train.evaluate import evaluate_header, evaluate_model
from repro.train.fleet import (
    fleet_importance_rounds,
    fleet_supported,
    train_headers_fleet,
)
from repro.train.serving import (
    backbones_equivalent,
    batched_evaluate_headers,
    batched_extract_features,
    batched_forward_features_multi,
    precompute_backbone_features,
)
from repro.train.trainer import TrainConfig, TrainReport, train_header, train_model

__all__ = [
    "TrainConfig",
    "TrainReport",
    "backbones_equivalent",
    "batched_evaluate_headers",
    "batched_extract_features",
    "batched_forward_features_multi",
    "precompute_backbone_features",
    "evaluate_header",
    "evaluate_model",
    "fleet_importance_rounds",
    "fleet_supported",
    "train_header",
    "train_headers_fleet",
    "train_model",
]
