"""Tier-1 smoke run of ``benchmarks/bench_process_pool.py``.

The perf benches only run when a perf PR invokes them; this test drives
the process-pool bench end to end in its ``--smoke`` mode (tiny shapes,
no floor assertions, ``BENCH_perf.json`` untouched) so the script
itself cannot rot between perf PRs — the fork-pool fan-out, the
shared-memory parameter round-trip, the serial/process bit-for-bit
parity asserts and the cache-blocked fused-step A/B all execute on
every test run.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestBenchProcessPoolSmoke:
    def test_smoke_mode_runs_clean(self):
        trajectory = REPO_ROOT / "BENCH_perf.json"
        before = trajectory.read_bytes() if trajectory.exists() else None
        full_results = REPO_ROOT / "bench_results" / "bench_process_pool.json"
        full_before = full_results.read_bytes() if full_results.exists() else None
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "benchmarks" / "bench_process_pool.py"),
                "--smoke",
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, result.stderr
        assert "bench_process_pool_smoke" in result.stdout
        assert "process_pool_importance_rounds" in result.stdout

        # Smoke mode must never touch the committed trajectory or the
        # full run's diagnostic records.
        after = trajectory.read_bytes() if trajectory.exists() else None
        assert before == after
        full_after = full_results.read_bytes() if full_results.exists() else None
        assert full_before == full_after

        # The smoke payload is the full machine-readable schema.
        payload = json.loads(
            (REPO_ROOT / "bench_results" / "bench_process_pool_smoke.json").read_text()
        )
        assert payload["schema"] == "perf/v1"
        labels = {r["label"] for r in payload["results"]}
        assert {"process_pool_importance_rounds", "fused_step_cache_blocked"} <= labels
        assert all(r.get("floor") is None for r in payload["results"])
