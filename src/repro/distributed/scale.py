"""Fleet-scale harness: 10⁴–10⁵+ simulated devices on one machine.

The full :class:`~repro.distributed.system.ACMESystem` trains real
headers on real gradients, which caps a laptop run at tens of devices.
This module keeps the *protocol* at full fidelity — every model
distribution, importance upload, personalized-set downlink and ACK is a
checksummed :class:`~repro.distributed.messages.Message` through the
:class:`~repro.distributed.network.Network` fabric, with seeded churn
and drops from the PR-6 :class:`~repro.distributed.faults.FaultPolicy` —
while replacing the per-device *learning* with seeded synthetic
importance sets, so the harness measures what actually limits scale:

* **memory** — devices run in lazy mode behind one
  :class:`~repro.distributed.state_store.DeviceStateLRU` per cluster,
  so only ``lru_capacity`` headers are live at any instant and the rest
  sit as compressed cold blobs (``always_live=True`` flips to the
  eager path the LRU replaces, for the memory comparison);
* **aggregation** — each edge folds uploads through a
  :class:`~repro.core.aggregation.StreamingAggregator`: one uniform
  weight row and one running-sum accumulator per cluster, never an
  ``(n, R)`` stack;
* **stragglers** — a per-cluster deadline at the
  ``deadline_quantile`` of the Eq. (2) latency distribution excludes
  slow devices from rounds deterministically;
* **serving** — eval requests queue into a
  :class:`~repro.train.serving.ServingFront` and ride micro-batched
  backbone forwards.

Cluster populations are heavy-tailed (Zipf over cluster rank, largest-
remainder apportionment) — fleet skew, not uniform shards.  Everything
is seeded: the same :class:`ScaleConfig` replays the identical campaign.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.aggregation import StreamingAggregator
from repro.data.synthetic import make_cifar100_like
from repro.distributed.device import DeviceNode
from repro.distributed.faults import DeliveryError, FaultConfig, FaultPolicy
from repro.distributed.messages import Message, MessageKind, payload_nbytes
from repro.distributed.network import Network
from repro.distributed.state_store import DeviceStateLRU
from repro.hw.energy import latency
from repro.hw.profiles import DeviceProfile
from repro.models.blocks import BlockSpec, HeaderSpec
from repro.models.header_dag import DAGHeader
from repro.models.vit import VisionTransformer, ViTConfig
from repro.train.serving import ServingFront


@dataclass
class ScaleConfig:
    """One synthetic fleet campaign, fully determined by its fields."""

    num_devices: int = 10_000
    num_clusters: int = 8
    #: Zipf exponent for cluster populations (larger = heavier head).
    zipf_exponent: float = 1.2
    #: Length of each synthetic importance set.
    set_size: int = 64
    rounds: int = 3
    #: Live headers per cluster in lazy mode (ignored when always_live).
    lru_capacity: int = 64
    #: Eager per-device state, as before the LRU existed.  Only sane at
    #: small ``num_devices``; exists for the memory comparison.
    always_live: bool = False
    #: Serving requests sampled per cluster per round.
    eval_requests: int = 8
    micro_batch: int = 16
    #: Deadline at this quantile of the cluster's latency distribution;
    #: 1.0 disables (every device is on time).
    deadline_quantile: float = 1.0
    churn: float = 0.0
    drop: float = 0.0
    retries: int = 2
    #: Network ledger mode: "summary" bounds log/stats memory at scale.
    ledger: str = "summary"
    samples_per_class: int = 6
    seed: int = 0


def heavy_tailed_sizes(
    num_devices: int, num_clusters: int, exponent: float = 1.2
) -> List[int]:
    """Zipf cluster populations via largest-remainder apportionment.

    Cluster ``k`` (1-indexed) gets a share proportional to
    ``k**-exponent``; floors are topped up by descending fractional
    remainder so the sizes sum exactly to ``num_devices`` and every
    cluster keeps at least one device.
    """
    if num_clusters < 1:
        raise ValueError(f"need at least one cluster, got {num_clusters}")
    if num_devices < num_clusters:
        raise ValueError(
            f"{num_devices} devices cannot populate {num_clusters} clusters"
        )
    ranks = np.arange(1, num_clusters + 1, dtype=np.float64)
    weights = ranks**-float(exponent)
    shares = weights / weights.sum() * num_devices
    sizes = np.maximum(np.floor(shares).astype(int), 1)
    order = np.argsort(-(shares - np.floor(shares)))
    i = 0
    while sizes.sum() < num_devices:
        sizes[order[i % num_clusters]] += 1
        i += 1
    while sizes.sum() > num_devices:
        big = int(np.argmax(sizes))
        sizes[big] -= 1
    return [int(s) for s in sizes]


class ScaleDevice(DeviceNode):
    """Protocol-faithful device with synthetic local computation.

    Inherits the full lazy-state machinery (hydrate/evict/LRU) and wire
    behavior of :class:`DeviceNode`; only the *learning* is replaced:

    * :meth:`importance_round` touches the LRU (hydration is the real,
      measured per-device work at scale) and uploads a seeded random
      set — a pure function of ``(seed, device_id, round_index)``;
    * :meth:`_receive_personalized_set` records the downlink instead of
      pruning, because synthetic sets are not aligned to header
      parameters.  The wire exchange (payload + ACK) is unchanged.
    """

    def __init__(self, *args, set_size: int = 64, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.set_size = int(set_size)
        self.personalized_rounds = 0
        self.last_personalized: Optional[np.ndarray] = None

    def importance_round(
        self, include_feature_sample: bool = False, round_index: int = 0
    ) -> Message:
        self._ensure_live()
        rng = np.random.default_rng(
            [max(self.seed, 0), self.profile.device_id, round_index]
        )
        q = rng.standard_normal(self.set_size).astype(np.float32)
        return self.build_importance_message(q, include_feature_sample)

    def _receive_personalized_set(self, message: Message) -> Message:
        assert self.has_model, "model must be distributed first"
        self.last_personalized = message.payload["importance"]
        self.personalized_rounds += 1
        return Message(self.name, message.sender, MessageKind.ACK)


class ScaleCluster:
    """One edge plus its device population, driven round by round."""

    def __init__(
        self,
        index: int,
        size: int,
        first_device_id: int,
        network: Network,
        config: ScaleConfig,
    ) -> None:
        self.index = index
        self.config = config
        self.network = network
        self.name = f"edge{index}"
        network.register(self.name, self._handle)
        self.store = (
            None if config.always_live else DeviceStateLRU(config.lru_capacity)
        )

        # One tiny model template and ONE dataset object per cluster;
        # devices alias both, so fleet memory is dominated by per-device
        # header state — exactly what the LRU is there to bound.
        vit = ViTConfig(
            image_size=8,
            patch_size=4,
            embed_dim=16,
            depth=2,
            num_heads=2,
            mlp_ratio=2.0,
            num_classes=4,
        )
        self.vit_config = vit
        generator = make_cifar100_like(
            num_classes=vit.num_classes, image_size=vit.image_size,
            seed=config.seed + index,
        )
        self.dataset = generator.generate(
            config.samples_per_class, seed=config.seed + 1, name=self.name
        )
        backbone = VisionTransformer(vit, seed=0)
        head_orders = [np.arange(vit.num_heads) for _ in range(vit.depth)]
        neuron_orders = [np.arange(vit.mlp_hidden) for _ in range(vit.depth)]
        backbone.set_importance_orders(
            head_orders=head_orders, neuron_orders=neuron_orders
        )
        backbone.scale(1.0, vit.depth)
        self.backbone = backbone
        spec = HeaderSpec(blocks=(BlockSpec(0, 1, 1, 3),))
        template_header = DAGHeader(
            vit.embed_dim,
            vit.num_patches,
            vit.num_classes,
            spec,
            rng=np.random.default_rng(config.seed),
        )
        self.payload = {
            "vit_config": vit,
            "backbone_state": backbone.state_dict(),
            "head_orders": head_orders,
            "neuron_orders": neuron_orders,
            "width": 1.0,
            "depth": vit.depth,
            "header_spec": spec,
            "header_state": template_header.state_dict(),
            "keep_fraction": 0.7,
        }
        #: Computed once — 10⁵ per-message payload walks would dominate
        #: distribution time without changing a single recorded byte.
        self.payload_nbytes = payload_nbytes(self.payload)

        profile_rng = np.random.default_rng([max(config.seed, 0), 13, index])
        self.devices: List[ScaleDevice] = []
        for slot in range(size):
            device_id = first_device_id + slot
            profile = DeviceProfile.synthesize(
                device_id,
                vcpus=3 + (index + slot) % 5,
                storage_limit=300_000,
                rng=profile_rng,
                num_patches=vit.num_patches,
            )
            self.devices.append(
                ScaleDevice(
                    profile,
                    self.dataset,
                    network,
                    seed=config.seed + device_id,
                    state_store=self.store,
                    set_size=config.set_size,
                )
            )
        self._index = {
            d.profile.device_id: i for i, d in enumerate(self.devices)
        }
        self._lat = {
            d.profile.device_id: latency(d.profile, 1.0, vit.depth)
            for d in self.devices
        }
        self.deadline: Optional[float] = None
        if config.deadline_quantile < 1.0:
            self.deadline = float(
                np.quantile(
                    np.array(list(self._lat.values())), config.deadline_quantile
                )
            )
        self.front = ServingFront(backbone, micro_batch=config.micro_batch)
        self._agg: Optional[StreamingAggregator] = None
        self.participation: List[float] = []
        self.stragglers = 0
        self.carried = 0
        self.failed_deliveries = 0

    # ------------------------------------------------------------------
    def _handle(self, message: Message) -> Optional[Message]:
        if message.kind is MessageKind.IMPORTANCE_SET:
            assert self._agg is not None, "upload outside an open round"
            col = self._index[int(message.payload["device_id"])]
            self._agg.consume(col, message.payload["importance"])
            return None
        raise ValueError(f"{self.name} cannot handle {message.kind}")

    def distribute(self) -> int:
        """Phase-2 model distribution; returns devices provisioned."""
        provisioned = 0
        for device in self.devices:
            message = Message(
                self.name,
                device.name,
                MessageKind.MODEL_DISTRIBUTION,
                self.payload,
                nbytes=self.payload_nbytes,
            )
            try:
                self.network.send_reliable(message)
                provisioned += 1
            except DeliveryError:
                self.failed_deliveries += 1
        return provisioned

    def run_round(self, round_index: int, policy: Optional[FaultPolicy]) -> int:
        """One aggregation round; returns device contributions folded in."""
        if policy is not None:
            for device in self.devices:
                if policy.device_active(device.profile.device_id, round_index):
                    device.reactivate()
                else:
                    device.deactivate()
        participants = [
            d for d in self.devices if d.active and d.has_model
        ]
        if self.deadline is not None:
            on_time = [
                d
                for d in participants
                if self._lat[d.profile.device_id] <= self.deadline
            ]
        else:
            on_time = participants
        self.stragglers += len(participants) - len(on_time)
        n = len(self.devices)
        if not on_time:
            self.participation.append(0.0)
            return 0

        # O(1)-memory aggregation: one uniform weight row over the full
        # membership; the cols subset masks + renormalizes it to the
        # devices that made the deadline.  Sets are folded into the
        # running sum straight from the delivery handler and never
        # stacked.
        cols = [self._index[d.profile.device_id] for d in on_time]
        self._agg = StreamingAggregator(
            np.full((1, n), 1.0 / n), rows=None, cols=cols
        )
        for device in on_time:
            message = device.importance_round(round_index=round_index)
            message.receiver = self.name
            try:
                self.network.send_reliable(message)
            except DeliveryError:
                # Retry budget exhausted: model the edge's degraded-mode
                # re-poll (the device's cached upload eventually lands)
                # by folding the set in out of band.  The dropped
                # attempts stay on the fault ledger.
                self._agg.consume(
                    self._index[device.profile.device_id],
                    message.payload["importance"],
                )
                self.carried += 1
        personalized = self._agg.finalize()[0]
        self._agg = None

        down_payload = {"importance": personalized.astype(np.float32)}
        down_nbytes = payload_nbytes(down_payload)
        for device in on_time:
            message = Message(
                self.name,
                device.name,
                MessageKind.PERSONALIZED_SET,
                down_payload,
                nbytes=down_nbytes,
            )
            try:
                self.network.send_reliable(message)
            except DeliveryError:
                self.failed_deliveries += 1
        self.participation.append(len(on_time) / n)
        return len(on_time)

    def serve(self, round_index: int) -> int:
        """Queue + flush one round's eval requests; returns served count."""
        count = min(self.config.eval_requests, len(self.devices))
        if count == 0:
            return 0
        rng = np.random.default_rng(
            [max(self.config.seed, 0), 97, self.index, round_index]
        )
        picks = sorted(
            int(p) for p in rng.choice(len(self.devices), count, replace=False)
        )
        tickets = []
        for i in picks:
            device = self.devices[i]
            if not (device.active and device.has_model):
                continue
            device._ensure_live()
            # The front holds the header reference, so a later touch in
            # this loop evicting the device cannot invalidate the queue.
            tickets.append(
                self.front.submit(device.header, device.eval_dataset())
            )
        self.front.flush()
        for ticket in tickets:
            self.front.result(ticket)
        return len(tickets)


@dataclass
class ScaleReport:
    """Everything a campaign measured, JSON-ready via :meth:`to_dict`."""

    num_devices: int
    cluster_sizes: List[int]
    rounds: int
    contributions: int
    round_seconds: float
    devices_per_round_second: float
    eval_requests_served: int
    serving_seconds: float
    requests_per_second: float
    participation: float
    stragglers: int
    carried: int
    failed_deliveries: int
    hydrations: int
    evictions: int
    live_headers: int
    peak_memory_mb: Optional[float]
    total_megabytes: float
    kind_counts: Dict[str, int] = field(default_factory=dict)
    fault_counts: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)


def run_scale_campaign(
    config: Optional[ScaleConfig] = None, measure_memory: bool = False
) -> ScaleReport:
    """Build the fleet, run every round and serving wave, report.

    With ``measure_memory=True`` the whole campaign — fleet construction
    included — runs under :mod:`tracemalloc` and the report carries the
    peak traced size in MiB (roughly 2× slower; leave it off when
    measuring throughput).
    """
    cfg = config or ScaleConfig()
    if measure_memory:
        tracemalloc.start()
    try:
        network = Network(ledger=cfg.ledger)
        policy: Optional[FaultPolicy] = None
        if cfg.drop > 0.0 or cfg.churn > 0.0:
            policy = FaultPolicy(
                FaultConfig(
                    seed=cfg.seed,
                    drop=cfg.drop,
                    churn=cfg.churn,
                    retries=cfg.retries,
                )
            )
            network.install_fault_policy(policy)

        sizes = heavy_tailed_sizes(
            cfg.num_devices, cfg.num_clusters, cfg.zipf_exponent
        )
        clusters: List[ScaleCluster] = []
        first_device_id = 0
        for index, size in enumerate(sizes):
            clusters.append(
                ScaleCluster(index, size, first_device_id, network, cfg)
            )
            first_device_id += size
        for cluster in clusters:
            cluster.distribute()

        start = time.perf_counter()
        contributions = 0
        for round_index in range(cfg.rounds):
            for cluster in clusters:
                contributions += cluster.run_round(round_index, policy)
        round_seconds = time.perf_counter() - start

        start = time.perf_counter()
        served = 0
        for round_index in range(cfg.rounds):
            for cluster in clusters:
                served += cluster.serve(round_index)
        serving_seconds = time.perf_counter() - start

        peak_mb: Optional[float] = None
        if measure_memory:
            _current, peak = tracemalloc.get_traced_memory()
            peak_mb = peak / 2**20
    finally:
        if measure_memory:
            tracemalloc.stop()

    rates = [p for c in clusters for p in c.participation]
    stores = [c.store for c in clusters if c.store is not None]
    return ScaleReport(
        num_devices=cfg.num_devices,
        cluster_sizes=sizes,
        rounds=cfg.rounds,
        contributions=contributions,
        round_seconds=round_seconds,
        devices_per_round_second=contributions / max(round_seconds, 1e-9),
        eval_requests_served=served,
        serving_seconds=serving_seconds,
        requests_per_second=served / max(serving_seconds, 1e-9),
        participation=float(np.mean(rates)) if rates else 0.0,
        stragglers=sum(c.stragglers for c in clusters),
        carried=sum(c.carried for c in clusters),
        failed_deliveries=sum(c.failed_deliveries for c in clusters),
        hydrations=sum(s.hydrations for s in stores),
        evictions=sum(s.evictions for s in stores),
        live_headers=sum(
            1 for c in clusters for d in c.devices if d.header is not None
        ),
        peak_memory_mb=peak_mb,
        total_megabytes=network.stats.total_megabytes(),
        kind_counts=dict(network.kind_counts),
        fault_counts=network.fault_counts(),
    )
