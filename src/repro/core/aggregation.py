"""Personalized architecture aggregation (Eqs. 19-21, Algorithm 2).

The edge-device single loop of Phase 2-2: every round, each device
computes its importance set ``Q_n`` on local data; the edge server forms
each device's personalized set as the similarity-weighted convex
combination

.. math:: Q'_n = \\sum_{i∈N_s} ŵ_{n,i} Q_i

and devices prune their headers by ``Q'_n``.  Four aggregation variants
reproduce the Fig. 11 comparison:

* ``alone``  — no collaboration: ``Q'_n = Q_n``;
* ``average``— uniform weights (FedAvg-style);
* ``js``     — weights from Jensen-Shannon similarity;
* ``ours``   — weights from Wasserstein similarity (ACME).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.header_importance import (
    ImportanceConfig,
    compute_importance_set,
    prune_by_importance,
)
from repro.core.similarity import build_similarity_matrix
from repro.data.dataset import ArrayDataset
from repro.models.header_dag import DAGHeader
from repro.models.vit import VisionTransformer

AGGREGATION_METHODS = ("alone", "average", "js", "ours")


def aggregation_weights(
    method: str,
    num_devices: int,
    backbone: Optional[VisionTransformer] = None,
    datasets: Optional[Sequence[ArrayDataset]] = None,
    seed: int = 0,
    max_workers: Union[int, str, None] = None,
) -> np.ndarray:
    """Row-stochastic weight matrix Ŵ for one aggregation method.

    ``max_workers`` fans the per-device feature extraction of the
    similarity-based methods out across threads (same contract as
    :func:`repro.core.similarity.build_similarity_matrix`: any worker
    count yields the same matrix).
    """
    if method not in AGGREGATION_METHODS:
        raise ValueError(f"unknown method {method!r}; options: {AGGREGATION_METHODS}")
    if method == "alone":
        return np.eye(num_devices)
    if method == "average":
        return np.full((num_devices, num_devices), 1.0 / num_devices)
    if backbone is None or datasets is None:
        raise ValueError(f"method {method!r} needs a backbone and device datasets")
    metric = "wasserstein" if method == "ours" else "js"
    return build_similarity_matrix(
        backbone, list(datasets), metric=metric, seed=seed, max_workers=max_workers
    )


def aggregate_importance_sets(
    importance_sets: Sequence[np.ndarray], weights: np.ndarray
) -> List[np.ndarray]:
    """Eq. (21): personalized sets ``Q'_n = Σ_i ŵ_{n,i} Q_i``."""
    sets = [np.asarray(q, dtype=np.float64) for q in importance_sets]
    n = len(sets)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (n, n):
        raise ValueError(f"weights shape {weights.shape} != ({n}, {n})")
    if not np.allclose(weights.sum(axis=1), 1.0, atol=1e-6):
        raise ValueError("weight rows must sum to 1 (convex combination)")
    length = sets[0].size
    if any(q.size != length for q in sets):
        raise ValueError("importance sets must share a length to aggregate")
    stacked = np.stack(sets)  # (n, R)
    return [weights[i] @ stacked for i in range(n)]


def aggregate_importance_subset(
    importance_sets: Sequence[np.ndarray],
    weights: np.ndarray,
    rows: Sequence[int],
    cols: Sequence[int],
) -> List[np.ndarray]:
    """Eq. (21) restricted to the cluster members present this round.

    Degraded-mode aggregation: ``cols`` are the full-cluster indices
    whose sets are available (``importance_sets``, in the same order)
    and ``rows`` the indices to produce personalized sets for.  Each
    row of the full ``(n, n)`` weight matrix is masked to the present
    columns and renormalized, so every ``Q'_n`` stays a convex
    combination — of whoever showed up.  A row with no weight on any
    present member falls back to uniform weights over them.

    With every member present this reduces to
    :func:`aggregate_importance_sets` exactly (the mask keeps all
    columns and the renormalization divides by 1); callers on the
    fault-free path still use the full function so its validation —
    and its bit-for-bit arithmetic — is untouched.
    """
    if len(cols) != len(importance_sets):
        raise ValueError(
            f"{len(importance_sets)} importance sets for {len(cols)} present members"
        )
    if not importance_sets:
        raise ValueError("cannot aggregate an empty round: no member present")
    sets = [np.asarray(q, dtype=np.float64) for q in importance_sets]
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.shape[0]
    if weights.shape != (n, n):
        raise ValueError(f"weights must be square, got {weights.shape}")
    if not np.allclose(weights.sum(axis=1), 1.0, atol=1e-6):
        raise ValueError("weight rows must sum to 1 (convex combination)")
    col_index = np.asarray(cols, dtype=int)
    stacked = np.stack(sets)  # (len(cols), R)
    out = []
    for i in rows:
        w = weights[i, col_index]
        total = w.sum()
        if total <= 0.0:
            w = np.full(len(sets), 1.0 / len(sets))
        else:
            w = w / total
        out.append(w @ stacked)
    return out


@dataclass
class AggregationRoundRecord:
    """Telemetry of one Algorithm 2 round."""

    round_index: int
    uploaded_bytes: int
    downloaded_bytes: int
    active_fractions: List[float] = field(default_factory=list)


@dataclass
class AggregationResult:
    """Output of the Algorithm 2 loop."""

    headers: List[DAGHeader]
    weights: np.ndarray
    rounds: List[AggregationRoundRecord] = field(default_factory=list)

    @property
    def total_upload_bytes(self) -> int:
        return sum(r.uploaded_bytes for r in self.rounds)


def personalized_architecture_aggregation(
    backbone: VisionTransformer,
    headers: Sequence[DAGHeader],
    datasets: Sequence[ArrayDataset],
    num_rounds: int = 2,
    keep_fraction: float = 0.7,
    method: str = "ours",
    importance_config: Optional[ImportanceConfig] = None,
    seed: int = 0,
    max_workers: Union[int, str, None] = None,
) -> AggregationResult:
    """Algorithm 2: generate fine headers for one device cluster.

    Parameters
    ----------
    backbone:
        The cluster's customized backbone (used frozen on devices).
    headers:
        One coarse header per device (modified in place).
    datasets:
        Each device's local private dataset.
    num_rounds:
        ``T`` — single-loop iterations between edge and devices.
    keep_fraction:
        Fraction of prunable header parameters each round keeps.  Fractions
        compose across rounds through re-masking from the pristine copy, so
        the mask can both shrink and recover as importance estimates evolve.
    method:
        One of :data:`AGGREGATION_METHODS`.
    max_workers:
        Worker threads for the per-device fan-outs (feature extraction
        for the similarity matrix, and each round's importance sets).
        Per-device work is state-disjoint and results stay in device
        order, so any worker count reproduces the serial result.
    """
    from repro.distributed.executor import parallel_map  # lazy: avoids import cycle

    if len(headers) != len(datasets):
        raise ValueError("need exactly one dataset per header")
    if num_rounds < 1:
        raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")

    n = len(headers)
    # Algorithm 2 line 2: the similarity matrix is computed once, up front.
    weights = aggregation_weights(
        method, n, backbone, datasets, seed=seed, max_workers=max_workers
    )
    result = AggregationResult(headers=list(headers), weights=weights)

    for t in range(num_rounds):
        config = importance_config or ImportanceConfig(seed=seed + t)
        importance_sets = parallel_map(
            lambda pair: compute_importance_set(
                backbone, pair[0], pair[1], config=config
            ),
            list(zip(headers, datasets)),
            max_workers=max_workers,
            serial_if_stochastic=(backbone,),
        )
        upload = sum(q.nbytes for q in importance_sets)  # devices upload Q_n (line 6)

        personalized = aggregate_importance_sets(importance_sets, weights)
        download = sum(q.nbytes for q in personalized)  # edge sends Q'_n (line 9)

        fractions = []
        for header, q_prime in zip(headers, personalized):
            prune_by_importance(header, q_prime, keep_fraction)
            fractions.append(
                header.active_parameter_count() / header.parameter_count()
            )
        result.rounds.append(
            AggregationRoundRecord(
                round_index=t,
                uploaded_bytes=upload,
                downloaded_bytes=download,
                active_fractions=fractions,
            )
        )
    return result
