"""``ACMEConfig.fleet_training`` reproduces the per-device run exactly.

With fleet training on, every edge cluster's local updates — the
aggregation loop's importance rounds and the finalize fine-tune — run as
one computation graph per round with a single fused fleet-optimizer step
(:mod:`repro.train.fleet`).  The float64 contract mirrors PR 2-4:
accuracies, losses, the message-kind sequence and the full traffic
ledger must be **bit-for-bit identical** to the serial per-device run,
alone and composed with ``parallel_edges``/``parallel_devices``.
"""

import numpy as np
import pytest

from repro.distributed import ACMEConfig, ACMESystem
from repro.distributed.edge import EdgeConfig


def _config(**overrides) -> ACMEConfig:
    base = dict(
        num_clusters=2,
        devices_per_cluster=3,
        num_classes=6,
        samples_per_class=18,
        compute_dtype="float64",
        seed=0,
    )
    base.update(overrides)
    return ACMEConfig(**base)


@pytest.fixture(scope="module")
def serial_and_fleet_runs():
    from tests.helpers import reset_engine_state

    reset_engine_state()
    serial = ACMESystem(_config()).run()
    fleet = ACMESystem(_config(fleet_training=True)).run()
    return serial, fleet


class TestFleetSystemParity:
    def test_accuracies_and_losses_bit_for_bit(self, serial_and_fleet_runs):
        serial, fleet = serial_and_fleet_runs
        for cs, cf in zip(serial.clusters, fleet.clusters):
            assert cs.edge_name == cf.edge_name
            assert cs.device_accuracies == cf.device_accuracies
            assert cs.device_losses == cf.device_losses
            assert (cs.width, cs.depth) == (cf.width, cf.depth)

    def test_message_sequence_identical(self, serial_and_fleet_runs):
        serial, fleet = serial_and_fleet_runs
        assert serial.message_kinds == fleet.message_kinds
        assert serial.edge_message_kinds == fleet.edge_message_kinds

    def test_traffic_ledger_identical(self, serial_and_fleet_runs):
        serial, fleet = serial_and_fleet_runs
        s, f = serial.traffic, fleet.traffic
        assert s.total_bytes == f.total_bytes
        assert s.upload_bytes == f.upload_bytes
        assert s.download_bytes == f.download_bytes
        assert s.message_count == f.message_count
        assert dict(s.by_kind) == dict(f.by_kind)
        assert dict(s.by_pair) == dict(f.by_pair)

    def test_composes_with_parallel_edges(self, serial_and_fleet_runs):
        """Fleet batching inside each edge + whole-edge fan-out across
        workers: still bit-identical, ledger included."""
        serial, _fleet = serial_and_fleet_runs
        nested = ACMESystem(_config(fleet_training=True, parallel_edges=2)).run()
        assert [c.device_accuracies for c in serial.clusters] == [
            c.device_accuracies for c in nested.clusters
        ]
        assert [c.device_losses for c in serial.clusters] == [
            c.device_losses for c in nested.clusters
        ]
        assert serial.message_kinds == nested.message_kinds
        assert dict(serial.traffic.by_pair) == dict(nested.traffic.by_pair)
        assert serial.traffic.total_bytes == nested.traffic.total_bytes

    def test_composes_with_parallel_devices(self, serial_and_fleet_runs):
        """parallel_devices still drives the phases fleet does not claim
        (similarity feature extraction, NAS scoring); results match."""
        serial, _fleet = serial_and_fleet_runs
        combined = ACMESystem(_config(fleet_training=True, parallel_devices=2)).run()
        assert [c.device_accuracies for c in serial.clusters] == [
            c.device_accuracies for c in combined.clusters
        ]
        assert serial.message_kinds == combined.message_kinds


class TestFleetWiring:
    def test_config_propagates_to_edge(self):
        config = _config(fleet_training=True)
        assert config.edge.fleet_training is True
        assert _config().edge.fleet_training is False

    def test_explicit_edge_config_respected(self):
        edge = EdgeConfig(fleet_training=True, seed=0)
        config = _config(edge=edge)
        assert config.edge.fleet_training is True

    def test_fleet_ready_requires_distributed_models(self):
        system = ACMESystem(_config(fleet_training=True))
        edge = system.edges[0]
        # Before model distribution no device holds a backbone/header.
        assert not edge._fleet_ready()

    def test_fleet_ready_rejects_heterogeneous_backbones(self):
        system = ACMESystem(_config(fleet_training=True))
        system.run_cloud_phases()
        edge = system.edges[0]
        edge.request_backbone()
        edge.search_header()
        edge.distribute_models()
        assert edge._fleet_ready()
        # Perturb one device's backbone: the cluster no longer shares
        # value-identical weights, so fleet batching must stand down.
        device = edge.devices[0]
        param = device.backbone.parameters()[0]
        param.data[...] = param.data + 1.0
        assert not edge._fleet_ready()

    def test_fleet_without_batched_serving(self, serial_and_fleet_runs):
        """fleet_training governs the fine-tune independently of
        batched_serving (which only governs evaluation): the combination
        still reproduces the serial run bit for bit."""
        serial, _fleet = serial_and_fleet_runs
        config = _config(fleet_training=True)
        config.edge.batched_serving = False
        combined = ACMESystem(config).run()
        assert [c.device_accuracies for c in serial.clusters] == [
            c.device_accuracies for c in combined.clusters
        ]
        assert [c.device_losses for c in serial.clusters] == [
            c.device_losses for c in combined.clusters
        ]

    def test_cli_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "--fleet"])
        assert args.fleet is True
        assert build_parser().parse_args(["run"]).fleet is False
