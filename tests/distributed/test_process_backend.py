"""The process executor backend: parity, crash handling, shm hygiene.

``parallel_map(backend="process")`` forks a worker pool and maps
designated tensors write-through over ``multiprocessing.shared_memory``
(:mod:`repro.distributed.procpool`).  These tests pin its contract:

* **cross-backend parity** — serial, thread and process fan-outs of the
  same seeded workload produce bit-identical results, final parameter
  buffers and grads, under both the float32 engine default and the
  float64 protocol dtype;
* **crash containment** — a SIGKILLed worker surfaces as a clean
  :class:`ExecutorError` (never a hang) and leaves no orphan children;
* **shared-memory hygiene** — no ``/dev/shm`` segment survives any exit
  path: success, a task exception, or a worker crash;
* **the satellite regressions** — ``parallel_starmap`` forwarding
  ``serial_if_stochastic`` (historically dropped) and the
  backend-aware ``split_worker_budget``.
"""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.distributed.executor import (
    ExecutorError,
    parallel_map,
    parallel_starmap,
    resolve_backend,
    split_worker_budget,
)
from repro.distributed.procpool import SharedParamArena, fork_available
from repro.nn.layers import Dropout, Linear, Sequential
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, get_default_dtype, using_dtype

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process backend requires the fork start method"
)


def _shm_segments() -> set:
    """Names of live POSIX shared-memory segments (empty set off-Linux)."""
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@pytest.fixture(autouse=True)
def _no_shm_or_child_leaks():
    """Every test in this file must leave zero segments and children behind."""
    before = _shm_segments()
    yield
    for proc in multiprocessing.active_children():
        proc.join(timeout=5.0)
    assert multiprocessing.active_children() == []
    assert _shm_segments() - before == set()


def _make_params(seed: int, shapes=((6, 4), (4,))):
    rng = np.random.default_rng(seed)
    return [Tensor(rng.normal(size=s), requires_grad=True) for s in shapes]


def _train_task(bundle):
    """A tape-plus-fused-optimizer step sequence on one item's params.

    Builds a fresh fused Adam inside the task (which rebinds ``p.data``
    onto its private flat heap buffer — the exact rebind the arena's
    write-back sweep exists for) and leaves grads populated, so the
    grad round-trip is exercised too.
    """
    params, steps, seed = bundle
    optimizer = Adam(params, lr=1e-2, fused=True)
    rng = np.random.default_rng(seed)
    losses = []
    for _ in range(steps):
        for p in params:
            p.grad = rng.normal(size=p.data.shape).astype(p.data.dtype)
        optimizer.step()
        losses.append(float(sum(np.abs(p.data).sum() for p in params)))
    return np.asarray(losses)


def _run_backend(backend, max_workers, dtype, num_items=4, steps=3):
    with using_dtype(dtype):
        devices = [_make_params(seed=10 + i) for i in range(num_items)]
        items = [(params, steps, 100 + i) for i, params in enumerate(devices)]
        results = parallel_map(
            _train_task,
            items,
            max_workers=max_workers,
            backend=backend,
            shared_params=devices if backend == "process" else None,
        )
    return results, devices


class TestCrossBackendParity:
    @needs_fork
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_serial_thread_process_bit_identical(self, dtype):
        serial_results, serial_devices = _run_backend("thread", None, dtype)
        thread_results, thread_devices = _run_backend("thread", 3, dtype)
        process_results, process_devices = _run_backend("process", 3, dtype)

        for s, t, p in zip(serial_results, thread_results, process_results):
            np.testing.assert_array_equal(s, t)
            np.testing.assert_array_equal(s, p)
        for s_params, t_params, p_params in zip(
            serial_devices, thread_devices, process_devices
        ):
            for s, t, p in zip(s_params, t_params, p_params):
                np.testing.assert_array_equal(s.data, t.data)
                np.testing.assert_array_equal(s.data, p.data)
                assert s.data.dtype == p.data.dtype == np.dtype(dtype)
                np.testing.assert_array_equal(s.grad, p.grad)

    @needs_fork
    def test_results_keep_input_order(self):
        out = parallel_map(
            lambda i: i * i, list(range(8)), max_workers=3, backend="process"
        )
        assert out == [i * i for i in range(8)]

    @needs_fork
    def test_workers_inherit_callers_engine_context(self):
        with using_dtype("float64"):
            out = parallel_map(
                lambda _: get_default_dtype(),
                range(4),
                max_workers=2,
                backend="process",
            )
        assert out == [np.float64] * 4

    @needs_fork
    def test_task_exception_reraises_as_itself(self):
        def boom(i):
            if i == 2:
                raise ValueError("task failed in worker")
            return i

        with pytest.raises(ValueError, match="task failed in worker"):
            parallel_map(boom, range(4), max_workers=2, backend="process")

    @needs_fork
    def test_first_exception_by_input_index_wins(self):
        def boom(i):
            if i >= 1:
                raise ValueError(f"boom {i}")
            return i

        with pytest.raises(ValueError, match="boom 1"):
            parallel_map(boom, range(4), max_workers=2, backend="process")

    @needs_fork
    def test_nested_process_request_downgrades_to_threads(self):
        def outer(i):
            # Inside a pool worker a nested process request must not
            # fork again; it silently runs on threads with identical
            # results.
            return parallel_map(
                lambda j: i * 10 + j, range(3), max_workers=2, backend="process"
            )

        out = parallel_map(outer, range(2), max_workers=2, backend="process")
        assert out == [[0, 1, 2], [10, 11, 12]]

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            parallel_map(lambda i: i, range(2), max_workers=2, backend="greenlet")
        with pytest.raises(ValueError):
            resolve_backend("fibers")
        assert resolve_backend(None) == "thread"


class TestWorkerCrash:
    @needs_fork
    def test_sigkilled_worker_raises_executor_error(self):
        def task(i):
            if i == 3:
                os.kill(os.getpid(), signal.SIGKILL)
            return i

        with pytest.raises(ExecutorError, match="died"):
            parallel_map(task, range(4), max_workers=2, backend="process")

    @needs_fork
    def test_unencodable_result_names_the_task(self):
        """A result that neither the wire codec nor pickle can ship must
        surface as that task's error — not kill the worker's remaining
        stride and masquerade as `worker died mid-task` (the pre-audit
        behavior: the send sat outside the per-task try)."""

        def task(i):
            if i == 1:
                return lambda: i  # unpicklable on purpose
            return i * 10

        with pytest.raises(ExecutorError, match=r"task 1 returned a result"):
            parallel_map(task, range(4), max_workers=2, backend="process")

    @needs_fork
    def test_crash_with_arena_still_unlinks_segments(self):
        params = [_make_params(seed=3)]

        def task(item):
            os.kill(os.getpid(), signal.SIGKILL)

        with pytest.raises(ExecutorError):
            parallel_map(
                task,
                [0, 1],
                max_workers=2,
                backend="process",
                shared_params=[params[0], params[0]],
            )
        # The autouse fixture asserts no segments/children leaked; the
        # params must also be heap-backed (demoted) again.
        for p in params[0]:
            assert p.data.base is None or isinstance(p.data.base, np.ndarray)


class TestSharedParamArena:
    def test_promote_demote_roundtrip_restores_heap(self):
        params = _make_params(seed=5)
        params[0].grad = np.ones_like(params[0].data)
        params[1].grad = None
        original = [p.data.copy() for p in params]
        arena = SharedParamArena([params])
        # Views are write-through shared memory, values preserved.
        for p, o in zip(params, original):
            np.testing.assert_array_equal(p.data, o)
        arena.demote()
        for p, o in zip(params, original):
            np.testing.assert_array_equal(p.data, o)
        np.testing.assert_array_equal(params[0].grad, np.ones_like(original[0]))
        assert params[1].grad is None

    def test_demote_is_idempotent(self):
        params = _make_params(seed=6)
        arena = SharedParamArena([params])
        arena.demote()
        arena.demote()  # second call must be a no-op, not a double-unlink

    def test_writeback_rejects_shape_change(self):
        params = _make_params(seed=7)
        arena = SharedParamArena([params])
        try:
            params[0].data = np.zeros((2, 2))
            with pytest.raises(ExecutorError, match="changed shape"):
                arena.writeback(0)
        finally:
            params[0].data = np.zeros((6, 4))
            arena.demote()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="shared_params"):
            parallel_map(
                lambda i: i,
                range(3),
                max_workers=2,
                backend="process",
                shared_params=[[], []],
            )

    def test_mixed_dtype_params_share_one_arena(self):
        with using_dtype("float64"):
            p64 = _make_params(seed=8, shapes=((3, 3),))
        with using_dtype("float32"):
            p32 = _make_params(seed=9, shapes=((4,),))
        params = p64 + p32
        arena = SharedParamArena([params])
        assert params[0].data.dtype == np.float64
        assert params[1].data.dtype == np.float32
        arena.demote()


class TestStarmapRegression:
    def test_starmap_forwards_serial_if_stochastic(self):
        """``parallel_starmap`` historically dropped the stochastic
        guard: a training-mode dropout module fanned out across threads
        anyway, drawing from one RNG concurrently.  It must drop to
        serial exactly like ``parallel_map`` does."""
        import threading

        model = Sequential(Linear(4, 4), Dropout(0.5))
        model.train()
        caller = threading.get_ident()
        out = parallel_starmap(
            lambda a, b: threading.get_ident(),
            [(1, 2), (3, 4), (5, 6)],
            max_workers=3,
            serial_if_stochastic=(model,),
        )
        assert out == [caller] * 3
        model.eval()

    def test_starmap_still_parallel_without_guard(self):
        out = parallel_starmap(
            lambda a, b: a + b, [(1, 2), (3, 4)], max_workers=2
        )
        assert out == [3, 7]

    @needs_fork
    def test_starmap_process_backend(self):
        out = parallel_starmap(
            lambda a, b: a * b, [(2, 3), (4, 5), (6, 7)],
            max_workers=2, backend="process",
        )
        assert out == [6, 20, 42]


class TestBackendAwareBudget:
    def test_serial_outer_thread_inner_passes_through(self):
        assert split_worker_budget(1, 8, budget=4) == (1, 8)
        assert split_worker_budget(None, "auto", budget=4) == (1, "auto")

    def test_serial_outer_process_inner_clamped_to_budget(self):
        # Thread workers past the core count just time-slice; process
        # workers each cost a core and a fork, so they are clamped even
        # with no outer fan-out.
        assert split_worker_budget(1, 8, budget=4, inner_backend="process") == (1, 4)
        assert split_worker_budget(None, 16, budget=2, inner_backend="process") == (1, 2)

    def test_serial_inner_untouched_for_process(self):
        assert split_worker_budget(1, None, budget=4, inner_backend="process") == (1, None)
        assert split_worker_budget(1, 1, budget=4, inner_backend="process") == (1, 1)

    def test_outer_fanout_caps_like_threads(self):
        assert split_worker_budget(4, 8, budget=8, inner_backend="process") == (4, 2)
        assert split_worker_budget(4, 8, budget=8, inner_backend="thread") == (4, 2)

    def test_invalid_inner_backend_rejected(self):
        with pytest.raises(ValueError):
            split_worker_budget(1, 4, inner_backend="mpi")


class TestSystemLevelParity:
    @needs_fork
    def test_acme_run_bit_identical_serial_vs_process(self):
        """A tiny end-to-end ACME run with ``backend="process"`` must
        reproduce the serial accuracies and traffic ledger exactly."""
        from repro.distributed import ACMEConfig, ACMESystem

        def run(backend, workers):
            config = ACMEConfig(
                num_clusters=1,
                devices_per_cluster=2,
                num_classes=4,
                samples_per_class=8,
                parallel_devices=workers,
                backend=backend,
                seed=0,
            )
            system = ACMESystem(config)
            result = system.run()
            system.dispose()
            return result

        serial = run("thread", 1)
        process = run("process", 2)
        assert process.mean_accuracy == serial.mean_accuracy
        assert process.traffic.total_megabytes() == serial.traffic.total_megabytes()
        for s, p in zip(serial.clusters, process.clusters):
            assert p.device_accuracies == s.device_accuracies
            assert (p.width, p.depth) == (s.width, s.depth)
