"""Width/depth-scalable Vision Transformer (the reference model θ0).

The paper parameterizes every candidate backbone relative to a reference
model via the transformation ``θB_n = δ(θB_0, w, d)`` where ``w ∈ (0, 1]``
scales width (attention heads + MLP neurons, DynaBERT-style) and ``d``
counts active Transformer layers (§II-C).  :class:`VisionTransformer`
implements δ as cheap boolean masking, plus :meth:`materialize` to emit a
genuinely smaller deployable copy, and ``zeta`` implements the paper's
parameter-count model ζ(θ) = d·w·(H + 2·ξ_h·ξ_f) (Eq. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers import LayerNorm, Linear, Module, Parameter
from repro.nn.tensor import Tensor, concatenate
from repro.nn.transformer import TransformerEncoder


@dataclass(frozen=True)
class ViTConfig:
    """Architecture hyperparameters of the reference backbone θ0.

    Defaults are a scaled-down ViT sized for CPU training; the structure
    (patch embedding, CLS token, learned positions, pre-norm encoder) matches
    ViT-B exactly.
    """

    image_size: int = 16
    patch_size: int = 4
    channels: int = 3
    embed_dim: int = 32
    depth: int = 6
    num_heads: int = 4
    mlp_ratio: float = 2.0
    num_classes: int = 20
    dropout: float = 0.0

    def __post_init__(self) -> None:
        if self.image_size % self.patch_size != 0:
            raise ValueError("patch_size must divide image_size")
        if self.embed_dim % self.num_heads != 0:
            raise ValueError("num_heads must divide embed_dim")

    @property
    def num_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2

    @property
    def mlp_hidden(self) -> int:
        return int(self.embed_dim * self.mlp_ratio)

    @property
    def head_params(self) -> int:
        """``H`` — attention parameters per layer (QKV + output projection)."""
        d = self.embed_dim
        return 4 * d * d + 4 * d  # three input projections + output, with biases

    def zeta(self, width: float, depth: int) -> float:
        """ζ(θ) = d·w·(H + 2·ξ_h·ξ_f) — the paper's size model (Eq. 3)."""
        if not 0.0 < width <= 1.0:
            raise ValueError(f"width must be in (0, 1], got {width}")
        if not 1 <= depth <= self.depth:
            raise ValueError(f"depth must be in [1, {self.depth}], got {depth}")
        return depth * width * (self.head_params + 2 * self.embed_dim * self.mlp_hidden)


class PatchEmbedding(Module):
    """Split an image into non-overlapping patches and embed them linearly."""

    def __init__(self, config: ViTConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        patch_dim = config.channels * config.patch_size**2
        self.proj = Linear(patch_dim, config.embed_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        cfg = self.config
        n = x.shape[0]
        p = cfg.patch_size
        grid = cfg.image_size // p
        x = x.reshape(n, cfg.channels, grid, p, grid, p)
        x = x.transpose((0, 2, 4, 1, 3, 5))
        x = x.reshape(n, grid * grid, cfg.channels * p * p)
        return self.proj(x)


class VisionTransformer(Module):
    """The reference model θ0 = (θB_0, θH_0): scalable backbone + header.

    The backbone is a pre-norm Transformer encoder with maskable heads and
    MLP neurons; the reference header θH_0 is the classic LayerNorm + Linear
    on the CLS token.  The header can be *replaced* by any module exposing
    ``forward(features) -> logits``; ACME swaps in NAS-generated DAG headers
    (see :mod:`repro.models.header_dag`).
    """

    def __init__(self, config: ViTConfig, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.patch_embed = PatchEmbedding(config, rng)
        self.cls_token = Parameter(init.truncated_normal((1, 1, config.embed_dim), rng))
        self.pos_embed = Parameter(
            init.truncated_normal((1, config.num_patches + 1, config.embed_dim), rng)
        )
        self.encoder = TransformerEncoder(
            depth=config.depth,
            embed_dim=config.embed_dim,
            num_heads=config.num_heads,
            mlp_ratio=config.mlp_ratio,
            dropout=config.dropout,
            rng=rng,
        )
        self.norm = LayerNorm(config.embed_dim)
        self.head = Linear(config.embed_dim, config.num_classes, rng=rng)
        # Importance-derived keep orders (most→least important); default is
        # positional order until Phase 1 computes real importances.
        self._head_orders: List[np.ndarray] = [
            np.arange(config.num_heads) for _ in range(config.depth)
        ]
        self._neuron_orders: List[np.ndarray] = [
            np.arange(config.mlp_hidden) for _ in range(config.depth)
        ]
        self.width: float = 1.0

    # ------------------------------------------------------------------
    # δ(θ0, w, d): width & depth control
    # ------------------------------------------------------------------
    def set_importance_orders(
        self,
        head_orders: Optional[List[np.ndarray]] = None,
        neuron_orders: Optional[List[np.ndarray]] = None,
    ) -> None:
        """Install per-layer rankings (most important first) for pruning."""
        if head_orders is not None:
            if len(head_orders) != self.config.depth:
                raise ValueError("need one head order per layer")
            self._head_orders = [np.asarray(o, dtype=np.int64) for o in head_orders]
        if neuron_orders is not None:
            if len(neuron_orders) != self.config.depth:
                raise ValueError("need one neuron order per layer")
            self._neuron_orders = [np.asarray(o, dtype=np.int64) for o in neuron_orders]

    def set_width(self, width: float) -> None:
        """Apply the width factor ``w``: keep the top-w fraction of heads
        and MLP neurons per layer, by importance order."""
        if not 0.0 < width <= 1.0:
            raise ValueError(f"width must be in (0, 1], got {width}")
        cfg = self.config
        keep_heads = max(1, int(round(width * cfg.num_heads)))
        keep_neurons = max(1, int(round(width * cfg.mlp_hidden)))
        for i, layer in enumerate(self.encoder.layers):
            head_mask = np.zeros(cfg.num_heads, dtype=bool)
            head_mask[self._head_orders[i][:keep_heads]] = True
            layer.attn.set_head_mask(head_mask)
            neuron_mask = np.zeros(cfg.mlp_hidden, dtype=bool)
            neuron_mask[self._neuron_orders[i][:keep_neurons]] = True
            layer.mlp.set_neuron_mask(neuron_mask)
        self.width = width

    def set_depth(self, depth: int) -> None:
        """Apply the depth ``d``: keep the first ``d`` encoder layers."""
        self.encoder.set_active_depth(depth)

    def scale(self, width: float, depth: int) -> "VisionTransformer":
        """In-place δ(θ0, w, d); returns self for chaining."""
        self.set_width(width)
        self.set_depth(depth)
        return self

    @property
    def depth(self) -> int:
        return self.encoder.active_depth()

    def zeta(self) -> float:
        """Current ζ(θ) under the active (w, d)."""
        return self.config.zeta(self.width, self.depth)

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def _embed(self, images: Tensor) -> Tensor:
        if not isinstance(images, Tensor):
            images = Tensor(images)
        tokens = self.patch_embed(images)
        n = tokens.shape[0]
        cls = self.cls_token + Tensor(np.zeros((n, 1, self.config.embed_dim)))
        tokens = concatenate([cls, tokens], axis=1)
        return tokens + self.pos_embed

    def forward_features(self, images: Tensor) -> Tuple[Tensor, Tensor]:
        """Backbone only: returns ``(cls_embedding, patch_tokens)``.

        ``cls_embedding`` is the normalized CLS vector ``(N, D)``;
        ``patch_tokens`` are the normalized patch tokens ``(N, T, D)``.
        """
        x = self.encoder(self._embed(images))
        x = self.norm(x)
        return x[:, 0, :], x[:, 1:, :]

    def forward_features_multi(self, images: Tensor):
        """Backbone features plus the penultimate layer's patch tokens.

        The NAS header search space (Fig. 5) feeds headers from both the
        final and penultimate Transformer layers.
        """
        penult, final = self.encoder.penultimate_and_final(self._embed(images))
        final = self.norm(final)
        return final[:, 0, :], final[:, 1:, :], penult[:, 1:, :]

    def forward(self, images: Tensor) -> Tensor:
        cls, _tokens = self.forward_features(images)
        return self.head(cls)

    # ------------------------------------------------------------------
    # Materialization: emit a genuinely smaller model for deployment
    # ------------------------------------------------------------------
    def materialize(self) -> "VisionTransformer":
        """Build a standalone model with masked structures removed.

        Kept heads/neurons copy their weights; the returned model has the
        active depth and a head count equal to the per-layer keep count, so
        its true parameter count matches what ζ models.
        """
        cfg = self.config
        keep_heads = max(1, int(round(self.width * cfg.num_heads)))
        keep_neurons = max(1, int(round(self.width * cfg.mlp_hidden)))
        head_dim = cfg.embed_dim // cfg.num_heads
        new_embed = keep_heads * head_dim
        new_cfg = replace(
            cfg,
            embed_dim=new_embed,
            depth=self.depth,
            num_heads=keep_heads,
            mlp_ratio=keep_neurons / new_embed,
        )
        small = VisionTransformer(new_cfg, seed=0)

        # Copy the embedding slice corresponding to the kept head dims of
        # layer 0's ordering (embedding channels are shared across layers;
        # we keep the leading slice which is the standard DynaBERT recipe).
        dim_slice = slice(0, new_embed)
        small.patch_embed.proj.weight.data = self.patch_embed.proj.weight.data[:, dim_slice].copy()
        small.patch_embed.proj.bias.data = self.patch_embed.proj.bias.data[dim_slice].copy()
        small.cls_token.data = self.cls_token.data[..., dim_slice].copy()
        small.pos_embed.data = self.pos_embed.data[..., dim_slice].copy()
        small.norm.gamma.data = self.norm.gamma.data[dim_slice].copy()
        small.norm.beta.data = self.norm.beta.data[dim_slice].copy()
        small.head.weight.data = self.head.weight.data[dim_slice, :].copy()
        small.head.bias.data = self.head.bias.data.copy()

        active_layers = [l for l in self.encoder.layers if l.active]
        for small_layer, big_layer in zip(small.encoder.layers, active_layers):
            idx = self.encoder.layers.index(big_layer)
            heads = np.sort(self._head_orders[idx][:keep_heads])
            neurons = np.sort(self._neuron_orders[idx][:keep_neurons])
            _copy_layer(big_layer, small_layer, heads, neurons, head_dim, dim_slice)
        return small


def _copy_layer(big, small, heads, neurons, head_dim, dim_slice) -> None:
    """Copy kept heads/neurons from a big encoder layer into a small one."""
    d = big.attn.embed_dim
    # Column indices in the fused QKV weight for the kept heads, per Q/K/V.
    head_cols = np.concatenate(
        [np.arange(h * head_dim, (h + 1) * head_dim) for h in heads]
    )
    qkv_cols = np.concatenate([head_cols, d + head_cols, 2 * d + head_cols])
    small.attn.qkv.weight.data = big.attn.qkv.weight.data[dim_slice, :][:, qkv_cols].copy()
    small.attn.qkv.bias.data = big.attn.qkv.bias.data[qkv_cols].copy()
    small.attn.proj.weight.data = big.attn.proj.weight.data[head_cols, :][:, dim_slice].copy()
    small.attn.proj.bias.data = big.attn.proj.bias.data[dim_slice].copy()

    small.norm1.gamma.data = big.norm1.gamma.data[dim_slice].copy()
    small.norm1.beta.data = big.norm1.beta.data[dim_slice].copy()
    small.norm2.gamma.data = big.norm2.gamma.data[dim_slice].copy()
    small.norm2.beta.data = big.norm2.beta.data[dim_slice].copy()

    small.mlp.fc1.weight.data = big.mlp.fc1.weight.data[dim_slice, :][:, neurons].copy()
    small.mlp.fc1.bias.data = big.mlp.fc1.bias.data[neurons].copy()
    small.mlp.fc2.weight.data = big.mlp.fc2.weight.data[neurons, :][:, dim_slice].copy()
    small.mlp.fc2.bias.data = big.mlp.fc2.bias.data[dim_slice].copy()
