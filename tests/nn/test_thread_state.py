"""Per-thread isolation of the engine's context-local state.

The grad-mode and default-dtype switches moved from module globals to
``contextvars`` so that the thread-parallel device loops cannot corrupt
each other: one thread's ``no_grad()`` must never drop another thread's
tape, and one thread's ``using_dtype`` must never flip another thread's
precision.  These tests drive competing threads through explicit
rendezvous points (events/barriers) so the interleavings they assert
about actually happen.
"""

import threading

import numpy as np
import pytest

from repro import nn
from repro.distributed.executor import parallel_map, resolve_workers
from repro.nn.tensor import (
    Tensor,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
    using_dtype,
)


class TestGradModeIsolation:
    def test_no_grad_in_one_thread_keeps_other_threads_taping(self):
        """Thread B records a tape while thread A sits inside no_grad()."""
        a_inside = threading.Event()
        b_done = threading.Event()
        observed = {}

        def thread_a():
            with no_grad():
                a_inside.set()
                # Hold the no_grad region open until B finishes its backward.
                assert b_done.wait(timeout=10)
                observed["a_grad_mode"] = is_grad_enabled()

        def thread_b():
            assert a_inside.wait(timeout=10)
            observed["b_grad_mode"] = is_grad_enabled()
            x = Tensor(np.ones((2, 2)), requires_grad=True)
            loss = (x * 3.0).sum()
            loss.backward()
            observed["b_grad"] = x.grad
            b_done.set()

        threads = [threading.Thread(target=thread_a), threading.Thread(target=thread_b)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20)
        assert observed["a_grad_mode"] is False
        assert observed["b_grad_mode"] is True
        np.testing.assert_array_equal(observed["b_grad"], np.full((2, 2), 3.0))

    def test_main_thread_unaffected_by_worker_toggle(self):
        toggled = threading.Event()
        release = threading.Event()

        def worker():
            set_grad_enabled(False)
            toggled.set()
            assert release.wait(timeout=10)

        t = threading.Thread(target=worker)
        t.start()
        assert toggled.wait(timeout=10)
        assert is_grad_enabled() is True  # worker's toggle is invisible here
        release.set()
        t.join(timeout=10)

    def test_competing_no_grad_regions_many_threads(self):
        """N threads flip grad mode at a barrier; each sees only its own."""
        n = 4
        barrier = threading.Barrier(n)
        results = [None] * n

        def worker(i):
            if i % 2 == 0:
                with no_grad():
                    barrier.wait(timeout=10)
                    results[i] = is_grad_enabled()
            else:
                barrier.wait(timeout=10)
                results[i] = is_grad_enabled()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20)
        assert results == [False, True, False, True]


class TestDtypeIsolation:
    def test_using_dtype_is_thread_local(self):
        a_inside = threading.Event()
        b_checked = threading.Event()
        observed = {}

        def thread_a():
            with using_dtype("float64"):
                a_inside.set()
                assert b_checked.wait(timeout=10)
                observed["a_dtype"] = Tensor([1.0]).dtype

        def thread_b():
            assert a_inside.wait(timeout=10)
            observed["b_dtype"] = Tensor([1.0]).dtype
            b_checked.set()

        threads = [threading.Thread(target=thread_a), threading.Thread(target=thread_b)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20)
        assert observed["a_dtype"] == np.float64
        assert observed["b_dtype"] == np.float32

    def test_new_threads_start_from_engine_defaults(self):
        observed = {}

        def worker():
            observed["grad"] = is_grad_enabled()
            observed["dtype"] = get_default_dtype()

        with no_grad(), using_dtype("float64"):
            t = threading.Thread(target=worker)
            t.start()
            t.join(timeout=10)
        assert observed["grad"] is True
        assert observed["dtype"] is np.float32

    def test_nested_scopes_restore_in_one_thread(self):
        assert get_default_dtype() is np.float32
        with using_dtype("float64"):
            assert get_default_dtype() is np.float64
            with using_dtype("float32"):
                assert get_default_dtype() is np.float32
            assert get_default_dtype() is np.float64
        assert get_default_dtype() is np.float32


class TestExecutor:
    def test_results_keep_input_order(self):
        items = list(range(16))
        out = parallel_map(lambda i: i * i, items, max_workers=4)
        assert out == [i * i for i in items]

    def test_serial_fallback_runs_in_calling_thread(self):
        caller = threading.get_ident()
        for workers in (None, 0, 1):
            out = parallel_map(lambda _: threading.get_ident(), [1, 2], max_workers=workers)
            assert out == [caller, caller]

    def test_workers_inherit_callers_engine_context(self):
        with no_grad(), using_dtype("float64"):
            out = parallel_map(
                lambda _: (is_grad_enabled(), get_default_dtype()),
                range(4),
                max_workers=4,
            )
        assert out == [(False, np.float64)] * 4
        # ... and the workers' context copies never leak back out.
        assert is_grad_enabled() is True
        assert get_default_dtype() is np.float32

    def test_worker_state_mutations_do_not_cross_tasks(self):
        """A task that flips grad mode must not poison later tasks."""

        def task(i):
            if i == 0:
                set_grad_enabled(False)
                return is_grad_enabled()
            return is_grad_enabled()

        # Single worker: every task runs on the same pool thread, so any
        # leak would show up in the tasks that follow task 0.
        out = parallel_map(task, range(4), max_workers=2)
        assert out == [False, True, True, True]

    def test_tasks_actually_run_concurrently(self):
        """All 4 tasks must be in flight at once — guards against a
        regression that silently serializes the pool (the perf floors
        replayed from BENCH_perf.json cannot catch that on a single-core
        CI host, so this barrier can only be crossed by real fan-out)."""
        barrier = threading.Barrier(4)

        def task(i):
            barrier.wait(timeout=10)
            return i

        assert parallel_map(task, range(4), max_workers=4) == [0, 1, 2, 3]

    def test_exceptions_propagate(self):
        def boom(i):
            if i == 2:
                raise ValueError("task failed")
            return i

        with pytest.raises(ValueError, match="task failed"):
            parallel_map(boom, range(4), max_workers=2)

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(8, num_tasks=2) == 2
        assert resolve_workers("auto") >= 1
        assert resolve_workers(-1) >= 1
        with pytest.raises(ValueError):
            resolve_workers("many")
        with pytest.raises(ValueError):
            resolve_workers(-2)  # only -1/'auto' may mean the CPU count

    def test_stochastic_guard_forces_serial(self):
        model = nn.Sequential(nn.Linear(4, 4), nn.Dropout(0.5))
        model.train()
        caller = threading.get_ident()
        out = parallel_map(
            lambda _: threading.get_ident(),
            range(4),
            max_workers=4,
            serial_if_stochastic=(model,),
        )
        assert out == [caller] * 4  # dropped to serial in the calling thread
        model.eval()
        assert not nn.has_active_stochastic_modules(model)

    def test_parallel_training_matches_serial(self):
        """Tapes built concurrently in workers match the serial gradients."""

        def one_step(seed):
            rng = np.random.default_rng(seed)
            layer = nn.Linear(6, 3, rng=rng)
            x = Tensor(rng.normal(size=(4, 6)))
            loss = (layer(x) * layer(x)).sum()
            layer.zero_grad()
            loss.backward()
            return layer.weight.grad.copy()

        serial = [one_step(seed) for seed in range(6)]
        parallel = parallel_map(one_step, range(6), max_workers=4)
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s, p)
