"""Seed sensitivity of the migrated fallback-initialization streams.

PR 1 moved ``Conv2d``'s no-rng fallback to the shared
``repro.nn.init.default_generator()`` stream; this PR migrates the
remaining layers (``Linear``, ``Embedding``, ``MLP``, ``LSTMCell``,
attention, transformer blocks).  Two properties matter:

* **sensitivity** — two modules built back-to-back without a generator
  must not silently share identical weights (the old
  ``default_rng(0)``-per-module behavior);
* **reproducibility** — ``repro.nn.set_seed`` pins the fallback stream,
  so a seeded construction sequence is bit-for-bit repeatable, across
  every migrated layer type and also from worker threads.
"""

import threading

import numpy as np

from repro import nn
from repro.nn import init
from tests.helpers import fresh_rng


def _first_param(module: nn.Module) -> np.ndarray:
    return module.parameters()[0].data


class TestFallbackSensitivity:
    def test_two_unseeded_linears_differ(self):
        a, b = nn.Linear(8, 8), nn.Linear(8, 8)
        assert not np.allclose(a.weight.data, b.weight.data)

    def test_two_unseeded_embeddings_differ(self):
        a, b = nn.Embedding(12, 6), nn.Embedding(12, 6)
        assert not np.allclose(a.weight.data, b.weight.data)

    def test_two_unseeded_mlps_differ(self):
        a, b = nn.MLP(8, 16, 4), nn.MLP(8, 16, 4)
        assert not np.allclose(a.fc1.weight.data, b.fc1.weight.data)
        assert not np.allclose(a.fc2.weight.data, b.fc2.weight.data)

    def test_two_unseeded_lstm_cells_differ(self):
        a, b = nn.LSTMCell(4, 6), nn.LSTMCell(4, 6)
        assert not np.allclose(a.ih.weight.data, b.ih.weight.data)

    def test_two_unseeded_attention_blocks_differ(self):
        a = nn.MultiHeadSelfAttention(8, 2)
        b = nn.MultiHeadSelfAttention(8, 2)
        assert not np.allclose(a.qkv.weight.data, b.qkv.weight.data)

    def test_two_unseeded_encoder_layers_differ(self):
        a = nn.TransformerEncoderLayer(8, 2)
        b = nn.TransformerEncoderLayer(8, 2)
        assert not np.allclose(a.attn.qkv.weight.data, b.attn.qkv.weight.data)
        assert not np.allclose(a.mlp.fc1.weight.data, b.mlp.fc1.weight.data)

    def test_unseeded_encoder_stacks_layers_with_distinct_weights(self):
        enc = nn.TransformerEncoder(3, 8, 2)
        w0 = enc.layers[0].attn.qkv.weight.data
        w1 = enc.layers[1].attn.qkv.weight.data
        assert not np.allclose(w0, w1)

    def test_explicit_rng_still_reproduces(self):
        a = nn.Linear(5, 5, rng=fresh_rng(7))
        b = nn.Linear(5, 5, rng=fresh_rng(7))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestSetSeedReproducibility:
    BUILDERS = [
        lambda: nn.Linear(8, 8),
        lambda: nn.Embedding(12, 6),
        lambda: nn.MLP(8, 16, 4),
        lambda: nn.LSTMCell(4, 6),
        lambda: nn.MultiHeadSelfAttention(8, 2),
        lambda: nn.TransformerEncoderLayer(8, 2),
        lambda: nn.Conv2d(3, 4, kernel_size=3),
    ]

    def test_set_seed_restores_the_stream_across_layer_types(self):
        nn.set_seed(123)
        first = [
            [p.data.copy() for p in builder().parameters()]
            for builder in self.BUILDERS
        ]
        nn.set_seed(123)
        second = [
            [p.data.copy() for p in builder().parameters()]
            for builder in self.BUILDERS
        ]
        for params_a, params_b in zip(first, second):
            for a, b in zip(params_a, params_b):
                np.testing.assert_array_equal(a, b)

    def test_different_seeds_produce_different_weights(self):
        nn.set_seed(1)
        a = nn.Linear(8, 8)
        nn.set_seed(2)
        b = nn.Linear(8, 8)
        assert not np.allclose(a.weight.data, b.weight.data)

    def test_worker_thread_stream_is_independent_and_reseedable(self):
        """Threads get their own streams; set_seed resets them too."""

        def build_in_thread(box):
            box.append(nn.Linear(8, 8).weight.data.copy())

        nn.set_seed(99)
        main_weights = nn.Linear(8, 8).weight.data.copy()

        nn.set_seed(99)
        first_run, second_run = [], []
        t = threading.Thread(target=build_in_thread, args=(first_run,))
        t.start()
        t.join(timeout=10)

        nn.set_seed(99)
        t = threading.Thread(target=build_in_thread, args=(second_run,))
        t.start()
        t.join(timeout=10)

        # The worker stream is spawned from the seed, distinct from the
        # main thread's stream, and repeatable after a re-seed.
        assert not np.allclose(first_run[0], main_weights)
        np.testing.assert_array_equal(first_run[0], second_run[0])

    def test_concurrent_unseeded_construction_is_safe(self):
        """Many threads building unseeded layers never share a draw."""
        n = 8
        barrier = threading.Barrier(n)
        weights = [None] * n

        def worker(i):
            barrier.wait(timeout=10)
            weights[i] = nn.Linear(16, 16).weight.data.copy()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20)
        for i in range(n):
            for j in range(i + 1, n):
                assert not np.allclose(weights[i], weights[j]), (i, j)

    def test_default_generator_is_per_thread_object(self):
        generators = {}

        def grab(name):
            generators[name] = init.default_generator()

        grab("main")
        t = threading.Thread(target=grab, args=("worker",))
        t.start()
        t.join(timeout=10)
        assert generators["main"] is not generators["worker"]
        # Cached within a thread between draws.
        assert init.default_generator() is generators["main"]
