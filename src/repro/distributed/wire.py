"""Binary wire format for :mod:`repro.distributed.messages` payloads.

The loopback fabric passes live Python objects between handlers; the TCP
transport (:mod:`repro.distributed.transport`) needs those same payloads
as bytes.  This module is the codec: a tagged, recursive binary encoding
that round-trips every payload the protocol produces **bit-exactly** —
numpy arrays keep their dtype (including byte order), shape and contents;
0-d arrays stay 0-d; numpy scalars stay numpy scalars; dataclass payload
objects (``ViTConfig``, ``HeaderSpec``, ``DeviceProfile``, datasets) are
rebuilt through registered codecs.

Framing.  A frame is::

    MAGIC(4) | body_length u32 | crc32(body) u32 | body

All integers are big-endian.  ``read_frame``/``decode_frame`` verify the
magic, bound the length by ``max_frame`` and check the CRC before any
body byte is interpreted; a truncated, oversized or corrupted frame
raises :class:`WireError` — never a hang, never a silently short read.
The CRC is transport framing overhead and is **not** part of
``Message.nbytes``: Table-I byte accounting is carried inside the
message (``nbytes`` is transmitted verbatim), exactly as the in-process
fabric computes it.

``encode_message``/``decode_message`` preserve every ``Message`` field —
``nbytes``, ``sequence``, ``checksum`` and ``attempts`` travel with the
payload — so the receiving fabric sees the same object the sender's
would have, and checksum verification under an armed fault policy keeps
its meaning across the wire.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.distributed.messages import Message, MessageKind

__all__ = [
    "WireError",
    "MAGIC",
    "MAX_FRAME",
    "HEADER_SIZE",
    "encode_value",
    "decode_value",
    "encode_message",
    "decode_message",
    "frame",
    "decode_frame",
    "frame_header",
    "register_codec",
]


class WireError(RuntimeError):
    """A malformed, truncated or corrupted wire frame/body."""


MAGIC = b"RWF1"
#: Hard ceiling on a single frame body (256 MiB) — a garbage length
#: prefix must not provoke a multi-gigabyte allocation.
MAX_FRAME = 1 << 28
#: Frame header: magic + body length + body CRC32.
HEADER_SIZE = 12

_HEADER = struct.Struct(">4sII")
_U8 = struct.Struct(">B")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

# Value tags.  One byte each; decode rejects anything else.
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"i"
_T_BIGINT = b"I"  # decimal string, for |int| >= 2**63
_T_FLOAT = b"f"
_T_STR = b"s"
_T_BYTES = b"b"
_T_LIST = b"l"
_T_TUPLE = b"u"
_T_DICT = b"m"
_T_SET = b"e"
_T_FROZENSET = b"z"
_T_NDARRAY = b"a"
_T_NPSCALAR = b"g"
_T_OBJECT = b"o"  # registered codec: name + encoded state
_T_KIND = b"k"
_T_MESSAGE = b"M"


# ---------------------------------------------------------------------------
# Registered object codecs
# ---------------------------------------------------------------------------
#: name -> (cls, to_state, from_state).  ``to_state`` maps the object to
#: an encodable value; ``from_state`` rebuilds an equal object.
# reprolint: guarded -- populated by _register_builtin_codecs at import; later
# register_codec calls are a startup-time API, sequenced before any transport thread
_CODECS: Dict[str, Tuple[type, Callable[[Any], Any], Callable[[Any], Any]]] = {}
#: Exact-type dispatch for encoding (no subclass surprises).
# reprolint: guarded -- mutated only by register_codec, same startup-time sequencing
_CODEC_BY_TYPE: Dict[type, str] = {}


def register_codec(
    name: str,
    cls: type,
    to_state: Callable[[Any], Any],
    from_state: Callable[[Any], Any],
) -> None:
    """Register a payload object type for wire transport.

    ``to_state(obj)`` must return a value built from already-encodable
    types; ``from_state(state)`` must rebuild an object whose payload
    semantics equal the original.  Registration is idempotent for the
    same class; a name collision with a different class raises.
    """
    existing = _CODECS.get(name)
    if existing is not None and existing[0] is not cls:
        raise ValueError(f"wire codec {name!r} already bound to {existing[0]!r}")
    _CODECS[name] = (cls, to_state, from_state)
    _CODEC_BY_TYPE[cls] = name


def _register_builtin_codecs() -> None:
    from repro.data.dataset import ArrayDataset
    from repro.hw.profiles import DeviceProfile
    from repro.models.blocks import HeaderSpec
    from repro.models.vit import ViTConfig

    register_codec(
        "vit_config",
        ViTConfig,
        lambda c: {
            "image_size": c.image_size,
            "patch_size": c.patch_size,
            "channels": c.channels,
            "embed_dim": c.embed_dim,
            "depth": c.depth,
            "num_heads": c.num_heads,
            "mlp_ratio": c.mlp_ratio,
            "num_classes": c.num_classes,
            "dropout": c.dropout,
        },
        lambda s: ViTConfig(**s),
    )
    register_codec(
        "header_spec",
        HeaderSpec,
        lambda h: {"seq": h.to_sequence(), "repeats": h.repeats},
        lambda s: HeaderSpec.from_sequence(s["seq"], repeats=s["repeats"]),
    )
    register_codec(
        "device_profile",
        DeviceProfile,
        lambda p: {
            "device_id": p.device_id,
            "gpu_capacity": p.gpu_capacity,
            "storage_limit": p.storage_limit,
            "num_patches": p.num_patches,
            "batch_size": p.batch_size,
            "base_power": p.base_power,
            "power_per_layer": p.power_per_layer,
            "base_latency": p.base_latency,
            "latency_per_layer": p.latency_per_layer,
        },
        lambda s: DeviceProfile(**s),
    )
    register_codec(
        "array_dataset",
        ArrayDataset,
        lambda d: {
            "images": d.images,
            "labels": d.labels,
            "num_classes": d.num_classes,
            "name": d.name,
        },
        lambda s: ArrayDataset(
            s["images"], s["labels"], s["num_classes"], name=s["name"]
        ),
    )


# ---------------------------------------------------------------------------
# Value encoding
# ---------------------------------------------------------------------------
def encode_value(value: Any) -> bytes:
    """Encode any payload value to the tagged binary form."""
    out = bytearray()
    _encode(out, value)
    return bytes(out)


def _encode(out: bytearray, value: Any) -> None:
    # bool before int: bool is an int subclass.
    if value is None:
        out += _T_NONE
    elif value is True:
        out += _T_TRUE
    elif value is False:
        out += _T_FALSE
    elif isinstance(value, np.ndarray):
        _encode_ndarray(out, value)
    elif isinstance(value, np.generic):
        _encode_npscalar(out, value)
    elif type(value) is int or isinstance(value, int) and not isinstance(value, bool):
        if _I64_MIN <= value <= _I64_MAX:
            out += _T_INT
            out += _I64.pack(value)
        else:
            text = str(value).encode("ascii")
            out += _T_BIGINT
            out += _U32.pack(len(text))
            out += text
    elif isinstance(value, float):
        out += _T_FLOAT
        out += _F64.pack(value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out += _T_STR
        out += _U32.pack(len(data))
        out += data
    elif isinstance(value, (bytes, bytearray)):
        out += _T_BYTES
        out += _U32.pack(len(value))
        out += bytes(value)
    elif isinstance(value, Message):
        out += _T_MESSAGE
        _encode(out, _message_state(value))
    elif isinstance(value, MessageKind):
        data = value.value.encode("utf-8")
        out += _T_KIND
        out += _U32.pack(len(data))
        out += data
    elif type(value) in _CODEC_BY_TYPE:
        name = _CODEC_BY_TYPE[type(value)]
        data = name.encode("utf-8")
        out += _T_OBJECT
        out += _U32.pack(len(data))
        out += data
        _encode(out, _CODECS[name][1](value))
    elif isinstance(value, list):
        out += _T_LIST
        out += _U32.pack(len(value))
        for item in value:
            _encode(out, item)
    elif isinstance(value, tuple):
        out += _T_TUPLE
        out += _U32.pack(len(value))
        for item in value:
            _encode(out, item)
    elif isinstance(value, dict):
        out += _T_DICT
        out += _U32.pack(len(value))
        for key, item in value.items():
            _encode(out, key)
            _encode(out, item)
    elif isinstance(value, (set, frozenset)):
        # Encode members in a deterministic order so equal sets produce
        # equal bytes regardless of hash-iteration order.
        members = [encode_value(v) for v in value]
        members.sort()
        out += _T_FROZENSET if isinstance(value, frozenset) else _T_SET
        out += _U32.pack(len(members))
        for blob in members:
            out += blob
    else:
        raise WireError(
            f"cannot encode {type(value).__name__!r} for the wire; "
            f"register a codec with repro.distributed.wire.register_codec"
        )


def _encode_ndarray(out: bytearray, array: np.ndarray) -> None:
    if array.dtype.hasobject or array.dtype.names is not None:
        raise WireError(f"cannot encode object/structured dtype {array.dtype!r}")
    descr = array.dtype.str.encode("ascii")
    contiguous = np.ascontiguousarray(array)
    out += _T_NDARRAY
    out += _U8.pack(len(descr))
    out += descr
    out += _U8.pack(array.ndim)
    for dim in array.shape:
        out += _U64.pack(dim)
    out += contiguous.tobytes()


def _encode_npscalar(out: bytearray, value: np.generic) -> None:
    array = np.asarray(value)
    if array.dtype.hasobject:
        raise WireError(f"cannot encode numpy scalar of dtype {array.dtype!r}")
    descr = array.dtype.str.encode("ascii")
    out += _T_NPSCALAR
    out += _U8.pack(len(descr))
    out += descr
    out += array.tobytes()


def _message_state(message: Message) -> Dict[str, Any]:
    return {
        "sender": message.sender,
        "receiver": message.receiver,
        "kind": message.kind,
        "payload": message.payload,
        "nbytes": message.nbytes,
        "sequence": message.sequence,
        "checksum": message.checksum,
        "attempts": message.attempts,
    }


def _message_from_state(state: Dict[str, Any]) -> Message:
    try:
        return Message(
            sender=state["sender"],
            receiver=state["receiver"],
            kind=state["kind"],
            payload=state["payload"],
            nbytes=state["nbytes"],
            sequence=state["sequence"],
            checksum=state["checksum"],
            attempts=state["attempts"],
        )
    except (KeyError, TypeError) as exc:
        raise WireError(f"malformed message state: {exc}") from exc


# ---------------------------------------------------------------------------
# Value decoding
# ---------------------------------------------------------------------------
class _Reader:
    """Bounds-checked cursor over a frame body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if count < 0 or end > len(self.data):
            raise WireError(
                f"truncated wire body: wanted {count} bytes at offset "
                f"{self.pos}, only {len(self.data) - self.pos} remain"
            )
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def done(self) -> bool:
        return self.pos == len(self.data)


def decode_value(data: bytes) -> Any:
    """Decode a body produced by :func:`encode_value`.

    Trailing garbage after the encoded value is a :class:`WireError` —
    a frame carries exactly one value.
    """
    reader = _Reader(bytes(data))
    value = _decode(reader)
    if not reader.done():
        raise WireError(
            f"{len(reader.data) - reader.pos} trailing byte(s) after wire value"
        )
    return value


def _decode(reader: _Reader) -> Any:
    tag = reader.take(1)
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return _I64.unpack(reader.take(8))[0]
    if tag == _T_BIGINT:
        (length,) = _U32.unpack(reader.take(4))
        text = reader.take(length)
        try:
            return int(text.decode("ascii"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireError(f"malformed bigint literal: {exc}") from exc
    if tag == _T_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _T_STR:
        (length,) = _U32.unpack(reader.take(4))
        try:
            return reader.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"malformed utf-8 string: {exc}") from exc
    if tag == _T_BYTES:
        (length,) = _U32.unpack(reader.take(4))
        return reader.take(length)
    if tag == _T_LIST:
        (count,) = _U32.unpack(reader.take(4))
        return [_decode(reader) for _ in range(count)]
    if tag == _T_TUPLE:
        (count,) = _U32.unpack(reader.take(4))
        return tuple(_decode(reader) for _ in range(count))
    if tag == _T_DICT:
        (count,) = _U32.unpack(reader.take(4))
        result: Dict[Any, Any] = {}
        for _ in range(count):
            key = _decode(reader)
            result[key] = _decode(reader)
        return result
    if tag in (_T_SET, _T_FROZENSET):
        (count,) = _U32.unpack(reader.take(4))
        members = [_decode(reader) for _ in range(count)]
        return frozenset(members) if tag == _T_FROZENSET else set(members)
    if tag == _T_NDARRAY:
        return _decode_ndarray(reader)
    if tag == _T_NPSCALAR:
        return _decode_npscalar(reader)
    if tag == _T_KIND:
        (length,) = _U32.unpack(reader.take(4))
        text = reader.take(length)
        try:
            return MessageKind(text.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireError(f"unknown message kind on wire: {exc}") from exc
    if tag == _T_MESSAGE:
        state = _decode(reader)
        if not isinstance(state, dict) or not isinstance(
            state.get("kind"), MessageKind
        ):
            raise WireError("malformed message state on wire")
        return _message_from_state(state)
    if tag == _T_OBJECT:
        (length,) = _U32.unpack(reader.take(4))
        try:
            name = reader.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"malformed codec name: {exc}") from exc
        codec = _CODECS.get(name)
        if codec is None:
            raise WireError(f"no wire codec registered for {name!r}")
        state = _decode(reader)
        try:
            return codec[2](state)
        except WireError:
            raise
        # reprolint: broad-except -- decode boundary: any codec rejection of hostile
        # or truncated wire state is re-raised as WireError with the codec named
        except Exception as exc:
            raise WireError(f"codec {name!r} rejected wire state: {exc}") from exc
    raise WireError(f"unknown wire tag {tag!r} at offset {reader.pos - 1}")


def _decode_dtype(reader: _Reader) -> np.dtype:
    (descr_len,) = _U8.unpack(reader.take(1))
    descr = reader.take(descr_len)
    try:
        dtype = np.dtype(descr.decode("ascii"))
    except (UnicodeDecodeError, TypeError) as exc:
        raise WireError(f"malformed dtype descriptor {descr!r}: {exc}") from exc
    if dtype.hasobject or dtype.itemsize == 0:
        raise WireError(f"refusing to decode dtype {dtype!r}")
    return dtype


def _decode_ndarray(reader: _Reader) -> np.ndarray:
    dtype = _decode_dtype(reader)
    (ndim,) = _U8.unpack(reader.take(1))
    shape: List[int] = []
    for _ in range(ndim):
        (dim,) = _U64.unpack(reader.take(8))
        shape.append(dim)
    count = 1
    for dim in shape:
        count *= dim
    nbytes = count * dtype.itemsize
    if nbytes > MAX_FRAME:
        raise WireError(f"array of {nbytes} bytes exceeds the frame ceiling")
    raw = reader.take(nbytes)
    # ``frombuffer`` views read-only memory; copy to a writable C-order
    # array so decoded payloads behave exactly like loopback ones.
    return np.frombuffer(raw, dtype=dtype).reshape(tuple(shape)).copy()


def _decode_npscalar(reader: _Reader) -> np.generic:
    dtype = _decode_dtype(reader)
    raw = reader.take(dtype.itemsize)
    return np.frombuffer(raw, dtype=dtype)[0]


# ---------------------------------------------------------------------------
# Messages and frames
# ---------------------------------------------------------------------------
def encode_message(message: Message) -> bytes:
    """Encode a full :class:`Message` (all fields preserved verbatim)."""
    return encode_value(message)


def decode_message(data: bytes) -> Message:
    """Decode :func:`encode_message` output back to an equal ``Message``."""
    value = decode_value(data)
    if not isinstance(value, Message):
        raise WireError(f"wire body is a {type(value).__name__}, not a Message")
    return value


def frame(body: bytes) -> bytes:
    """Wrap an encoded body in the length-prefixed, CRC-checked frame."""
    if len(body) > MAX_FRAME:
        raise WireError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME}")
    return _HEADER.pack(MAGIC, len(body), zlib.crc32(body)) + body


def frame_header(header: bytes, max_frame: int = MAX_FRAME) -> Tuple[int, int]:
    """Validate a 12-byte frame header; return ``(body_length, crc)``."""
    if len(header) != HEADER_SIZE:
        raise WireError(f"short frame header: {len(header)} bytes")
    magic, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if length > max_frame:
        raise WireError(f"frame length {length} exceeds the {max_frame}-byte cap")
    return length, crc


def check_body(body: bytes, length: int, crc: int) -> bytes:
    """Verify a frame body against its header; return the body."""
    if len(body) != length:
        raise WireError(f"truncated frame: header promised {length}, got {len(body)}")
    if zlib.crc32(body) != crc:
        raise WireError("frame CRC mismatch (corrupted in transit)")
    return body


def decode_frame(data: bytes) -> Tuple[Any, bytes]:
    """Decode one frame from a byte string; return ``(value, rest)``.

    Raises :class:`WireError` for truncated or corrupted input; never
    returns a partial value.
    """
    if len(data) < HEADER_SIZE:
        raise WireError(f"truncated frame: {len(data)} bytes, header needs 12")
    length, crc = frame_header(bytes(data[:HEADER_SIZE]))
    end = HEADER_SIZE + length
    if len(data) < end:
        raise WireError(
            f"truncated frame: header promised {length} body bytes, "
            f"only {len(data) - HEADER_SIZE} present"
        )
    body = check_body(bytes(data[HEADER_SIZE:end]), length, crc)
    return decode_value(body), bytes(data[end:])


_register_builtin_codecs()
