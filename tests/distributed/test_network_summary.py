"""Summary ledger mode: bounded memory at fleet scale, exact counters.

The full ledger appends one record per delivered message and one
``by_pair`` row per (sender, receiver) — both O(messages) and O(nodes²),
which at 10⁴⁺ devices *is* the memory bill.  ``Network(ledger="summary")``
keeps a bounded tail of the log, collapses pair keys to roles
(``device*``), and keeps every scalar / per-kind / per-fault counter
exact.  The capstone test runs a 10,000-device campaign under
``tracemalloc`` and holds it to a peak the always-live, full-ledger mode
could not approach.
"""

import numpy as np
import pytest

from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import _SUMMARY_TAIL, Network
from repro.distributed.scale import ScaleConfig, run_scale_campaign


def _chatter(network: Network, count: int) -> None:
    for i in range(count):
        name = f"device{i}"
        network.register(name, lambda m: None)
        network.send(
            Message("edge0", name, MessageKind.PERSONALIZED_SET,
                    {"importance": np.zeros(4, dtype=np.float32)})
        )


class TestSummaryLedger:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            Network(ledger="verbose")

    def test_counters_exact_log_bounded(self):
        full, summary = Network(ledger="full"), Network(ledger="summary")
        n = _SUMMARY_TAIL + 100
        for network in (full, summary):
            network.register("edge0", lambda m: None)
            _chatter(network, n)
        assert len(full.log) == n
        assert len(summary.log) == _SUMMARY_TAIL  # bounded tail
        assert summary.kind_counts == full.kind_counts
        assert summary.stats.total_bytes == full.stats.total_bytes
        assert summary.stats.message_count == full.stats.message_count
        assert summary.stats.by_kind == full.stats.by_kind

    def test_pairs_collapse_to_roles(self):
        network = Network(ledger="summary")
        network.register("edge0", lambda m: None)
        _chatter(network, 50)
        assert set(network.stats.by_pair) == {("edge*", "device*")}

    def test_kind_sequence_unavailable_in_summary(self):
        network = Network(ledger="summary")
        network.register("edge0", lambda m: None)
        _chatter(network, 3)
        with pytest.raises(RuntimeError, match="summary"):
            network.kind_sequence()
        # The exact per-kind counts remain available in both modes.
        assert network.kind_counts["personalized_set"] == 3


class TestScaleMemoryBudget:
    #: MiB budget for the 10k-device smoke below.  Lazy LRU state plus
    #: the bounded ledger measured ~260 MiB; the always-live path's
    #: measured marginal (~0.1 MiB/device — see benchmarks/bench_scale.py)
    #: projects to ~1 GiB at this fleet size, far past the budget.
    BUDGET_MB = 420.0

    def test_ten_thousand_devices_stay_under_budget(self):
        config = ScaleConfig(
            num_devices=10_000,
            num_clusters=8,
            rounds=1,
            lru_capacity=32,
            eval_requests=4,
            deadline_quantile=0.9,
            ledger="summary",
            seed=0,
        )
        report = run_scale_campaign(config, measure_memory=True)
        assert report.contributions > 0
        assert report.live_headers <= 8 * 32
        assert report.peak_memory_mb is not None
        assert report.peak_memory_mb < self.BUDGET_MB, (
            f"10k-device smoke peaked at {report.peak_memory_mb:.1f} MiB "
            f"(budget {self.BUDGET_MB} MiB)"
        )
        # The ledger stayed bounded: a full log would hold one entry per
        # delivered message (≥ 3 × 10k just for distribution + round 1).
        assert len(report.kind_counts) > 0
        assert sum(report.kind_counts.values()) > 20_000
