"""Tests for device profiles and the Eq. (1)-(2) energy model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    DeviceProfile,
    cluster_energy,
    cluster_statistics,
    energy,
    gpu_batch_energy,
    latency,
    make_fleet,
    power,
)


def profile(vcpus=4, seed=0):
    return DeviceProfile.synthesize(
        0, vcpus, storage_limit=100_000, rng=np.random.default_rng(seed)
    )


class TestProfiles:
    def test_synthesize_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile.synthesize(0, 0, 100, np.random.default_rng(0))

    def test_proportionality_constraints(self):
        """Eq. (2): ΔG ∝ G and ΔL ∝ L."""
        p = profile()
        assert p.power_per_layer == pytest.approx(0.15 * p.base_power)
        assert p.latency_per_layer == pytest.approx(0.25 * p.base_latency)

    def test_more_vcpus_more_power_less_latency(self):
        slow = profile(vcpus=3, seed=1)
        fast = profile(vcpus=7, seed=1)
        assert fast.base_power > slow.base_power
        assert fast.base_latency < slow.base_latency

    def test_fleet_layout(self):
        fleet = make_fleet(num_clusters=10, devices_per_cluster=5)
        assert len(fleet) == 10
        assert all(len(c) == 5 for c in fleet)
        ids = [d.device_id for c in fleet for d in c]
        assert ids == list(range(50))

    def test_fleet_clusters_are_homogeneous_in_vcpus(self):
        fleet = make_fleet(num_clusters=5, devices_per_cluster=4)
        for cluster in fleet:
            caps = {d.gpu_capacity for d in cluster}
            assert len(caps) == 1

    def test_fleet_storage_levels(self):
        levels = (100, 200, 300)
        fleet = make_fleet(num_clusters=2, devices_per_cluster=3, storage_levels=levels)
        for cluster in fleet:
            assert [d.storage_limit for d in cluster] == [100, 200, 300]

    def test_cluster_statistics(self):
        fleet = make_fleet(num_clusters=1, devices_per_cluster=5)
        stats = cluster_statistics(fleet[0])
        assert stats["num_devices"] == 5
        assert stats["min_storage"] <= stats["mean_storage"]
        assert stats["max_base_power"] >= max(0.0, stats["max_power_per_layer"])

    def test_cluster_statistics_rejects_empty(self):
        with pytest.raises(ValueError):
            cluster_statistics([])


class TestEnergyModel:
    def test_power_monotone_in_layers(self):
        p = profile()
        assert power(p, 1.0, 4) > power(p, 1.0, 2)
        assert power(p, 1.0, 4) > power(p, 0.5, 4)

    def test_latency_monotone(self):
        p = profile()
        assert latency(p, 1.0, 6) > latency(p, 0.25, 1)

    def test_energy_composition(self):
        """Eq. (1): E = k · P · T."""
        p = profile()
        report = energy(p, 0.5, 3, epochs=4)
        assert report.energy_joules == pytest.approx(
            4 * power(p, 0.5, 3) * latency(p, 0.5, 3)
        )

    def test_gpu_batch_energy_proportional_to_capacity(self):
        a, b = profile(vcpus=3), profile(vcpus=6)
        assert gpu_batch_energy(b) == pytest.approx(2 * gpu_batch_energy(a))

    def test_validation(self):
        p = profile()
        with pytest.raises(ValueError):
            power(p, 0.0, 3)
        with pytest.raises(ValueError):
            power(p, 1.5, 3)
        with pytest.raises(ValueError):
            latency(p, 0.5, 0)
        with pytest.raises(ValueError):
            energy(p, 0.5, 1, epochs=0)

    def test_cluster_energy_is_max(self):
        fleet = make_fleet(num_clusters=1, devices_per_cluster=4)[0]
        worst = cluster_energy(fleet, 0.5, 3)
        individual = [energy(d, 0.5, 3).energy_joules for d in fleet]
        assert worst == pytest.approx(max(individual))

    def test_cluster_energy_rejects_empty(self):
        with pytest.raises(ValueError):
            cluster_energy([], 0.5, 1)


@settings(max_examples=30, deadline=None)
@given(
    st.floats(0.1, 1.0),
    st.integers(1, 12),
    st.floats(0.1, 1.0),
    st.integers(1, 12),
)
def test_property_energy_monotone_in_effective_layers(w1, d1, w2, d2):
    """More effective layers (w·d) never costs less energy."""
    p = profile()
    if w1 * d1 <= w2 * d2:
        assert (
            energy(p, w1, d1).energy_joules <= energy(p, w2, d2).energy_joules + 1e-9
        )
