"""Convolution and pooling layers via im2col.

These power the CNN-style header blocks of the NAS search space (z×z
convolutions, average/max pooling, downsampling — see Fig. 5 of the paper).
Inputs follow the ``(N, C, H, W)`` layout.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.layers import Module, Parameter
from repro.nn.tensor import Tensor


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _im2col_indices(
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Index arrays mapping padded input pixels to column-matrix entries."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel} with stride {stride}, padding {padding} does not fit input {x_shape}"
        )

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = sh * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = sw * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


def im2col(x: Tensor, kernel, stride=1, padding=0) -> Tuple[Tensor, int, int]:
    """Unfold ``x`` into a ``(C*kh*kw, N*out_h*out_w)`` column tensor."""
    kernel = _pair(kernel)
    stride = _pair(stride)
    padding = _pair(padding)
    ph, pw = padding
    if ph or pw:
        x = x.pad(((0, 0), (0, 0), (ph, ph), (pw, pw)))
    k, i, j, out_h, out_w = _im2col_indices(x.shape, kernel, stride, (0, 0))
    cols = x[:, k, i, j]  # (N, C*kh*kw, out_h*out_w)
    n = x.shape[0]
    cols = cols.transpose((1, 2, 0)).reshape(k.shape[0], -1)
    return cols, out_h, out_w


class Conv2d(Module):
    """2-D convolution implemented with im2col + matmul."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kh, kw), rng)
        )
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        n = x.shape[0]
        cols, out_h, out_w = im2col(x, self.kernel_size, self.stride, self.padding)
        w_flat = self.weight.reshape(self.out_channels, -1)
        out = w_flat @ cols  # (out_channels, N*out_h*out_w)
        out = out.reshape(self.out_channels, out_h * out_w, n)
        out = out.transpose((2, 0, 1)).reshape(n, self.out_channels, out_h, out_w)
        if self.bias is not None:
            out = out + self.bias.reshape(1, self.out_channels, 1, 1)
        return out


class _Pool2d(Module):
    """Shared machinery for max and average pooling."""

    def __init__(self, kernel_size, stride=None, padding=0) -> None:
        super().__init__()
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride) if stride is not None else self.kernel_size
        self.padding = _pair(padding)

    def _unfold(self, x: Tensor) -> Tuple[Tensor, int, int, int, int]:
        n, c, _h, _w = x.shape
        kh, kw = self.kernel_size
        # Pool each channel independently: reshape to (N*C, 1, H, W).
        x_flat = x.reshape(n * c, 1, x.shape[2], x.shape[3])
        cols, out_h, out_w = im2col(x_flat, self.kernel_size, self.stride, self.padding)
        # cols: (kh*kw, N*C*out_h*out_w)
        return cols, n, c, out_h, out_w


class MaxPool2d(_Pool2d):
    def forward(self, x: Tensor) -> Tensor:
        cols, n, c, out_h, out_w = self._unfold(x)
        pooled = cols.max(axis=0)
        pooled = pooled.reshape(out_h * out_w, n * c)
        return pooled.transpose((1, 0)).reshape(n, c, out_h, out_w)


class AvgPool2d(_Pool2d):
    def forward(self, x: Tensor) -> Tensor:
        cols, n, c, out_h, out_w = self._unfold(x)
        pooled = cols.mean(axis=0)
        pooled = pooled.reshape(out_h * out_w, n * c)
        return pooled.transpose((1, 0)).reshape(n, c, out_h, out_w)


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent → ``(N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))


class Downsample2d(Module):
    """Strided 1×1 convolution halving the spatial resolution.

    This is the "downsampling" operation in the header search space; it is
    the standard parameterized alternative to pooling.
    """

    def __init__(
        self,
        channels: int,
        stride: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.conv = Conv2d(channels, channels, kernel_size=1, stride=stride, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.conv(x)
