"""Ablation — the Pareto Front Grid's performance window γ_p.

DESIGN.md calls out the grid method (vs. exact Pareto enumeration) as the
device-matching mechanism.  This ablation sweeps γ_p and reports:

* PFG size (how many candidates survive — the per-query work);
* selection quality: the grid-selected candidate's weighted trade-off
  versus the exact-Pareto-front best (oracle under the same score).

Expected: coarser windows shrink the PFG (cheaper queries) while the
selected candidate's trade-off stays close to the oracle until the window
becomes very coarse.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import emit, emit_json, table
from repro.core.pareto import Candidate, build_pfg, pareto_front, select_model
from repro.core.segmentation import clone_model
from repro.distributed.metrics import NormalizedTradeoff
from repro.hw.energy import energy
from repro.hw.profiles import DeviceProfile
from repro.train import evaluate_model

WINDOWS = (0.05, 0.1, 0.2, 0.4, 0.8)
STORAGE = 40_000


def run_ablation(backbone_result, test_data):
    backbone = backbone_result.backbone
    config = backbone.config
    profile = DeviceProfile.synthesize(0, 5, STORAGE, np.random.default_rng(0))

    candidates = []
    for width in (0.25, 0.5, 0.75, 1.0):
        for depth in range(1, config.depth + 1):
            probe = clone_model(backbone)
            probe.scale(width, depth)
            loss = evaluate_model(probe, test_data, max_batches=3)["loss"]
            joules = energy(profile, width, depth, epochs=5).energy_joules
            candidates.append(
                Candidate(width, depth, (loss, joules, config.zeta(width, depth)))
            )

    tradeoff = NormalizedTradeoff(
        loss_scale=max(c.loss for c in candidates),
        energy_scale=max(c.energy for c in candidates),
        size_scale=max(c.size for c in candidates),
        loss_weight=2.0,
        energy_weight=0.5,
        size_weight=0.5,
    )
    feasible_front = [
        candidates[i]
        for i in pareto_front(candidates)
        if candidates[i].size < STORAGE
    ]
    oracle = min(feasible_front, key=lambda c: tradeoff.score(*c.objectives))
    oracle_score = tradeoff.score(*oracle.objectives)

    rows = []
    for window in WINDOWS:
        pfg = build_pfg(candidates, window)
        chosen = select_model(pfg, STORAGE)
        rows.append(
            {
                "window": window,
                "pfg_size": len(pfg.members),
                "intervals": pfg.num_intervals,
                "selected": f"(w={chosen.width}, d={chosen.depth})",
                "score": tradeoff.score(*chosen.objectives),
                "oracle_gap": tradeoff.score(*chosen.objectives) - oracle_score,
            }
        )
    return rows, oracle_score


def test_ablation_pfg(benchmark, dynamic_backbone, test_data):
    rows, oracle_score = benchmark.pedantic(
        run_ablation, args=(dynamic_backbone, test_data), rounds=1, iterations=1
    )
    lines = table(
        ["γ_p", "PFG size", "K", "selected", "score↓", "gap to oracle"],
        [[r["window"], r["pfg_size"], r["intervals"], r["selected"],
          r["score"], r["oracle_gap"]] for r in rows],
    )
    lines.append(f"oracle (exact front, weighted score): {oracle_score:.4f}")
    emit("ablation_pfg", lines)
    emit_json("ablation_pfg", {"rows": rows, "oracle": oracle_score})

    # Moderate windows shrink the PFG below the fine-window size.  (At
    # very coarse windows cell-ties can re-inflate membership, so strict
    # monotonicity is not asserted.)
    sizes = [r["pfg_size"] for r in rows]
    assert min(sizes[1:4]) < sizes[0]
    # Fine windows track the oracle closely.
    assert rows[0]["oracle_gap"] <= 0.2
    # Every selection is feasible and within a bounded factor of oracle.
    for r in rows:
        assert r["oracle_gap"] <= 0.8
