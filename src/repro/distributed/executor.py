"""Deterministic parallel execution for the embarrassingly parallel phases.

The cluster dimension of the ACME protocol — per-device finalize/eval,
importance rounds, similarity feature extraction, NAS child scoring — is
a fan-out of independent tasks.  :func:`parallel_map` runs such a fan-out
on a thread pool while preserving the three properties the protocol
tests rely on:

* **deterministic result ordering** — results come back in input order,
  never completion order, so downstream aggregation (similarity rows,
  importance stacking, message sequences) is bit-identical to the
  serial loop;
* **engine-state propagation** — the caller's :mod:`contextvars` context
  (grad mode, compute dtype — see :mod:`repro.nn.tensor`) is captured at
  submit time and entered by each worker, so a float32 / ``no_grad``
  system run stays float32 / tape-free inside its workers while staying
  isolated from unrelated threads;
* **serial fallback** — ``max_workers`` of ``None``, 0 or 1 runs the
  plain loop in the calling thread with zero thread overhead, which is
  also the reference behavior parallel runs are asserted against.

Worker counts: pass an explicit positive integer, or ``-1`` /
``"auto"`` to use the host's CPU count.

Backends: ``backend="thread"`` (default) overlaps the GIL-releasing
numpy kernels (BLAS matmuls, ufuncs, sorts) — the right fit for
inference-heavy fan-outs.  ``backend="process"`` forks a worker pool
(:mod:`repro.distributed.procpool`) so the *tape-bound* phases, whose
Python-level autograd bookkeeping holds the GIL, scale past it; the
caller can designate per-item tensors to share write-through via
``shared_params`` (mapped zero-copy over ``multiprocessing.shared_memory``).
Both backends produce bit-for-bit the results of the serial loop; on a
single-core host they degrade gracefully to roughly serial wall-clock
with identical results.  ``backend="process"`` silently downgrades to
threads inside a pool worker (no nested forking) and on platforms
without the ``fork`` start method.
"""

from __future__ import annotations

import contextvars
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

from repro.distributed.procpool import ExecutorError  # noqa: F401  (re-export)

T = TypeVar("T")
R = TypeVar("R")

WorkerSpec = Union[int, str, None]

#: Executor backends accepted everywhere a ``backend`` knob exists
#: (``parallel_map``, ``ACMEConfig``, ``repro-cli run --backend``).
BACKENDS = ("thread", "process")


def resolve_backend(backend: Optional[str]) -> str:
    """Validate a backend spec (``None`` means the thread default)."""
    if backend is None:
        return "thread"
    if backend not in BACKENDS:
        raise ValueError(f"unknown executor backend {backend!r}; use one of {BACKENDS}")
    return backend


def resolve_workers(max_workers: WorkerSpec, num_tasks: Optional[int] = None) -> int:
    """Normalize a worker spec to an effective worker count.

    ``None`` / ``0`` / ``1`` mean serial; exactly ``-1`` or ``"auto"``
    mean the host CPU count (other negatives raise, so a typo cannot
    silently oversubscribe a shared machine); positive integers pass
    through.  When ``num_tasks`` is given the count is clamped to it
    (no idle workers).
    """
    if max_workers is None:
        workers = 1
    elif isinstance(max_workers, str):
        if max_workers != "auto":
            raise ValueError(f"unknown worker spec {max_workers!r}; use 'auto' or an int")
        workers = os.cpu_count() or 1
    else:
        workers = int(max_workers)
        if workers == -1:
            workers = os.cpu_count() or 1
        elif workers < 0:
            raise ValueError(
                f"invalid worker count {workers}; use -1 or 'auto' for the CPU count"
            )
        elif workers == 0:
            workers = 1
    if num_tasks is not None:
        workers = min(workers, max(1, num_tasks))
    return max(1, workers)


def split_worker_budget(
    outer: WorkerSpec,
    inner: WorkerSpec,
    num_outer_tasks: Optional[int] = None,
    budget: Optional[int] = None,
    inner_backend: str = "thread",
) -> "tuple[int, WorkerSpec]":
    """Split a thread budget between an outer fan-out and its nested one.

    The cross-edge cluster loop composes with the per-device fan-outs:
    ``parallel_edges`` workers each run an edge pipeline that itself
    fans out across ``parallel_devices`` workers.  Naively resolving
    both to the CPU count squares the thread count; this helper keeps
    the product within ``budget`` (default: host CPU count) by capping
    the *nested* width at ``budget // outer_workers`` — the outer tier
    wins because edge pipelines are the longer, coarser-grained tasks.

    Returns ``(outer_workers, inner_spec)``.  The inner spec passes
    through untouched whenever no capping is needed: when the outer
    fan-out is serial, when the inner one is serial/unset, or when the
    requested product already fits the budget.  ``resolve_workers``
    semantics apply to both specs (``None``/0/1 serial, ``-1``/"auto"
    = CPU count).

    ``inner_backend`` makes the split backend-aware: thread workers may
    exceed the core budget when the outer fan-out is serial (harmless —
    the GIL-releasing kernels just time-slice), but **process** workers
    each occupy a full core and cost a fork plus a private heap, so an
    inner ``backend="process"`` width is clamped to the budget even
    with no outer fan-out around it.
    """
    inner_backend = resolve_backend(inner_backend)
    if budget is None:
        budget = os.cpu_count() or 1
    outer_workers = resolve_workers(outer, num_tasks=num_outer_tasks)
    if outer_workers <= 1:
        if inner_backend == "process":
            inner_workers = resolve_workers(inner)
            if inner_workers > 1:
                return outer_workers, min(inner_workers, max(1, budget))
        return outer_workers, inner
    inner_workers = resolve_workers(inner)
    if inner_workers <= 1:
        return outer_workers, inner
    capped = max(1, budget // outer_workers)
    return outer_workers, min(inner_workers, capped)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: WorkerSpec = None,
    serial_if_stochastic: Sequence[object] = (),
    backend: str = "thread",
    shared_params: Optional[Sequence[Sequence[object]]] = None,
) -> List[R]:
    """Apply ``fn`` to every item, possibly across threads or processes.

    Results are returned in input order regardless of completion order.
    Each task runs inside a copy of the caller's ``contextvars`` context,
    so engine settings scoped at the call site (``using_dtype``,
    ``no_grad``) apply to the workers.  The first raised exception
    propagates to the caller.

    ``serial_if_stochastic`` names modules the tasks will forward
    through **concurrently** (a shared backbone, pooled NAS ops, …).
    If any of them would consume module-local RNG during a forward
    (training-mode dropout — see
    :func:`repro.nn.layers.has_active_stochastic_modules`), the call
    drops to serial: concurrent draws from one numpy generator are
    neither deterministic nor safe, and every fan-out site gets that
    guard from here instead of re-implementing it.

    ``backend="process"`` runs the fan-out on a forked worker pool
    (:mod:`repro.distributed.procpool`): tasks whose bottleneck is
    Python-level autograd bookkeeping scale past the GIL, at the price
    of a fork per pool.  ``shared_params`` (aligned with ``items``)
    names the tensors each task mutates; they are mapped write-through
    into the workers over ``multiprocessing.shared_memory`` and
    restored to private heap arrays after the join.  Thread and serial
    backends ignore ``shared_params`` — threads share memory natively.
    A worker crash raises :class:`ExecutorError`; task exceptions
    re-raise as themselves, like the thread backend.
    """
    backend = resolve_backend(backend)
    if serial_if_stochastic:
        from repro.nn.layers import has_active_stochastic_modules

        if any(has_active_stochastic_modules(m) for m in serial_if_stochastic):
            max_workers = None
    items = list(items)
    workers = resolve_workers(max_workers, num_tasks=len(items))
    if backend == "process":
        from repro.distributed import procpool

        if procpool.in_worker() or not procpool.fork_available():
            backend = "thread"
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if backend == "process":
        from repro.distributed import procpool

        return procpool.process_map(fn, items, workers, shared_params=shared_params)
    # One context snapshot per task: tasks must not observe each other's
    # engine-state mutations, only the caller's state at submit time.
    contexts = [contextvars.copy_context() for _ in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(ctx.run, fn, item) for ctx, item in zip(contexts, items)
        ]
        return [future.result() for future in futures]


def parallel_starmap(
    fn: Callable[..., R],
    argument_tuples: Sequence[tuple],
    max_workers: WorkerSpec = None,
    serial_if_stochastic: Sequence[object] = (),
    backend: str = "thread",
    shared_params: Optional[Sequence[Sequence[object]]] = None,
) -> List[R]:
    """:func:`parallel_map` for callables taking multiple arguments.

    Forwards ``serial_if_stochastic`` (historically dropped here, so
    starmap call sites silently lost the dropout-safety fallback),
    ``backend`` and ``shared_params`` unchanged.
    """
    return parallel_map(
        lambda args: fn(*args),
        list(argument_tuples),
        max_workers,
        serial_if_stochastic=serial_if_stochastic,
        backend=backend,
        shared_params=shared_params,
    )
