"""The bidirectional single-loop distributed system (cloud/edge/device)."""

from repro.distributed.cloud import CloudConfig, CloudServer
from repro.distributed.device import DeviceNode
from repro.distributed.edge import EdgeConfig, EdgeServer
from repro.distributed.executor import (
    WorkerSpec,
    parallel_map,
    parallel_starmap,
    resolve_workers,
)
from repro.distributed.messages import Message, MessageKind, payload_nbytes
from repro.distributed.metrics import (
    NormalizedTradeoff,
    centralized_upload_bytes,
    energy_efficiency_ratio,
    relative_upload,
    size_efficiency_ratio,
)
from repro.distributed.network import Network, TrafficStats
from repro.distributed.system import (
    ACMEConfig,
    ACMERunResult,
    ACMESystem,
    ClusterResult,
)

__all__ = [
    "ACMEConfig",
    "ACMERunResult",
    "ACMESystem",
    "CloudConfig",
    "CloudServer",
    "ClusterResult",
    "DeviceNode",
    "EdgeConfig",
    "EdgeServer",
    "Message",
    "MessageKind",
    "Network",
    "NormalizedTradeoff",
    "TrafficStats",
    "WorkerSpec",
    "centralized_upload_bytes",
    "energy_efficiency_ratio",
    "parallel_map",
    "parallel_starmap",
    "payload_nbytes",
    "relative_upload",
    "resolve_workers",
    "size_efficiency_ratio",
]
