"""Backbone generation (§III-B1, Algorithm 1 steps 2-4).

From the reference backbone θB_0 the cloud produces the dynamic backbone
θB in two steps:

1. **Width segmentation** — score heads and neurons with first-order Taylor
   importance on the probe set ``D_C`` (Eqs. 6-8) and install the resulting
   keep-orders, yielding ``´θB`` whose width is adjustable at any
   ``w ∈ (0, 1]``.
2. **Depth dynamics via distillation** — train a student copy under sampled
   (w, d) configurations with the Eq. (9) objective, yielding ``θB`` that is
   dynamic in both width W_B and depth D_B.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.distill import DistillConfig, DistillReport, distill
from repro.core.importance import BackboneImportance, estimate_backbone_importance
from repro.data.dataset import ArrayDataset
from repro.models.vit import VisionTransformer


@dataclass
class BackboneGenerationResult:
    """Output of backbone generation.

    Attributes
    ----------
    backbone:
        The dynamic backbone θB (full configuration active).
    importance:
        The Taylor importance scores that determined the width orders.
    distill_report:
        Loss trace of the Eq. (9) distillation.
    """

    backbone: VisionTransformer
    importance: BackboneImportance
    distill_report: DistillReport


def clone_model(model: VisionTransformer) -> VisionTransformer:
    """Deep copy of a ViT (weights, masks and importance orders)."""
    clone = VisionTransformer(model.config, seed=0)
    clone.load_state_dict(model.state_dict())
    clone.set_importance_orders(
        head_orders=[o.copy() for o in model._head_orders],
        neuron_orders=[o.copy() for o in model._neuron_orders],
    )
    clone.scale(model.width, model.depth)
    return clone


def generate_backbone(
    reference: VisionTransformer,
    probe: ArrayDataset,
    distill_config: Optional[DistillConfig] = None,
    importance_batches: int = 8,
    seed: int = 0,
) -> BackboneGenerationResult:
    """Produce the dynamic backbone θB from the reference θ0.

    Parameters
    ----------
    reference:
        The pre-trained reference model θ0 (it is not modified).
    probe:
        The small cloud dataset D_C used for importance estimation and
        distillation.
    """
    # Step 1: importance scoring → ´θB (width-adjustable teacher).
    importance = estimate_backbone_importance(
        reference, probe, max_batches=importance_batches, seed=seed
    )
    teacher = clone_model(reference)
    teacher.set_importance_orders(
        head_orders=importance.head_orders(),
        neuron_orders=importance.neuron_orders(),
    )

    # Step 2: distill into a width+depth dynamic student θB.
    student = clone_model(teacher)
    report = distill(teacher, student, probe, config=distill_config)
    return BackboneGenerationResult(
        backbone=student, importance=importance, distill_report=report
    )
