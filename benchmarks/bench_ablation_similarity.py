"""Ablation — the similarity-softmax temperature (Eq. 20 instantiation).

DESIGN.md documents one deliberate deviation: Eq. (20)'s plain exponential
normalization is applied at a sub-unit temperature because this
reproduction's feature spreads are smaller than ViT-B's.  This ablation
quantifies that choice: the block contrast of the similarity weights on
the planted two-group layout of Fig. 10, across temperatures.

Expected: at temperature 1.0 (Eq. 20 verbatim) the weights are nearly
uniform; contrast rises as temperature drops; very low temperatures
saturate.  The default (0.05) sits in the high-contrast regime.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import emit, emit_json, table
from repro.core.similarity import (
    distance_matrix,
    extract_features,
    regularize_similarity,
    similarity_from_distances,
)
from repro.data import partition_two_groups

TEMPERATURES = (1.0, 0.5, 0.2, 0.1, 0.05, 0.02)


def _contrast(matrix: np.ndarray) -> float:
    groups = [(0, 1, 2), (3, 4)]
    same, cross = [], []
    for a in range(5):
        for b in range(5):
            if a == b:
                continue
            in_same = any(a in g and b in g for g in groups)
            (same if in_same else cross).append(matrix[a, b])
    return float(np.mean(same) - np.mean(cross))


def run_ablation(reference_model, cifar_like):
    data = cifar_like.generate(samples_per_class=30, seed=7, name="ablation-sim")
    devices = partition_two_groups(data, (3, 2), np.random.default_rng(0))
    features = [
        extract_features(reference_model, d, max_samples=24, seed=i)
        for i, d in enumerate(devices)
    ]
    similarity = similarity_from_distances(
        distance_matrix(features, metric="wasserstein", seed=0)
    )
    rows = []
    for temperature in TEMPERATURES:
        weights = regularize_similarity(similarity, temperature=temperature)
        rows.append({"temperature": temperature, "contrast": _contrast(weights)})
    return rows


def test_ablation_similarity_temperature(benchmark, reference_model, cifar_like):
    rows = benchmark.pedantic(
        run_ablation, args=(reference_model, cifar_like), rounds=1, iterations=1
    )
    lines = table(
        ["temperature", "block contrast"],
        [[r["temperature"], r["contrast"]] for r in rows],
    )
    lines.append("default used by the aggregation path: 0.05")
    emit("ablation_similarity", lines)
    emit_json("ablation_similarity", rows)

    contrasts = {r["temperature"]: r["contrast"] for r in rows}
    # Contrast grows monotonically as temperature drops through the range.
    ordered = [contrasts[t] for t in TEMPERATURES]
    assert all(b >= a - 1e-6 for a, b in zip(ordered, ordered[1:]))
    # Eq. (20) verbatim is near-uniform here; the default is far sharper.
    assert contrasts[0.05] > 3 * max(contrasts[1.0], 1e-6)
