"""Transport layer: loopback identity, TCP parity, liveness, recovery.

The acceptance contract of the pluggable transport (ISSUE PR 8):

* ``LoopbackTransport`` is the existing in-process fabric, bit-for-bit —
  it adds nothing to the loopback path.
* A seeded 2-edge campaign over real TCP processes reproduces the
  loopback run's ``kind_sequence()``, traffic ledger and final
  accuracies exactly.
* Endpoint liveness: heartbeats detect a silent peer; a killed hub
  surfaces as ``TransportFailure`` → fabric fault → ``DeliveryError``
  after bounded retries — never a hang; a restarted hub is rejoined via
  capped-backoff reconnect with idempotent re-registration.
"""

import multiprocessing
import threading
import time

import pytest

from repro.distributed.faults import DeliveryError
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import Network
from repro.distributed.system import ACMEConfig, ACMESystem, run_multiprocess
from repro.distributed.transport import (
    LoopbackTransport,
    TcpTransport,
    TransportConfig,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _config(**overrides) -> ACMEConfig:
    base = dict(
        num_clusters=2,
        devices_per_cluster=3,
        num_classes=6,
        samples_per_class=18,
        compute_dtype="float64",
        seed=0,
    )
    base.update(overrides)
    return ACMEConfig(**base)


def _fast_tcfg(**overrides) -> TransportConfig:
    base = dict(
        heartbeat_interval=0.05,
        heartbeat_misses=4,
        request_timeout=10.0,
        connect_timeout=2.0,
        reconnect_backoff=0.01,
        reconnect_backoff_cap=0.05,
        reconnect_attempts=3,
    )
    base.update(overrides)
    return TransportConfig(**base)


class _Echo:
    """A registrable node that answers every message with an ACK."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.seen = []

    def handle(self, message: Message) -> Message:
        self.seen.append(message.kind)
        return Message(self.name, message.sender, MessageKind.ACK)


class TestLoopbackTransport:
    def test_wraps_plain_network(self):
        transport = LoopbackTransport()
        assert type(transport.network) is Network
        transport.start()
        transport.close()  # both no-ops

    def test_accepts_existing_network(self):
        network = Network()
        assert LoopbackTransport(network).network is network

    def test_system_runs_unchanged_over_loopback_transport(self):
        from repro.distributed.cloud import CloudServer
        from repro.distributed.system import (
            build_cluster,
            build_fleet_data,
            run_edge_phases,
        )
        from repro.models.vit import VisionTransformer
        from repro.nn.tensor import using_dtype

        cfg = _config(num_clusters=1, devices_per_cluster=2)
        transport = LoopbackTransport()
        with using_dtype(cfg.compute_dtype):
            data = build_fleet_data(cfg)
            cloud = CloudServer(
                VisionTransformer(cfg.vit, seed=cfg.seed),
                data.public_dataset,
                transport.network,
                cfg.cloud,
            )
            cloud.pretrain_reference()
            cloud.generate_dynamic_backbone()
            cloud.prepare_candidates()
            edge = build_cluster(cfg, data, 0, transport.network)
            transport.start()
            result = run_edge_phases(cfg, edge)
        transport.close()
        assert result.device_accuracies
        assert all(p == 1.0 for p in result.round_participation)


class TestRegisterIdempotency:
    """Satellite 2: re-registering the same handler identity is a no-op."""

    def test_same_bound_method_reregisters(self):
        network = Network()
        node = _Echo("n0")
        network.register("n0", node.handle)
        # ``node.handle`` is a fresh bound-method object every access;
        # idempotency must compare identity by ==, not ``is``.
        network.register("n0", node.handle)
        assert network.is_registered("n0")

    def test_same_function_reregisters(self):
        network = Network()

        def handler(message):
            return None

        network.register("n1", handler)
        network.register("n1", handler)

    def test_different_handler_still_collides(self):
        network = Network()
        network.register("n2", _Echo("n2").handle)
        with pytest.raises(ValueError, match="already registered"):
            network.register("n2", _Echo("other").handle)


class TestTcpEndpoints:
    """Endpoint-level liveness and recovery, no ACME protocol involved."""

    def _hub_and_link(self, tcfg=None, link_nodes=("edge-n",)):
        tcfg = tcfg or _fast_tcfg()
        hub = TcpTransport.serve("hub", tcfg)
        cloud = _Echo("cloud-n")
        hub.network.register("cloud-n", cloud.handle)
        link = TcpTransport.connect("link", tcfg.host, hub.port, tcfg)
        nodes = []
        for name in link_nodes:
            node = _Echo(name)
            link.network.register(name, node.handle)
            nodes.append(node)
        link.start()
        return hub, link, cloud, nodes

    def test_request_reply_both_directions(self):
        hub, link, cloud, (edge,) = self._hub_and_link()
        try:
            # edge → cloud (through the link's recording fabric).
            reply = link.network.send(
                Message("edge-n", "cloud-n", MessageKind.CLUSTER_STATS, {"stats": {}})
            )
            assert reply is not None and reply.kind is MessageKind.ACK
            assert cloud.seen == [MessageKind.CLUSTER_STATS]
            # cloud → edge (transparent relay through the hub).
            reply = hub.network.send(
                Message("cloud-n", "edge-n", MessageKind.ACK)
            )
            assert reply is not None and reply.kind is MessageKind.ACK
            assert edge.seen == [MessageKind.ACK]
        finally:
            link.close()
            hub.close()

    def test_edge_ledger_records_both_directions_hub_records_nothing(self):
        hub, link, cloud, (edge,) = self._hub_and_link()
        try:
            link.network.send(
                Message("edge-n", "cloud-n", MessageKind.CLUSTER_STATS, {"stats": {}})
            )
            hub.network.send(Message("cloud-n", "edge-n", MessageKind.ACK))
            assert link.network.kind_sequence() == ["cluster_stats", "ack"]
            assert hub.network.kind_sequence() == []
            assert hub.network.stats.message_count == 0
        finally:
            link.close()
            hub.close()

    def test_unknown_receiver_raises_keyerror_across_the_wire(self):
        hub, link, _cloud, _ = self._hub_and_link()
        try:
            with pytest.raises(KeyError):
                link.network.send(Message("edge-n", "cloud-n", MessageKind.ACK))
                # cloud-n is registered; ghost is not, anywhere:
                link.network.send(Message("edge-n", "ghost", MessageKind.ACK))
        finally:
            link.close()
            hub.close()

    def test_dead_hub_becomes_delivery_error_not_hang(self):
        hub, link, _cloud, _ = self._hub_and_link()
        hub.close()
        try:
            start = time.monotonic()
            with pytest.raises(DeliveryError):
                link.network.send_reliable(
                    Message("edge-n", "cloud-n", MessageKind.ACK), retries=1
                )
            assert time.monotonic() - start < 30.0
            # The fabric recorded the transport failures as faults.
            counts = link.network.fault_counts()
            assert counts.get("crash", 0) >= 1
            assert link.network.failed_deliveries == 1
        finally:
            link.close()

    def test_reconnect_after_hub_restart_reregisters_idempotently(self):
        tcfg = _fast_tcfg(reconnect_attempts=6, reconnect_backoff_cap=0.2)
        hub, link, _cloud, _ = self._hub_and_link(tcfg)
        try:
            assert link.network.send(
                Message("edge-n", "cloud-n", MessageKind.ACK)
            )
            port = hub.port
            hub.close()
            # Restart a hub on the same port; the link's next send must
            # re-dial (capped backoff) and replay its hello registration.
            time.sleep(0.1)
            hub2 = TcpTransport.serve("hub", _fast_tcfg(port=port))
            cloud2 = _Echo("cloud-n")
            hub2.network.register("cloud-n", cloud2.handle)
            try:
                reply = link.network.send_reliable(
                    Message("edge-n", "cloud-n", MessageKind.ACK), retries=5
                )
                assert reply is not None
                assert cloud2.seen[-1] is MessageKind.ACK
                assert hub2.endpoint.routes("edge-n")
            finally:
                hub2.close()
        finally:
            link.close()
            hub.close()

    def test_silent_peer_pruned_after_heartbeat_misses(self):
        tcfg = _fast_tcfg(heartbeat_interval=0.05, heartbeat_misses=3)
        hub = TcpTransport.serve("hub", tcfg)
        try:
            import socket

            # A raw socket that says hello and then goes silent forever.
            from repro.distributed import wire

            sock = socket.create_connection(("127.0.0.1", hub.port))
            sock.sendall(
                wire.frame(
                    wire.encode_value(
                        {"t": "hello", "peer": "zombie", "nodes": ["z0"]}
                    )
                )
            )
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline and "zombie" not in hub.endpoint.peers():
                time.sleep(0.02)
            assert "zombie" in hub.endpoint.peers()
            # No heartbeats arrive; the hub must declare it dead.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and "zombie" in hub.endpoint.peers():
                time.sleep(0.05)
            assert "zombie" not in hub.endpoint.peers()
            assert not hub.endpoint.routes("z0")
            sock.close()
        finally:
            hub.close()

    def test_heartbeats_keep_an_idle_link_alive(self):
        tcfg = _fast_tcfg(heartbeat_interval=0.05, heartbeat_misses=4)
        hub, link, cloud, _ = self._hub_and_link(tcfg)
        try:
            # Idle for many miss-windows; heartbeats must keep both ends up.
            time.sleep(0.05 * 4 * 3)
            assert "link" in hub.endpoint.peers()
            reply = link.network.send(
                Message("edge-n", "cloud-n", MessageKind.ACK)
            )
            assert reply is not None
        finally:
            link.close()
            hub.close()

    def test_concurrent_inbound_requests_serialize_on_handler_pool(self):
        hub, link, cloud, _ = self._hub_and_link(link_nodes=("e0", "e1"))
        try:
            errors = []

            def blast(sender):
                try:
                    for _ in range(10):
                        assert link.network.send(
                            Message(sender, "cloud-n", MessageKind.ACK)
                        )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=blast, args=(f"e{i}",)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors
            assert len(cloud.seen) == 20
        finally:
            link.close()
            hub.close()


class TestTcpSystemParity:
    """The acceptance bar: a seeded TCP campaign == the loopback campaign."""

    @pytest.fixture(scope="class")
    def runs(self):
        cfg = _config()
        loop = ACMESystem(cfg).run()
        mp = run_multiprocess(cfg, edge_timeout=300.0)
        return loop, mp

    def test_kind_sequence_identical(self, runs):
        loop, mp = runs
        assert mp.message_kinds == loop.message_kinds
        assert mp.edge_message_kinds == loop.edge_message_kinds

    def test_accuracies_bit_identical(self, runs):
        loop, mp = runs
        for got, want in zip(mp.clusters, loop.clusters):
            assert got.edge_name == want.edge_name
            assert got.width == want.width and got.depth == want.depth
            assert got.device_accuracies == want.device_accuracies
            assert got.device_losses == want.device_losses
            assert got.round_participation == want.round_participation

    def test_traffic_ledger_identical(self, runs):
        loop, mp = runs
        assert mp.traffic.total_bytes == loop.traffic.total_bytes
        assert mp.traffic.upload_bytes == loop.traffic.upload_bytes
        assert mp.traffic.download_bytes == loop.traffic.download_bytes
        assert dict(mp.traffic.by_kind) == dict(loop.traffic.by_kind)
        assert dict(mp.traffic.by_pair) == dict(loop.traffic.by_pair)
        assert mp.centralized_upload_bytes == loop.centralized_upload_bytes

    def test_delivery_counters_identical(self, runs):
        loop, mp = runs
        assert mp.fault_counts == loop.fault_counts == {}
        assert mp.delivery_attempts == loop.delivery_attempts
        assert mp.total_retries == loop.total_retries == 0
        assert mp.failed_deliveries == loop.failed_deliveries == 0

    def test_no_child_processes_leak(self, runs):
        _ = runs
        assert multiprocessing.active_children() == []
