"""Personalized architecture aggregation (Eqs. 19-21, Algorithm 2).

The edge-device single loop of Phase 2-2: every round, each device
computes its importance set ``Q_n`` on local data; the edge server forms
each device's personalized set as the similarity-weighted convex
combination

.. math:: Q'_n = \\sum_{i∈N_s} ŵ_{n,i} Q_i

and devices prune their headers by ``Q'_n``.  Four aggregation variants
reproduce the Fig. 11 comparison:

* ``alone``  — no collaboration: ``Q'_n = Q_n``;
* ``average``— uniform weights (FedAvg-style);
* ``js``     — weights from Jensen-Shannon similarity;
* ``ours``   — weights from Wasserstein similarity (ACME).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.header_importance import (
    ImportanceConfig,
    compute_importance_set,
    prune_by_importance,
)
from repro.core.similarity import build_similarity_matrix
from repro.data.dataset import ArrayDataset
from repro.models.header_dag import DAGHeader
from repro.models.vit import VisionTransformer

AGGREGATION_METHODS = ("alone", "average", "js", "ours")


def aggregation_weights(
    method: str,
    num_devices: int,
    backbone: Optional[VisionTransformer] = None,
    datasets: Optional[Sequence[ArrayDataset]] = None,
    seed: int = 0,
    max_workers: Union[int, str, None] = None,
    backend: str = "thread",
) -> np.ndarray:
    """Row-stochastic weight matrix Ŵ for one aggregation method.

    ``max_workers`` fans the per-device feature extraction of the
    similarity-based methods out across executor workers — ``backend``
    selects threads or forked processes (same contract as
    :func:`repro.core.similarity.build_similarity_matrix`: any worker
    count and either backend yields the same matrix).
    """
    if method not in AGGREGATION_METHODS:
        raise ValueError(f"unknown method {method!r}; options: {AGGREGATION_METHODS}")
    if method == "alone":
        return np.eye(num_devices)
    if method == "average":
        return np.full((num_devices, num_devices), 1.0 / num_devices)
    if backbone is None or datasets is None:
        raise ValueError(f"method {method!r} needs a backbone and device datasets")
    metric = "wasserstein" if method == "ours" else "js"
    return build_similarity_matrix(
        backbone,
        list(datasets),
        metric=metric,
        seed=seed,
        max_workers=max_workers,
        backend=backend,
    )


def _accumulate_weighted(
    weight_rows: np.ndarray, sets: Sequence[np.ndarray]
) -> np.ndarray:
    """The one accumulation kernel behind every aggregation path.

    Computes ``out[i] = Σ_j weight_rows[i, j] · sets[j]`` as a running
    sum over ``j`` — one elementwise multiply-add per incoming set.
    Because the per-cell arithmetic is an independent scalar chain
    ``acc += w · q`` in a fixed ``j`` order, the result is bit-for-bit
    identical whether the rows are accumulated all at once (the batch
    functions below), one output row at a time, or one *input* set at a
    time (:class:`StreamingAggregator`, which never materializes the
    ``(n, R)`` stack).  A BLAS ``w @ stacked`` product would not give
    that guarantee — dgemv's blocked accumulation order differs from the
    running sum — which is why every caller funnels through here.
    """
    num_rows = weight_rows.shape[0]
    length = sets[0].size if sets else 0
    out = np.zeros((num_rows, length), dtype=np.float64)
    for j, q in enumerate(sets):
        out += weight_rows[:, j : j + 1] * q[np.newaxis, :]
    return out


def aggregate_importance_sets(
    importance_sets: Sequence[np.ndarray], weights: np.ndarray
) -> List[np.ndarray]:
    """Eq. (21): personalized sets ``Q'_n = Σ_i ŵ_{n,i} Q_i``."""
    sets = [np.asarray(q, dtype=np.float64) for q in importance_sets]
    n = len(sets)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (n, n):
        raise ValueError(f"weights shape {weights.shape} != ({n}, {n})")
    if not np.allclose(weights.sum(axis=1), 1.0, atol=1e-6):
        raise ValueError("weight rows must sum to 1 (convex combination)")
    length = sets[0].size
    if any(q.size != length for q in sets):
        raise ValueError("importance sets must share a length to aggregate")
    out = _accumulate_weighted(weights, sets)
    return [out[i] for i in range(n)]


def aggregate_importance_subset(
    importance_sets: Sequence[np.ndarray],
    weights: np.ndarray,
    rows: Sequence[int],
    cols: Sequence[int],
) -> List[np.ndarray]:
    """Eq. (21) restricted to the cluster members present this round.

    Degraded-mode aggregation: ``cols`` are the full-cluster indices
    whose sets are available (``importance_sets``, in the same order)
    and ``rows`` the indices to produce personalized sets for.  Each
    row of the full ``(n, n)`` weight matrix is masked to the present
    columns and renormalized, so every ``Q'_n`` stays a convex
    combination — of whoever showed up.  A row with no weight on any
    present member falls back to uniform weights over them.

    With every member present this reduces to
    :func:`aggregate_importance_sets` exactly (the mask keeps all
    columns and the renormalization divides by 1); callers on the
    fault-free path still use the full function so its validation —
    and its bit-for-bit arithmetic — is untouched.
    """
    if len(cols) != len(importance_sets):
        raise ValueError(
            f"{len(importance_sets)} importance sets for {len(cols)} present members"
        )
    if not importance_sets:
        raise ValueError("cannot aggregate an empty round: no member present")
    sets = [np.asarray(q, dtype=np.float64) for q in importance_sets]
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.shape[0]
    if weights.shape != (n, n):
        raise ValueError(f"weights must be square, got {weights.shape}")
    if not np.allclose(weights.sum(axis=1), 1.0, atol=1e-6):
        raise ValueError("weight rows must sum to 1 (convex combination)")
    col_index = np.asarray(cols, dtype=int)
    masked = np.stack([_masked_row(weights[i], col_index) for i in rows])
    out = _accumulate_weighted(masked, sets)
    return [out[k] for k in range(len(rows))]


def _masked_row(row: np.ndarray, col_index: np.ndarray) -> np.ndarray:
    """One weight row masked to the present columns and renormalized.

    Shared by :func:`aggregate_importance_subset` and
    :class:`StreamingAggregator` so both compute bit-identical weights.
    """
    w = row[col_index]
    total = w.sum()
    if total <= 0.0:
        return np.full(len(col_index), 1.0 / len(col_index))
    return w / total


class StreamingAggregator:
    """O(1)-memory streaming form of Eq. (21) for fleet-scale rounds.

    The batch functions above stack every member's importance set into an
    ``(n, R)`` matrix before aggregating — at 10⁴–10⁶ devices that stack
    *is* the memory bill.  This class consumes importance messages one at
    a time into a running-sum accumulator of shape ``(rows, R)``, so the
    edge holds one personalized-set accumulator (plus one weight row per
    requested output) regardless of how many members report.

    Parity contract: with ``cols=None`` the finalized rows are bit-for-bit
    equal (float64) to :func:`aggregate_importance_sets`; with an explicit
    ``cols`` subset they are bit-for-bit equal to
    :func:`aggregate_importance_subset` — both by construction, since all
    three paths share :func:`_accumulate_weighted` and the subset paths
    share :func:`_masked_row` (asserted in
    ``tests/core/test_aggregation_streaming.py``).

    Parameters
    ----------
    weights:
        Either the full square ``(n, n)`` row-stochastic matrix (validated
        like the batch path) or a pre-sliced ``(len(rows), n)`` block of
        its rows — the O(rows · n) form a million-device edge passes so
        the square matrix never exists.
    rows:
        Full-matrix row indices to produce personalized sets for, in
        output order.  Required when ``weights`` is square and a subset is
        wanted; must be ``None`` when ``weights`` is pre-sliced.
    cols:
        The full-cluster indices whose sets will arrive — **in arrival
        order** — or ``None`` for "all ``n`` members, in index order"
        (the fault-free path, no renormalization, matching
        :func:`aggregate_importance_sets` exactly).  With an explicit
        subset each weight row is masked and renormalized up front, so
        the stream can be consumed without waiting for the round to end.
    """

    def __init__(
        self,
        weights: np.ndarray,
        rows: Optional[Sequence[int]] = None,
        cols: Optional[Sequence[int]] = None,
    ) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        self.num_members = int(weights.shape[1])
        square = weights.shape[0] == self.num_members and rows is None
        if rows is not None:
            if weights.shape[0] != self.num_members:
                raise ValueError(
                    "rows indices only apply to a square weight matrix; "
                    f"got shape {weights.shape} with rows={list(rows)}"
                )
            weight_rows = weights[np.asarray(rows, dtype=int)]
        else:
            weight_rows = weights
        if square or rows is not None:
            if not np.allclose(weights.sum(axis=1), 1.0, atol=1e-6):
                raise ValueError("weight rows must sum to 1 (convex combination)")
        if cols is None:
            self._cols = np.arange(self.num_members)
            self._weight_rows = weight_rows
        else:
            self._cols = np.asarray(cols, dtype=int)
            if len(self._cols) == 0:
                raise ValueError(
                    "cannot aggregate an empty round: no member present"
                )
            self._weight_rows = np.stack(
                [_masked_row(row, self._cols) for row in weight_rows]
            )
        self._acc: Optional[np.ndarray] = None
        self._consumed = 0

    @property
    def expected(self) -> int:
        """How many sets this round will consume."""
        return len(self._cols)

    @property
    def consumed(self) -> int:
        return self._consumed

    def consume(self, col: int, importance: np.ndarray) -> None:
        """Fold one member's importance set into the running sums.

        ``col`` is the member's full-cluster index; sets must arrive in
        the constructor's ``cols`` order (the determinism contract — the
        running sum's accumulation order defines the result's bits).
        """
        if self._consumed >= len(self._cols):
            raise ValueError(
                f"round already complete: {self._consumed} sets consumed"
            )
        expected_col = int(self._cols[self._consumed])
        if int(col) != expected_col:
            raise ValueError(
                f"out-of-order set: got member {col}, expected member "
                f"{expected_col} (arrival position {self._consumed}); "
                f"streaming aggregation is order-deterministic"
            )
        q = np.asarray(importance, dtype=np.float64).reshape(-1)
        if self._acc is None:
            self._acc = np.zeros(
                (self._weight_rows.shape[0], q.size), dtype=np.float64
            )
        elif q.size != self._acc.shape[1]:
            raise ValueError(
                f"importance set length {q.size} != {self._acc.shape[1]}"
            )
        j = self._consumed
        self._acc += self._weight_rows[:, j : j + 1] * q[np.newaxis, :]
        self._consumed += 1

    def finalize(self) -> List[np.ndarray]:
        """The personalized sets, one per requested row, in row order."""
        if self._consumed != len(self._cols):
            raise ValueError(
                f"round incomplete: {self._consumed} of {len(self._cols)} "
                f"sets consumed"
            )
        assert self._acc is not None
        return [self._acc[k] for k in range(self._acc.shape[0])]


@dataclass
class AggregationRoundRecord:
    """Telemetry of one Algorithm 2 round."""

    round_index: int
    uploaded_bytes: int
    downloaded_bytes: int
    active_fractions: List[float] = field(default_factory=list)


@dataclass
class AggregationResult:
    """Output of the Algorithm 2 loop."""

    headers: List[DAGHeader]
    weights: np.ndarray
    rounds: List[AggregationRoundRecord] = field(default_factory=list)

    @property
    def total_upload_bytes(self) -> int:
        return sum(r.uploaded_bytes for r in self.rounds)


def personalized_architecture_aggregation(
    backbone: VisionTransformer,
    headers: Sequence[DAGHeader],
    datasets: Sequence[ArrayDataset],
    num_rounds: int = 2,
    keep_fraction: float = 0.7,
    method: str = "ours",
    importance_config: Optional[ImportanceConfig] = None,
    seed: int = 0,
    max_workers: Union[int, str, None] = None,
    backend: str = "thread",
) -> AggregationResult:
    """Algorithm 2: generate fine headers for one device cluster.

    Parameters
    ----------
    backbone:
        The cluster's customized backbone (used frozen on devices).
    headers:
        One coarse header per device (modified in place).
    datasets:
        Each device's local private dataset.
    num_rounds:
        ``T`` — single-loop iterations between edge and devices.
    keep_fraction:
        Fraction of prunable header parameters each round keeps.  Fractions
        compose across rounds through re-masking from the pristine copy, so
        the mask can both shrink and recover as importance estimates evolve.
    method:
        One of :data:`AGGREGATION_METHODS`.
    max_workers:
        Worker threads for the per-device fan-outs (feature extraction
        for the similarity matrix, and each round's importance sets).
        Per-device work is state-disjoint and results stay in device
        order, so any worker count reproduces the serial result.
        ``backend="process"`` runs the same fan-outs on forked workers,
        with each round's header mutations written through shared
        memory — still bit-identical to the serial loop.
    """
    from repro.distributed.executor import parallel_map  # lazy: avoids import cycle

    if len(headers) != len(datasets):
        raise ValueError("need exactly one dataset per header")
    if num_rounds < 1:
        raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")

    n = len(headers)
    # Algorithm 2 line 2: the similarity matrix is computed once, up front.
    weights = aggregation_weights(
        method, n, backbone, datasets, seed=seed, max_workers=max_workers,
        backend=backend,
    )
    result = AggregationResult(headers=list(headers), weights=weights)

    for t in range(num_rounds):
        config = importance_config or ImportanceConfig(seed=seed + t)
        importance_sets = parallel_map(
            lambda pair: compute_importance_set(
                backbone, pair[0], pair[1], config=config
            ),
            list(zip(headers, datasets)),
            max_workers=max_workers,
            serial_if_stochastic=(backbone,),
            backend=backend,
            shared_params=[list(h.parameters()) for h in headers],
        )
        upload = sum(q.nbytes for q in importance_sets)  # devices upload Q_n (line 6)

        personalized = aggregate_importance_sets(importance_sets, weights)
        download = sum(q.nbytes for q in personalized)  # edge sends Q'_n (line 9)

        fractions = []
        for header, q_prime in zip(headers, personalized):
            prune_by_importance(header, q_prime, keep_fraction)
            fractions.append(
                header.active_parameter_count() / header.parameter_count()
            )
        result.rounds.append(
            AggregationRoundRecord(
                round_index=t,
                uploaded_bytes=upload,
                downloaded_bytes=download,
                active_fractions=fractions,
            )
        )
    return result
