"""Weight initialization schemes.

Each initializer takes an explicit :class:`numpy.random.Generator` so that
every experiment in the reproduction is deterministic given its seed.

Layers built *without* an explicit generator (``Linear``, ``Embedding``,
``MLP``, ``LSTMCell``, attention, transformer blocks, ``Conv2d``) draw
from :func:`default_generator` instead of a freshly-seeded one — two
such modules constructed back to back get different weights (previously
every unseeded module restarted ``default_rng(0)`` and received
identical values).  Call :func:`set_seed` to make the fallback stream
reproducible across runs.

Thread safety: ``numpy.random.Generator`` draws are not safe to share
across threads, so the fallback stream is **per-thread**.  The main
thread keeps the historical ``default_rng(seed)`` stream; every other
thread lazily receives an independent stream spawned from the same seed
(``SeedSequence(entropy=seed, spawn_key=(k,))`` for the ``k``-th thread
to touch the fallback since the last :func:`set_seed`).  Within one
thread the stream is deterministic; code that needs cross-thread
reproducibility must pass explicit generators, which every module in
this repo's parallel phases already does.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.analysis.registry import register_lock

_STATE_LOCK = register_lock("nn.init.state", module=__name__, attr="_STATE_LOCK")
_DEFAULT_SEED = 0
#: Bumped by :func:`set_seed`; cached per-thread generators from an older
#: epoch are discarded on next access.
_SEED_EPOCH = 0
#: Number of non-main threads that created a fallback stream this epoch.
_SPAWN_COUNTER = 0
_THREAD_STATE = threading.local()


def default_generator() -> np.random.Generator:
    """The per-thread fallback generator for modules built without ``rng``."""
    global _SPAWN_COUNTER
    rng = getattr(_THREAD_STATE, "rng", None)
    if rng is not None and getattr(_THREAD_STATE, "epoch", None) == _SEED_EPOCH:
        return rng
    with _STATE_LOCK:
        if threading.current_thread() is threading.main_thread():
            rng = np.random.default_rng(_DEFAULT_SEED)
        else:
            _SPAWN_COUNTER += 1
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=_DEFAULT_SEED, spawn_key=(_SPAWN_COUNTER,))
            )
        _THREAD_STATE.rng = rng
        _THREAD_STATE.epoch = _SEED_EPOCH
    return rng


def set_seed(seed: int) -> None:
    """Reset the fallback initialization stream to a known state.

    Takes effect in every thread: cached per-thread streams are from an
    older epoch afterwards and are lazily rebuilt from the new seed.
    """
    global _DEFAULT_SEED, _SEED_EPOCH, _SPAWN_COUNTER
    with _STATE_LOCK:
        _DEFAULT_SEED = int(seed)
        _SEED_EPOCH += 1
        _SPAWN_COUNTER = 0


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization for ``(fan_in, fan_out)`` weights."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization, suited to ReLU-family activations."""
    fan_in, _fan_out = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def truncated_normal(shape, rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Normal samples re-drawn until within two standard deviations.

    This matches the initializer used by the original ViT implementation.
    """
    out = rng.normal(0.0, std, size=shape)
    bad = np.abs(out) > 2 * std
    while bad.any():
        out[bad] = rng.normal(0.0, std, size=int(bad.sum()))
        bad = np.abs(out) > 2 * std
    return out


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)


def ones(shape) -> np.ndarray:
    return np.ones(shape)


def _fans(shape) -> tuple:
    """Compute (fan_in, fan_out) for dense and convolutional shapes."""
    shape = tuple(shape)
    if len(shape) < 1:
        raise ValueError("initializer shapes must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Convolutional kernels: (out_channels, in_channels, kh, kw).
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
