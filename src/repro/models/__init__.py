"""Models: the scalable ViT, fixed headers, NAS blocks/DAG headers, baselines."""

from repro.models.baselines import (
    BASELINE_BUILDERS,
    DecomposedViT,
    EfficientViTLike,
    MobileViTLike,
    TwinsSVTLike,
    build_baseline,
)
from repro.models.blocks import (
    BlockSpec,
    HeaderSpec,
    OPERATION_NAMES,
    build_operation,
    num_operations,
)
from repro.models.header_dag import DAGHeader
from repro.models.multi_exit import EarlyExitResult, MultiExitViT
from repro.models.text import TextConfig, TextTransformer
from repro.models.headers import (
    AttentionHeader,
    BackboneFeatures,
    CNNEnsembleHeader,
    CNNHeader,
    FIXED_HEADERS,
    Header,
    HybridHeader,
    LinearHeader,
    MLPHeader,
    PoolHeader,
    build_fixed_header,
)
from repro.models.vit import PatchEmbedding, ViTConfig, VisionTransformer

__all__ = [
    "AttentionHeader",
    "BASELINE_BUILDERS",
    "BackboneFeatures",
    "BlockSpec",
    "CNNEnsembleHeader",
    "CNNHeader",
    "DAGHeader",
    "DecomposedViT",
    "EarlyExitResult",
    "EfficientViTLike",
    "FIXED_HEADERS",
    "Header",
    "HeaderSpec",
    "HybridHeader",
    "LinearHeader",
    "MLPHeader",
    "MobileViTLike",
    "MultiExitViT",
    "OPERATION_NAMES",
    "PatchEmbedding",
    "PoolHeader",
    "TextConfig",
    "TextTransformer",
    "TwinsSVTLike",
    "ViTConfig",
    "VisionTransformer",
    "build_baseline",
    "build_fixed_header",
    "build_operation",
    "num_operations",
]
