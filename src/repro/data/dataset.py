"""Dataset and loader abstractions.

Datasets are plain in-memory arrays (``images`` in ``(N, C, H, W)`` layout
and integer ``labels``), which keeps the substrate fast and deterministic.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np


class ArrayDataset:
    """An in-memory labelled image dataset.

    Parameters
    ----------
    images:
        Float array of shape ``(N, C, H, W)``.
    labels:
        Integer array of shape ``(N,)``.
    num_classes:
        Total number of classes in the label space (may exceed the number of
        classes present in this particular split).
    name:
        Human-readable dataset name, used in logs and experiment records.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        num_classes: int,
        name: str = "dataset",
    ) -> None:
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W), got shape {images.shape}")
        if labels.shape != (images.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} incompatible with {images.shape[0]} images"
            )
        if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
            raise ValueError("labels out of range for num_classes")
        self.images = images
        self.labels = labels
        self.num_classes = int(num_classes)
        self.name = name

    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "ArrayDataset":
        """New dataset restricted to ``indices`` (copies are avoided)."""
        indices = np.asarray(indices, dtype=np.int64)
        return ArrayDataset(
            self.images[indices],
            self.labels[indices],
            self.num_classes,
            name=name or f"{self.name}/subset",
        )

    def split(
        self, fraction: float, rng: np.random.Generator
    ) -> Tuple["ArrayDataset", "ArrayDataset"]:
        """Random split into ``(fraction, 1-fraction)`` parts."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        order = rng.permutation(len(self))
        cut = max(1, int(round(fraction * len(self))))
        return (
            self.subset(order[:cut], name=f"{self.name}/a"),
            self.subset(order[cut:], name=f"{self.name}/b"),
        )

    def sample(self, n: int, rng: np.random.Generator) -> "ArrayDataset":
        """Random sample of ``n`` items without replacement."""
        n = min(n, len(self))
        indices = rng.choice(len(self), size=n, replace=False)
        return self.subset(indices, name=f"{self.name}/sample{n}")

    def class_histogram(self) -> np.ndarray:
        """Counts per class over the full label space."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def class_distribution(self) -> np.ndarray:
        """Normalized class histogram (sums to 1; uniform if empty)."""
        hist = self.class_histogram().astype(np.float64)
        total = hist.sum()
        if total == 0:
            return np.full(self.num_classes, 1.0 / self.num_classes)
        return hist / total

    def nbytes(self) -> int:
        """Byte size of the raw data — the cost of uploading this dataset."""
        return int(self.images.nbytes + self.labels.nbytes)


class DataLoader:
    """Mini-batch iterator over an :class:`ArrayDataset`.

    Shuffling uses the provided generator, so epochs are reproducible.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
        yield_indices: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if rng is None:
            # Fallback: the shared per-thread stream (see repro.nn.init),
            # so unseeded shuffling loaders respect ``set_seed`` instead
            # of all replaying the identical default_rng(0) order.
            from repro.nn import init

            rng = init.default_generator()
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng
        self.drop_last = drop_last
        # With ``yield_indices`` batches are ``(indices, labels)`` pairs —
        # no image gather-copy is materialized; the shuffle RNG stream is
        # identical either way, so flipping it never changes which
        # samples a batch contains.  Used by precomputed-feature training
        # loops that gather cached per-sample activations instead of
        # re-running a frozen model on the images.
        self.yield_indices = yield_indices

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, ...]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and batch.size < self.batch_size:
                return
            if self.yield_indices:
                yield batch, self.dataset.labels[batch]
            else:
                yield self.dataset.images[batch], self.dataset.labels[batch]


def merge(datasets: Sequence[ArrayDataset], name: str = "merged") -> ArrayDataset:
    """Concatenate datasets sharing a label space."""
    if not datasets:
        raise ValueError("cannot merge an empty dataset list")
    num_classes = datasets[0].num_classes
    if any(d.num_classes != num_classes for d in datasets):
        raise ValueError("datasets must share num_classes to merge")
    return ArrayDataset(
        np.concatenate([d.images for d in datasets], axis=0),
        np.concatenate([d.labels for d in datasets], axis=0),
        num_classes,
        name=name,
    )
