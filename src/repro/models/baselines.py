"""Lightweight ViT baselines for Fig. 7(a)/13(a).

The paper compares ACME against published lightweight vision Transformers:
Efficient-ViT, MobileViT, Twins-SVT, and the decomposed family DeViT /
DeDeiT / DeCCT.  The originals target 224×224 ImageNet-scale inputs; here
each baseline is rebuilt on the reproduction's substrate with the same
*architectural idea* and a parameter budget occupying the same relative
size slot, so the accuracy-vs-size comparison of Fig. 7(a) is meaningful.

Every baseline implements ``forward(images) -> logits`` and inherits
parameter counting from :class:`~repro.nn.layers.Module`.
"""

from __future__ import annotations

from typing import Final, Optional

import numpy as np

from repro.nn.conv import AvgPool2d, Conv2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.layers import Activation, LayerNorm, Linear, Module, Sequential
from repro.nn.tensor import Tensor, concatenate
from repro.nn.transformer import TransformerEncoder
from repro.models.vit import ViTConfig, VisionTransformer


class _TokenMixer(Module):
    """Flatten a feature map into tokens, run a Transformer, pool back."""

    def __init__(
        self, channels: int, depth: int, num_heads: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.encoder = TransformerEncoder(depth, channels, num_heads, mlp_ratio=2.0, rng=rng)
        self.norm = LayerNorm(channels)

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        tokens = x.reshape(n, c, h * w).transpose((0, 2, 1))  # (N, T, C)
        tokens = self.norm(self.encoder(tokens))
        return tokens.transpose((0, 2, 1)).reshape(n, c, h, w)


class EfficientViTLike(Module):
    """Efficient-ViT (Xie & Liao 2023): CNN for local, ViT for global.

    A small convolutional stem extracts local features; a narrow
    Transformer mixes them globally; classification uses pooled features.
    The smallest baseline in the Fig. 7(a) lineup.
    """

    name = "Efficient-ViT"

    def __init__(
        self,
        image_size: int = 16,
        channels: int = 3,
        num_classes: int = 20,
        width: int = 24,
        depth: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stem = Sequential(
            Conv2d(channels, width, 3, stride=2, padding=1, rng=rng),
            Activation("gelu"),
            Conv2d(width, width, 3, padding=1, rng=rng),
            Activation("gelu"),
        )
        self.mixer = _TokenMixer(width, depth, 2, rng)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(width, num_classes, rng=rng)

    def forward(self, images: Tensor) -> Tensor:
        if not isinstance(images, Tensor):
            images = Tensor(images)
        x = self.stem(images)
        x = self.mixer(x)
        return self.fc(self.pool(x))


class MobileViTLike(Module):
    """MobileViT (Mehta & Rastegari 2022): conv blocks ⊗ transformer blocks.

    Alternates convolutional downsampling stages with token-mixing
    Transformer stages, the signature MobileViT layout.
    """

    name = "MobileViT"

    def __init__(
        self,
        image_size: int = 16,
        channels: int = 3,
        num_classes: int = 20,
        width: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = Sequential(
            Conv2d(channels, width, 3, stride=2, padding=1, rng=rng),
            Activation("gelu"),
        )
        self.mixer1 = _TokenMixer(width, 1, 2, rng)
        self.conv2 = Sequential(
            Conv2d(width, width, 3, stride=2, padding=1, rng=rng),
            Activation("gelu"),
        )
        self.mixer2 = _TokenMixer(width, 1, 2, rng)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(width, num_classes, rng=rng)

    def forward(self, images: Tensor) -> Tensor:
        if not isinstance(images, Tensor):
            images = Tensor(images)
        x = self.mixer1(self.conv1(images))
        x = self.mixer2(self.conv2(x))
        return self.fc(self.pool(x))


class TwinsSVTLike(Module):
    """Twins-SVT (Chu et al. 2021): conditional position encoding via conv.

    Uses a convolutional positional-encoding generator (the Twins CPE) in
    front of a ViT encoder with locally-grouped then global attention,
    approximated here by two encoder stages at different token resolutions.
    """

    name = "Twins-SVT"

    def __init__(
        self,
        image_size: int = 16,
        channels: int = 3,
        num_classes: int = 20,
        width: int = 40,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.embed = Conv2d(channels, width, 4, stride=4, rng=rng)  # patchify
        self.cpe = Conv2d(width, width, 3, padding=1, rng=rng)  # positional conv
        self.local_stage = _TokenMixer(width, 1, 2, rng)
        self.pool_stage = AvgPool2d(2)
        self.global_stage = _TokenMixer(width, 2, 2, rng)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(width, num_classes, rng=rng)

    def forward(self, images: Tensor) -> Tensor:
        if not isinstance(images, Tensor):
            images = Tensor(images)
        x = self.embed(images)
        x = x + self.cpe(x)
        x = self.local_stage(x)
        x = self.pool_stage(x)
        x = self.global_stage(x)
        return self.fc(self.pool(x))


class DecomposedViT(Module):
    """DeViT family (Xu et al. 2023): a decomposed backbone + separate header.

    The DeViT idea is to decompose a large ViT into a smaller backbone and a
    dedicated classification header trained for the deployment task.  The
    three published variants (DeViT, DeDeiT, DeCCT) differ in the parent
    model; here they differ in backbone width/depth, occupying three size
    slots as in Fig. 7(a).
    """

    def __init__(
        self,
        variant: str = "devit",
        image_size: int = 16,
        num_classes: int = 20,
        seed: int = 0,
    ) -> None:
        super().__init__()
        presets = {
            "devit": dict(embed_dim=48, depth=4, num_heads=4),
            "dedeit": dict(embed_dim=40, depth=4, num_heads=4),
            "decct": dict(embed_dim=32, depth=3, num_heads=4),
        }
        if variant not in presets:
            raise ValueError(f"unknown variant {variant!r}; options: {sorted(presets)}")
        self.name = {"devit": "DeViT", "dedeit": "DeDeiT", "decct": "DeCCT"}[variant]
        preset = presets[variant]
        config = ViTConfig(
            image_size=image_size,
            patch_size=4,
            embed_dim=preset["embed_dim"],
            depth=preset["depth"],
            num_heads=preset["num_heads"],
            mlp_ratio=2.0,
            num_classes=num_classes,
        )
        self.backbone = VisionTransformer(config, seed=seed)
        rng = np.random.default_rng(seed + 1)
        # Dedicated MLP header on CLS + pooled tokens (the "De-" header).
        self.header = Sequential(
            Linear(2 * preset["embed_dim"], preset["embed_dim"], rng=rng),
            Activation("gelu"),
            Linear(preset["embed_dim"], num_classes, rng=rng),
        )

    def forward(self, images: Tensor) -> Tensor:
        cls, tokens = self.backbone.forward_features(images)
        pooled = tokens.mean(axis=1)
        return self.header(concatenate([cls, pooled], axis=1))


BASELINE_BUILDERS: Final = {
    "efficient_vit": EfficientViTLike,
    "mobile_vit": MobileViTLike,
    "twins_svt": TwinsSVTLike,
    "devit": lambda **kw: DecomposedViT(variant="devit", **kw),
    "dedeit": lambda **kw: DecomposedViT(variant="dedeit", **kw),
    "decct": lambda **kw: DecomposedViT(variant="decct", **kw),
}


def build_baseline(name: str, **kwargs) -> Module:
    """Instantiate a named baseline model."""
    if name not in BASELINE_BUILDERS:
        raise ValueError(f"unknown baseline {name!r}; options: {sorted(BASELINE_BUILDERS)}")
    return BASELINE_BUILDERS[name](**kwargs)
