"""Tests for module serialization and byte-size accounting."""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    MLP,
    Sequential,
    array_nbytes,
    json_nbytes,
    load_state,
    module_nbytes,
    save_state,
    state_dict_nbytes,
)
from repro.nn.serialization import compressed_nbytes
from repro.nn.tensor import Tensor, using_dtype


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        a = Linear(6, 4, rng=np.random.default_rng(1))
        b = Linear(6, 4, rng=np.random.default_rng(2))
        path = tmp_path / "weights.npz"
        save_state(a, path)
        load_state(b, path)
        np.testing.assert_allclose(a.weight.data, b.weight.data)
        np.testing.assert_allclose(a.bias.data, b.bias.data)

    def test_roundtrip_nested(self, tmp_path):
        a = Sequential(Linear(4, 8), Linear(8, 2))
        b = Sequential(Linear(4, 8), Linear(8, 2))
        for p in a.parameters():
            p.data = p.data + 1.0
        path = tmp_path / "nested.npz"
        save_state(a, path)
        load_state(b, path)
        x = Tensor(np.ones((1, 4)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_roundtrip_extensionless_path(self, tmp_path):
        """``np.savez`` appends ``.npz`` to what it writes; the loader
        used to look for the literal path and miss the file."""
        a = Linear(6, 4, rng=np.random.default_rng(1))
        b = Linear(6, 4, rng=np.random.default_rng(2))
        path = tmp_path / "checkpoint"  # no extension
        save_state(a, path)
        assert (tmp_path / "checkpoint.npz").exists()
        load_state(b, path)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        np.testing.assert_array_equal(a.bias.data, b.bias.data)

    def test_roundtrip_foreign_extension(self, tmp_path):
        """A non-``.npz`` suffix gets ``.npz`` appended, matching numpy."""
        a = Linear(3, 2, rng=np.random.default_rng(1))
        b = Linear(3, 2, rng=np.random.default_rng(2))
        path = tmp_path / "model.ckpt"
        save_state(a, path)
        assert (tmp_path / "model.ckpt.npz").exists()
        load_state(b, path)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_roundtrip_string_path(self, tmp_path):
        a = Linear(3, 2, rng=np.random.default_rng(1))
        b = Linear(3, 2, rng=np.random.default_rng(2))
        save_state(a, str(tmp_path / "weights"))
        load_state(b, str(tmp_path / "weights"))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_load_shape_mismatch(self, tmp_path):
        a = Linear(4, 4)
        b = Linear(4, 5)
        path = tmp_path / "bad.npz"
        save_state(a, path)
        with pytest.raises((KeyError, ValueError)):
            load_state(b, path)


class TestByteAccounting:
    def test_state_dict_nbytes(self):
        layer = Linear(10, 10)  # 100 weights + 10 biases
        itemsize = layer.weight.data.dtype.itemsize  # 4 under the float32 default
        assert state_dict_nbytes(layer.state_dict()) == 110 * itemsize
        with using_dtype("float64"):
            assert state_dict_nbytes(Linear(10, 10).state_dict()) == 110 * 8

    def test_module_nbytes_matches_state_dict(self):
        mlp = MLP(8, 16, 4)
        assert module_nbytes(mlp) == state_dict_nbytes(mlp.state_dict())

    def test_array_nbytes(self):
        assert array_nbytes(np.zeros(10), np.zeros((2, 5), dtype=np.float32)) == 120

    def test_json_nbytes(self):
        size = json_nbytes({"width": 0.5, "depth": 3})
        assert 10 < size < 100

    def test_compression_is_a_lower_bound(self):
        layer = Linear(20, 20, rng=np.random.default_rng(0))
        state = layer.state_dict()
        # Compressing structured float data should not exceed raw + header.
        assert compressed_nbytes(state) < state_dict_nbytes(state) * 1.2
