"""The lock registry: registration contract and fork re-init derivation.

The registry is the single source of truth the process backend replays
after fork (``procpool._reinit_locks_after_fork`` delegates here) and
the set lockwatch arms over.  These tests pin that the engine's four
module-level locks are all registered, that re-init actually produces
fresh lock objects bound to the registered globals, and that the
registration API rejects ambiguous input.
"""

import threading

import pytest

from repro.analysis import registry
from repro.analysis.registry import hotpath, register_lock


ENGINE_MODULE_LOCKS = {
    "messages.sequence": ("repro.distributed.messages", "_SEQUENCE_LOCK"),
    "nn.init.state": ("repro.nn.init", "_STATE_LOCK"),
    "optim.live-registry": ("repro.nn.optim", "_REGISTRY_LOCK"),
    "similarity.projection-cache": ("repro.core.similarity", "_PROJECTION_CACHE_LOCK"),
}


def test_engine_module_locks_are_registered():
    import repro.core.similarity  # noqa: F401
    import repro.distributed.messages  # noqa: F401
    import repro.nn.init  # noqa: F401
    import repro.nn.optim  # noqa: F401

    records = registry.lock_records()
    for name, (module, attr) in ENGINE_MODULE_LOCKS.items():
        assert name in records, f"engine lock {name!r} missing from the registry"
        assert (records[name].module, records[name].attr) == (module, attr)


def test_instance_locks_register_by_name():
    before = registry.instance_lock_names().get("network.ledger", 0)
    from repro.distributed.network import Network

    Network()
    after = registry.instance_lock_names().get("network.ledger", 0)
    assert after == before + 1


def test_register_lock_returns_usable_lock():
    lock = register_lock("test.registry.plain")
    assert isinstance(lock, type(threading.Lock()))
    with lock:
        assert lock.locked()
    assert not lock.locked()


def test_module_and_attr_must_come_together():
    with pytest.raises(ValueError):
        register_lock("test.registry.half", module=__name__)
    with pytest.raises(ValueError):
        register_lock("test.registry.half2", attr="_X")


def test_duplicate_name_different_site_rejected():
    register_lock("test.registry.dup", module=__name__, attr="_DUP_A")
    with pytest.raises(ValueError):
        register_lock("test.registry.dup", module=__name__, attr="_DUP_B")
    # Same (module, attr) re-registration is fine (module reload).
    register_lock("test.registry.dup", module=__name__, attr="_DUP_A")


def test_reinit_replaces_registered_module_locks():
    """Fork re-init rebinds a *fresh* lock over every registered global."""
    import repro.distributed.messages as messages

    old = messages._SEQUENCE_LOCK
    old.acquire()  # simulate "some parent thread held it at fork time"
    try:
        registry.reinit_locks_after_fork()
        assert messages._SEQUENCE_LOCK is not old
        assert not messages._SEQUENCE_LOCK.locked()
        # The re-made lock is immediately usable.
        assert messages._next_sequence() < messages._next_sequence()
    finally:
        old.release()


def test_procpool_delegates_to_registry(monkeypatch):
    """The process backend's fork hook replays the registry, not a hand list."""
    from repro.distributed import procpool

    called = []
    monkeypatch.setattr(
        registry, "reinit_locks_after_fork", lambda: called.append(True)
    )
    procpool._reinit_locks_after_fork()
    assert called == [True]


def test_hotpath_is_identity():
    def fn(x):
        return x + 1

    assert hotpath(fn) is fn
    assert hotpath(fn)(1) == 2
