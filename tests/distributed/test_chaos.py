"""Seeded chaos campaigns: deterministic fault injection end to end.

Three contracts from the robustness layer (see ROBUSTNESS.md):

1. **Invisibility** — with no fault policy (or an all-zero-rate one) and
   the default quorum, a full run is bit-for-bit the fault-free system:
   accuracies, traffic ledger, kind sequence, sequence numbers.
2. **Replayability** — the same fault seed reproduces the identical
   fault log, message ledger and final accuracies, run after run.
3. **Degradation, not death** — drop campaigns complete all rounds via
   retries/quorum with accuracy close to fault-free; a permanently dead
   device yields a reported degraded result (participation < 1.0), not
   a hang or traceback.
"""

import numpy as np
import pytest

from repro.distributed import (
    ACMEConfig,
    ACMESystem,
    FaultConfig,
    FaultPolicy,
    ProtocolError,
)


def _config(**overrides) -> ACMEConfig:
    base = dict(
        num_clusters=1,
        devices_per_cluster=3,
        num_classes=6,
        samples_per_class=18,
        compute_dtype="float64",
        seed=0,
    )
    base.update(overrides)
    return ACMEConfig(**base)


def _run(fault=None, quorum=1.0, **overrides):
    config = _config(fault_config=fault, **overrides)
    config.edge.round_quorum = quorum
    system = ACMESystem(config)
    return system, system.run()


#: The acceptance campaign: 15% drop absorbed by retries + 2/3 quorum.
DROP_CAMPAIGN = FaultConfig(seed=7, drop=0.15, retries=3)


@pytest.fixture(scope="module")
def clean_run():
    # Module-scoped fixtures set up BEFORE the function-scoped autouse
    # reset in tests/conftest.py, so reset explicitly (same pattern as
    # tests/distributed/test_cross_edge_parallel.py).
    from tests.helpers import reset_engine_state

    reset_engine_state()
    return _run()


@pytest.fixture(scope="module")
def drop_runs():
    from tests.helpers import reset_engine_state

    reset_engine_state()
    first = _run(fault=DROP_CAMPAIGN, quorum=0.67)
    second = _run(fault=DROP_CAMPAIGN, quorum=0.67)
    return first, second


class TestFaultPolicyUnits:
    def test_same_seed_same_decisions(self):
        config = FaultConfig(seed=3, drop=0.3, corrupt=0.2, duplicate=0.2, delay=0.2)
        links = [("ack", "a", "b"), ("importance_set", "device1", "edge0")] * 10
        first, second = FaultPolicy(config), FaultPolicy(config)
        one = [first.decide(*l) for l in links]
        two = [second.decide(*l) for l in links]
        assert one == two
        assert any(d is not None for d in one)

    def test_different_seeds_diverge(self):
        links = [("ack", "a", "b")] * 50
        first = FaultPolicy(FaultConfig(seed=0, drop=0.5))
        second = FaultPolicy(FaultConfig(seed=1, drop=0.5))
        one = [d is not None for d in (first.decide(*l) for l in links)]
        two = [d is not None for d in (second.decide(*l) for l in links)]
        assert one != two

    def test_per_link_override_beats_global_rate(self):
        policy = FaultPolicy(
            FaultConfig(seed=0, drop=0.0, drop_per_link={"a->b": 1.0})
        )
        assert all(
            policy.decide("ack", "a", "b").drop for _ in range(5)
        )
        assert all(policy.decide("ack", "a", "c") is None for _ in range(5))

    def test_per_kind_override(self):
        policy = FaultPolicy(
            FaultConfig(seed=0, drop=0.0, drop_per_kind={"importance_set": 1.0})
        )
        assert policy.decide("importance_set", "x", "y").drop
        assert policy.decide("ack", "x", "y") is None

    def test_churn_schedule_is_seeded_and_dead_is_forever(self):
        config = FaultConfig(seed=9, churn=0.5, dead_devices=(2,))
        policy = FaultPolicy(config)
        grid = [
            [policy.device_active(d, t) for t in range(8)] for d in range(4)
        ]
        again = FaultPolicy(config)
        assert grid == [
            [again.device_active(d, t) for t in range(8)] for d in range(4)
        ]
        assert grid[2] == [False] * 8  # dead never attends
        flat = [a for row in grid for a in row]
        assert any(flat) and not all(flat)  # churn actually churns

    def test_parse_round_trips_the_cli_spec(self):
        config = FaultConfig.parse("seed=7,drop=0.15,churn=0.05,dead=2|5,retries=4")
        assert config.seed == 7
        assert config.drop == pytest.approx(0.15)
        assert config.churn == pytest.approx(0.05)
        assert config.dead_devices == (2, 5)
        assert config.retries == 4

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultConfig.parse("drp=0.1")
        with pytest.raises(ValueError, match="not key=value"):
            FaultConfig.parse("drop")


class TestFaultFreeInvisibility:
    def test_zero_rate_policy_is_bit_identical(self, clean_run):
        """An armed policy that never fires must not move a single bit:
        same accuracies, ledger, kind sequence and sequence numbers as
        no policy at all."""
        _, clean = clean_run
        system, armed = _run(fault=FaultConfig(seed=0))
        assert [c.device_accuracies for c in armed.clusters] == [
            c.device_accuracies for c in clean.clusters
        ]
        assert [c.device_losses for c in armed.clusters] == [
            c.device_losses for c in clean.clusters
        ]
        assert armed.message_kinds == clean.message_kinds
        assert armed.traffic.total_bytes == clean.traffic.total_bytes
        assert dict(armed.traffic.by_pair) == dict(clean.traffic.by_pair)
        assert armed.fault_counts == {} and armed.total_retries == 0
        assert armed.participation == 1.0
        assert system.network.fault_log == []

    def test_clean_run_reports_full_participation(self, clean_run):
        _, clean = clean_run
        assert clean.participation == 1.0
        assert clean.fault_counts == {}
        assert clean.failed_deliveries == 0
        for cluster in clean.clusters:
            assert cluster.round_participation == [1.0, 1.0]
            assert cluster.protocol_retries == 0

    def test_sequence_numbers_reproducible_across_runs(self, clean_run):
        """The per-network sequence counter: two identical runs in one
        process stamp identical sequence numbers (the module-global
        counter used to drift)."""
        first_system, _ = clean_run
        second_system, _ = _run()
        assert [m.sequence for m in first_system.network.log] == [
            m.sequence for m in second_system.network.log
        ]


class TestChaosDeterminism:
    def test_same_seed_replays_everything(self, drop_runs):
        (sys1, run1), (sys2, run2) = drop_runs
        assert sys1.network.fault_log == sys2.network.fault_log
        assert sys1.network.fault_log, "campaign should have injected faults"
        assert run1.message_kinds == run2.message_kinds
        assert [m.sequence for m in sys1.network.log] == [
            m.sequence for m in sys2.network.log
        ]
        assert dict(run1.traffic.by_pair) == dict(run2.traffic.by_pair)
        assert [c.device_accuracies for c in run1.clusters] == [
            c.device_accuracies for c in run2.clusters
        ]
        assert run1.total_retries == run2.total_retries
        assert [c.round_participation for c in run1.clusters] == [
            c.round_participation for c in run2.clusters
        ]

    def test_parallel_edges_chaos_replays(self):
        """Chaos + cross-edge concurrency still replays exactly: fault
        draws are per-link and ledgers merge in edge order."""
        fault = FaultConfig(seed=5, drop=0.1, retries=3)
        results = []
        for _ in range(2):
            system, result = _run(
                fault=fault,
                quorum=0.5,
                num_clusters=2,
                devices_per_cluster=2,
                parallel_edges=2,
                finalize=False,
            )
            results.append((system, result))
        (sys1, run1), (sys2, run2) = results
        assert sys1.network.fault_log == sys2.network.fault_log
        assert run1.message_kinds == run2.message_kinds
        assert run1.edge_message_kinds == run2.edge_message_kinds
        assert run1.fault_counts == run2.fault_counts


class TestDropCampaign:
    def test_completes_all_rounds_with_accuracy_near_fault_free(
        self, clean_run, drop_runs
    ):
        _, clean = clean_run
        (system, chaos), _ = drop_runs
        rounds = system.config.edge.aggregation_rounds
        for cluster in chaos.clusters:
            assert len(cluster.round_participation) == rounds
            assert len(cluster.device_accuracies) == 3
        assert chaos.fault_counts.get("drop", 0) > 0
        assert abs(chaos.mean_accuracy - clean.mean_accuracy) <= 0.05

    def test_retries_are_accounted(self, drop_runs):
        (_, chaos), _ = drop_runs
        assert chaos.total_retries > 0
        assert chaos.delivery_attempts > chaos.traffic.message_count - 1


class TestDeadDevice:
    def test_degraded_result_not_a_hang(self, clean_run):
        """A permanently dead device: the run completes, reports
        participation < 1.0 and one fewer accuracy — no traceback."""
        _, clean = clean_run
        _, result = _run(fault=FaultConfig(seed=3, dead_devices=(1,)), quorum=0.5)
        assert result.participation < 1.0
        assert result.participation == pytest.approx(2.0 / 3.0)
        (cluster,) = result.clusters
        assert len(cluster.device_accuracies) == 2  # dead device absent
        assert len(clean.clusters[0].device_accuracies) == 3


class TestChurn:
    def test_churned_rounds_replay_and_degrade_gracefully(self):
        fault = FaultConfig(seed=11, churn=0.3, retries=2)
        _, first = _run(fault=fault, quorum=0.5, finalize=False)
        _, second = _run(fault=fault, quorum=0.5, finalize=False)
        assert [c.round_participation for c in first.clusters] == [
            c.round_participation for c in second.clusters
        ]
        rates = [r for c in first.clusters for r in c.round_participation]
        assert all(0.0 <= r <= 1.0 for r in rates)
        assert first.message_kinds == second.message_kinds


class TestStrictModeProtocolError:
    def test_missing_reply_names_device_and_round(self):
        """The pre-PR latent ``KeyError``: a silently missing importance
        reply on the strict (quorum=1.0, no-policy) path must raise a
        descriptive ProtocolError instead."""
        config = _config(devices_per_cluster=2, finalize=False)
        system = ACMESystem(config)
        system.run_cloud_phases()
        edge = system.edges[0]
        edge.request_backbone()
        edge.search_header()
        edge.distribute_models()
        victim = edge.devices[-1].profile.device_id
        original = edge._receive_importance

        def dropper(message):
            if int(message.payload["device_id"]) == victim:
                return None
            return original(message)

        edge._receive_importance = dropper
        with pytest.raises(
            ProtocolError,
            match=rf"device {victim} \(device{victim}\) in aggregation round 0",
        ):
            edge.aggregation_loop()

    def test_no_contributor_at_all_fails_loudly(self):
        """Every device permanently dead: a hard ProtocolError naming
        the cluster, not a hang (distribution already has nobody)."""
        with pytest.raises(ProtocolError, match="edge0"):
            _run(
                fault=FaultConfig(seed=0, dead_devices=(0, 1, 2)),
                quorum=0.5,
                finalize=False,
            )