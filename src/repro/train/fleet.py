"""Batched cross-device **training**: many headers, one graph, one step.

PR 3 batched the frozen-backbone *serving* fan-outs (evaluation, feature
extraction) across the devices of a cluster; this module batches the
*training* loops the same way.  Every device in an ACME cluster trains
its own personalized header against the same frozen backbone, so a
round of local updates is N small, structurally identical training
steps.  The fleet trainer runs them as **one computation graph per
round**:

1. every member's frozen-backbone features are precomputed **once**
   into a single concatenated cache (one chunked ``no_grad`` sweep over
   all members' samples, reusing :mod:`repro.train.serving`);
2. each round, the active members' mini-batch rows are gathered from
   that cache with one fancy-index row gather and split into contiguous
   per-member views;
3. each member's header forwards its own rows (weights differ per
   member, so forwards stay per-header), the logits are stacked
   row-wise into one tensor, and
   :func:`repro.nn.functional.fleet_cross_entropy` computes one mean
   loss per member from a single stacked log-softmax — gradients route
   through a per-member **block-diagonal row mask**, so a member's
   header only ever sees its own rows' gradients;
4. one ``backward()`` traverses the combined tape, and one
   :class:`repro.nn.optim.FleetOptimizer` step updates *all* members'
   parameters — flattened member-major into one per-dtype flat buffer —
   in a single fused pass.

Numerical contract (the PR 2-4 invariant, asserted in
``tests/train/test_fleet.py``): under float64 every per-member loss,
accuracy, and final header weight is **bit-for-bit identical** to
running the serial per-device path (:func:`repro.train.trainer.train_header`
/ :func:`repro.core.header_importance.compute_importance_set`) member by
member.  The pieces composing that guarantee: served frozen features are
bit-identical to per-batch forwards (row-independent kernels, PR 3),
each member's masked loss and gradient rows equal per-slice
cross-entropy under the upstream gradient ``1.0`` that
``loss.backward()`` would supply (row-independent log-softmax +
block-diagonal gradient routing), and the fleet optimizer's fused pass
equals one fused Adam per member (elementwise updates over a
concatenation).

Members may have different dataset sizes, epoch counts and batch caps —
each keeps its own shuffle stream, epoch schedule and Adam step counter,
simply dropping out of rounds it has no batch for.  Stochastic models
(training-mode dropout) fall back to the serial loop: one concatenated
graph would consume module-local RNG in a different order than N
separate loops (see :func:`repro.nn.layers.has_active_stochastic_modules`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.header_importance import ImportanceConfig, compute_importance_set
from repro.core.importance import header_parameter_importance
from repro.data.dataset import ArrayDataset, DataLoader
from repro.models.headers import BackboneFeatures
from repro.nn import functional as F
from repro.nn.layers import Module, has_active_stochastic_modules
from repro.nn.optim import FleetOptimizer, clip_grad_norm
from repro.nn.tensor import Tensor, concatenate, no_grad
from repro.train import serving
from repro.train.trainer import TrainConfig, TrainReport, train_header


def fleet_supported(backbone: Module, headers: Sequence[Module]) -> bool:
    """Whether one stacked graph reproduces the per-member loops exactly.

    False when any forward would consume module-local RNG
    (training-mode dropout): a fleet round draws a different stream than
    N separate loops, so such fleets must train serially.  Callers with
    per-device backbones must additionally check
    :func:`repro.train.serving.backbones_equivalent` — the fleet serves
    every member from **one** backbone instance.
    """
    if has_active_stochastic_modules(backbone):
        return False
    return not any(has_active_stochastic_modules(h) for h in headers)


def _resolve_configs(configs, count: int, default_factory) -> List:
    if configs is None:
        return [default_factory() for _ in range(count)]
    if not isinstance(configs, (list, tuple)):
        return [configs] * count
    if len(configs) != count:
        raise ValueError(f"{len(configs)} configs for {count} members")
    # ``None`` entries mean defaults, like the per-member APIs' config=None.
    return [c if c is not None else default_factory() for c in configs]


class _FleetFeatureServer:
    """Frozen-backbone features for every member's mini-batches.

    Two serving modes, chosen per member with the same economics as
    ``train_header``'s cache guard: members that sweep their whole
    dataset every epoch (no ``max_batches_per_epoch`` cap) get their
    features **precomputed once** into a shared concatenated cache and
    row-gathered per round; members whose epochs are batch-capped would
    waste backbone sweeps on rows they never visit, so their rows are
    instead forwarded **per round** — all capped members' batch images
    stacked into one ``no_grad`` forward (exactly the rows the serial
    loop forwards, batched across devices).  Both modes are bit-for-bit
    identical per row (row-independent kernels, the PR 3 invariant).
    """

    def __init__(
        self,
        backbone: Module,
        datasets: Sequence[ArrayDataset],
        cache_member: Sequence[bool],
    ) -> None:
        self.backbone = backbone
        self.datasets = list(datasets)
        self.cached = [bool(c) and len(d) > 0 for c, d in zip(cache_member, datasets)]
        offsets = []
        total = 0
        images = []
        for dataset, cached in zip(self.datasets, self.cached):
            offsets.append(total)
            if cached:
                total += len(dataset)
                images.append(dataset.images)
        self.offsets = offsets
        self.features: Optional[BackboneFeatures] = (
            serving.precompute_backbone_features(backbone, np.concatenate(images, axis=0))
            if images
            else None
        )

    @staticmethod
    def _split(features: BackboneFeatures, sizes: Sequence[int]) -> List[BackboneFeatures]:
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        return [
            BackboneFeatures(
                Tensor(features.cls.data[lo:hi]),
                Tensor(features.tokens.data[lo:hi]),
                Tensor(features.penultimate.data[lo:hi]),
            )
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]

    def gather(
        self, active: Sequence[int], batches: Sequence[np.ndarray]
    ) -> List[BackboneFeatures]:
        """The round's per-member features, in ``active`` order."""
        cached_pairs = [(i, m) for i, m in enumerate(active) if self.cached[m]]
        direct_pairs = [(i, m) for i, m in enumerate(active) if not self.cached[m]]
        out: List[Optional[BackboneFeatures]] = [None] * len(active)
        if cached_pairs:
            rows = np.concatenate(
                [self.offsets[m] + np.asarray(batches[i]) for i, m in cached_pairs]
            )
            gathered = serving.gather_features(self.features, rows)
            split = self._split(gathered, [len(batches[i]) for i, _m in cached_pairs])
            for (i, _m), feats in zip(cached_pairs, split):
                out[i] = feats
        if direct_pairs:
            # One stacked tape-free forward over exactly the rows the
            # serial loops would forward this round.
            images = np.concatenate(
                [self.datasets[m].images[np.asarray(batches[i])] for i, m in direct_pairs]
            )
            with no_grad():
                cls, tokens, penult = self.backbone.forward_features_multi(Tensor(images))
            split = self._split(
                BackboneFeatures(cls, tokens, penult),
                [len(batches[i]) for i, _m in direct_pairs],
            )
            for (i, _m), feats in zip(direct_pairs, split):
                out[i] = feats
        return out  # type: ignore[return-value]


@dataclass
class _MemberSchedule:
    """One member's private epoch/batch schedule (serial-path semantics)."""

    header: Module
    dataset: ArrayDataset
    epochs: int
    max_batches: Optional[int]
    loader: DataLoader
    epoch: int = 0
    batch_idx: int = 0
    done: bool = False
    _iter: Optional[Iterator] = None

    def __post_init__(self) -> None:
        self.losses: List[float] = []
        self.correct = 0
        self.total = 0
        self.epoch_losses: List[float] = []
        self.epoch_accuracies: List[float] = []
        if self.epochs <= 0:
            self.done = True

    def _finish_epoch(self) -> None:
        # Exactly the serial loop's epoch bookkeeping.
        self.epoch_losses.append(
            float(np.mean(self.losses)) if self.losses else float("nan")
        )
        self.epoch_accuracies.append(self.correct / max(1, self.total))
        self.losses, self.correct, self.total = [], 0, 0
        self.epoch += 1
        self.batch_idx = 0
        self._iter = None
        if self.epoch >= self.epochs:
            self.done = True

    def next_batch(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The member's next ``(indices, labels)`` pair, or None when done.

        Epochs with no (remaining) batches are closed out exactly like
        the serial loop: empty-dataset members record ``nan`` losses and
        zero accuracy for every epoch without ever stepping.
        """
        while not self.done:
            if self._iter is None:
                self._iter = iter(self.loader)
            if self.max_batches is not None and self.batch_idx >= self.max_batches:
                self._finish_epoch()
                continue
            batch = next(self._iter, None)
            if batch is None:
                self._finish_epoch()
                continue
            self.batch_idx += 1
            return batch
        return None

    def record(self, loss: float, logits: np.ndarray, labels: np.ndarray) -> None:
        self.losses.append(loss)
        self.correct += int((logits.argmax(axis=-1) == labels).sum())
        self.total += labels.shape[0]


def _cache_worthwhile(dataset: ArrayDataset, batch_size: int, max_batches) -> bool:
    """Whether a member visits its whole dataset every epoch.

    Mirrors ``train_header``'s cache guard: precomputing features for
    rows a batch-capped epoch never visits costs more backbone sweeps
    than it saves — those members are served per round instead.
    """
    if max_batches is None:
        return True
    batches_per_epoch = -(-len(dataset) // batch_size)
    return batches_per_epoch <= max_batches


def _run_rounds(
    members: List[_MemberSchedule],
    cache: _FleetFeatureServer,
    optimizer: FleetOptimizer,
    grad_clips: Sequence[Optional[float]],
    on_step,
) -> None:
    """The shared round loop: gather → forward → masked loss → one step."""
    while True:
        active: List[int] = []
        batches: List[np.ndarray] = []
        labels: List[np.ndarray] = []
        for m, member in enumerate(members):
            batch = member.next_batch()
            if batch is None:
                continue
            active.append(m)
            batches.append(np.asarray(batch[0]))
            labels.append(batch[1])
        if not active:
            return
        features = cache.gather(active, batches)
        logits_list = [members[m].header(f) for m, f in zip(active, features)]
        stacked = (
            concatenate(logits_list, axis=0) if len(logits_list) > 1 else logits_list[0]
        )
        sizes = [b.shape[0] for b in batches]
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        segments = list(zip(bounds[:-1], bounds[1:]))
        total, losses = F.fleet_cross_entropy(stacked, np.concatenate(labels), segments)
        optimizer.zero_grad(active)
        total.backward()
        for m in active:
            if grad_clips[m] is not None:
                clip_grad_norm(optimizer.member_parameters(m), grad_clips[m])
        if on_step is not None:
            on_step(active)
        optimizer.step(active)
        for m, loss, (lo, hi), y in zip(active, losses, segments, labels):
            member = members[m]
            if hasattr(member.header, "reapply_mask"):
                member.header.reapply_mask()
            member.record(loss, stacked.data[lo:hi], y)


def train_headers_fleet(
    backbone: Module,
    headers: Sequence[Module],
    datasets: Sequence[ArrayDataset],
    configs=None,
) -> List[TrainReport]:
    """Train many headers over one shared frozen backbone, fleet-batched.

    Drop-in replacement for calling
    ``train_header(backbone, header, dataset, config, freeze_backbone=True)``
    per member — per-member float64 traces (epoch losses, accuracies,
    final weights) are bit-for-bit identical — but each round runs as
    one stacked graph with a single fused fleet-optimizer step.  Falls
    back to the serial per-member loop for stochastic models; members
    that opted out via ``TrainConfig.fleet_training=False`` train
    serially while the rest still fleet-batch.
    """
    if not (len(headers) == len(datasets)):
        raise ValueError(f"{len(headers)} headers vs {len(datasets)} datasets")
    configs = _resolve_configs(configs, len(headers), TrainConfig)
    if not headers:
        return []
    if not fleet_supported(backbone, headers):
        return [
            train_header(backbone, h, d, config=c, freeze_backbone=True)
            for h, d, c in zip(headers, datasets, configs)
        ]
    if not all(c.fleet_training for c in configs):
        # Per-member opt-out: fleet the opted-in members, train the rest
        # serially (members are state-disjoint, so order is irrelevant).
        reports: List[Optional[TrainReport]] = [None] * len(headers)
        fleet_ids = [i for i, c in enumerate(configs) if c.fleet_training]
        for i, c in enumerate(configs):
            if not c.fleet_training:
                reports[i] = train_header(
                    backbone, headers[i], datasets[i], config=c, freeze_backbone=True
                )
        if fleet_ids:
            sub_reports = train_headers_fleet(
                backbone,
                [headers[i] for i in fleet_ids],
                [datasets[i] for i in fleet_ids],
                [configs[i] for i in fleet_ids],
            )
            for i, report in zip(fleet_ids, sub_reports):
                reports[i] = report
        return reports  # type: ignore[return-value]

    cache = _FleetFeatureServer(
        backbone,
        datasets,
        [
            c.cached_frozen_features
            and _cache_worthwhile(d, c.batch_size, c.max_batches_per_epoch)
            for d, c in zip(datasets, configs)
        ],
    )
    members = []
    for header, dataset, config in zip(headers, datasets, configs):
        header.train()
        members.append(
            _MemberSchedule(
                header=header,
                dataset=dataset,
                epochs=config.epochs,
                max_batches=config.max_batches_per_epoch,
                loader=DataLoader(
                    dataset,
                    batch_size=config.batch_size,
                    shuffle=True,
                    rng=np.random.default_rng(config.seed),
                    yield_indices=True,
                ),
            )
        )
    optimizer = FleetOptimizer(
        [h.parameters() for h in headers], lr=[c.lr for c in configs]
    )
    _run_rounds(
        members, cache, optimizer, [c.grad_clip for c in configs], on_step=None
    )
    reports = []
    for member in members:
        member.header.eval()
        reports.append(
            TrainReport(
                epoch_losses=member.epoch_losses,
                epoch_accuracies=member.epoch_accuracies,
            )
        )
    return reports


def fleet_importance_rounds(
    backbone: Module,
    headers: Sequence[Module],
    datasets: Sequence[ArrayDataset],
    configs=None,
) -> List[np.ndarray]:
    """Fleet-batched local importance rounds (Algorithm 2's device phase).

    Drop-in replacement for calling
    :func:`repro.core.header_importance.compute_importance_set` per
    device: trains every header for its configured schedule in stacked
    rounds and accumulates each device's first-order Taylor importance
    set from the per-member gradient slices **before** each fused fleet
    step, exactly as the serial loop reads them.  Float64 importance
    sets are bit-for-bit identical to the serial path.
    """
    if not (len(headers) == len(datasets)):
        raise ValueError(f"{len(headers)} headers vs {len(datasets)} datasets")
    configs = _resolve_configs(configs, len(headers), ImportanceConfig)
    if not headers:
        return []
    if not fleet_supported(backbone, headers):
        return [
            compute_importance_set(backbone, h, d, config=c)
            for h, d, c in zip(headers, datasets, configs)
        ]

    cache = _FleetFeatureServer(
        backbone,
        datasets,
        [
            _cache_worthwhile(d, c.batch_size, c.max_batches_per_epoch)
            for d, c in zip(datasets, configs)
        ],
    )
    members = []
    for header, dataset, config in zip(headers, datasets, configs):
        members.append(
            _MemberSchedule(
                header=header,
                dataset=dataset,
                epochs=config.epochs,
                max_batches=config.max_batches_per_epoch,
                loader=DataLoader(
                    dataset,
                    batch_size=config.batch_size,
                    shuffle=True,
                    rng=np.random.default_rng(config.seed),
                    yield_indices=True,
                ),
            )
        )
    member_params = [h.parameters() for h in headers]
    optimizer = FleetOptimizer(member_params, lr=[c.lr for c in configs])
    accumulated = [np.zeros(h.parameter_count()) for h in headers]
    batches_seen = [0] * len(headers)

    def accumulate_importance(active: Sequence[int]) -> None:
        # Eq. (17)-(18), read between backward and the optimizer step —
        # the same point in the batch the serial loop samples.
        for m in active:
            params = member_params[m]
            grads = np.concatenate(
                [
                    (p.grad if p.grad is not None else np.zeros_like(p.data)).reshape(-1)
                    for p in params
                ]
            )
            values = np.concatenate([p.data.reshape(-1) for p in params])
            accumulated[m] += header_parameter_importance(grads, values)
            batches_seen[m] += 1

    _run_rounds(
        members,
        cache,
        optimizer,
        [None] * len(headers),
        on_step=accumulate_importance,
    )
    if any(n == 0 for n in batches_seen):
        raise ValueError("dataset produced no batches for importance estimation")
    return [acc / n for acc, n in zip(accumulated, batches_seen)]
