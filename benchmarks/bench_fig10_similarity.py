"""Fig. 10 — Wasserstein vs Jensen-Shannon similarity heatmaps.

The planted layout: devices 0-2 share one data distribution, devices 3-4
share another.  Shape target: the Wasserstein similarity matrix shows the
two blocks with higher contrast than the JS matrix (the paper concludes
Wasserstein "more accurately captures the complex data relationships").
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import emit, emit_json, heatmap
from repro.core.similarity import (
    distance_matrix,
    extract_features,
    regularize_similarity,
    similarity_from_distances,
)
from repro.data import partition_two_groups


def block_contrast(matrix: np.ndarray) -> float:
    """Mean within-group minus mean cross-group similarity."""
    groups = [(0, 1, 2), (3, 4)]
    same, cross = [], []
    for a in range(5):
        for b in range(5):
            if a == b:
                continue
            in_same = any(a in g and b in g for g in groups)
            (same if in_same else cross).append(matrix[a, b])
    return float(np.mean(same) - np.mean(cross))


def run_fig10(reference_model, cifar_like):
    data = cifar_like.generate(samples_per_class=30, seed=7, name="fig10")
    devices = partition_two_groups(data, (3, 2), np.random.default_rng(0))
    features = [
        extract_features(reference_model, d, max_samples=24, seed=i)
        for i, d in enumerate(devices)
    ]
    out = {}
    for metric in ("wasserstein", "js"):
        distances = distance_matrix(features, metric=metric, seed=0)
        similarity = similarity_from_distances(distances)
        normalized = regularize_similarity(similarity, temperature=0.05)
        out[metric] = {
            "distances": distances,
            "similarity": similarity,
            "weights": normalized,
            "contrast": block_contrast(normalized),
        }
    return out


def test_fig10_similarity(benchmark, reference_model, cifar_like):
    out = benchmark.pedantic(
        run_fig10, args=(reference_model, cifar_like), rounds=1, iterations=1
    )
    lines = []
    for metric in ("wasserstein", "js"):
        lines.append(f"{metric} similarity weights (devices 0-2 | 3-4):")
        lines += heatmap(out[metric]["weights"])
        lines.append(f"block contrast: {out[metric]['contrast']:.4f}")
        lines.append("")
    lines.append(
        "paper: Wasserstein separates the two planted groups more crisply than JS"
    )
    emit("fig10_similarity", lines)
    emit_json(
        "fig10_similarity",
        {m: {"contrast": out[m]["contrast"],
             "weights": out[m]["weights"].tolist()} for m in out},
    )

    # Shape assertions: Wasserstein recovers the planted blocks...
    assert out["wasserstein"]["contrast"] > 0
    # ...at least as crisply as JS.
    assert out["wasserstein"]["contrast"] >= out["js"]["contrast"] - 1e-3
