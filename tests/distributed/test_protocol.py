"""Integration tests: the full three-tier protocol end-to-end."""

import numpy as np
import pytest

from repro.distributed import ACMEConfig, ACMESystem, MessageKind


@pytest.fixture(scope="module")
def run():
    """One small but complete system run shared by all protocol tests."""
    config = ACMEConfig(
        num_clusters=2,
        devices_per_cluster=2,
        num_classes=6,
        samples_per_class=18,
        seed=0,
    )
    system = ACMESystem(config)
    result = system.run()
    return system, result


class TestSystemRun:
    def test_every_device_reports_accuracy(self, run):
        _system, result = run
        assert len(result.clusters) == 2
        for cluster in result.clusters:
            assert len(cluster.device_accuracies) == 2
            assert all(0.0 <= a <= 1.0 for a in cluster.device_accuracies)

    def test_learning_beats_chance(self, run):
        _system, result = run
        chance = 1.0 / 6
        assert result.mean_accuracy > chance * 1.5

    def test_assignments_respect_storage(self, run):
        system, result = run
        for cluster_result, profiles in zip(result.clusters, system.fleet):
            zeta = system.config.vit.zeta(cluster_result.width, cluster_result.depth)
            min_storage = min(p.storage_limit for p in profiles)
            assert zeta < min_storage

    def test_message_sequence_conformance(self, run):
        """The protocol of Fig. 3: stats up, backbone down, models down,
        then alternating importance up / personalized down."""
        _system, result = run
        kinds = result.message_kinds
        # Phase 1 precedes Phase 2 for each edge.
        first_stats = kinds.index("cluster_stats")
        first_assignment = kinds.index("backbone_assignment")
        first_distribution = kinds.index("model_distribution")
        first_importance = kinds.index("importance_set")
        assert first_stats < first_assignment < first_distribution < first_importance

    def test_importance_and_personalized_counts_match(self, run):
        _system, result = run
        ups = result.message_kinds.count("importance_set")
        downs = result.message_kinds.count("personalized_set")
        assert ups == downs
        # devices × clusters × rounds
        assert ups == 2 * 2 * 2

    def test_no_dataset_uploads_in_acme(self, run):
        """Privacy invariant: raw data never traverses the ACME network."""
        _system, result = run
        assert "dataset_upload" not in result.message_kinds

    def test_traffic_ledger_consistency(self, run):
        _system, result = run
        stats = result.traffic
        assert stats.total_bytes == stats.upload_bytes + stats.download_bytes
        assert stats.total_bytes == sum(stats.by_kind.values())

    def test_cluster_similarity_matrices(self, run):
        system, _result = run
        for edge in system.edges:
            w = edge.similarity
            assert w is not None
            np.testing.assert_allclose(w.sum(axis=1), 1.0)

    def test_devices_hold_pruned_headers(self, run):
        system, _result = run
        for edge in system.edges:
            for device in edge.devices:
                assert device.header is not None
                # A personalized mask was installed; if the searched header
                # has prunable (non-classifier) parameters, some are gone.
                assert device.header._parameter_mask is not None
                assert (
                    device.header.active_parameter_count()
                    <= device.header.parameter_count()
                )
                prunable = device.header.parameter_count() - _classifier_params(
                    device.header
                )
                if prunable > 0:
                    assert (
                        device.header.active_parameter_count()
                        < device.header.parameter_count()
                    )


def _classifier_params(header):
    return sum(
        p.size
        for name, p in header._unique_named_parameters()
        if name.startswith("classifier")
    )

    def test_devices_backbones_match_assignment(self, run):
        system, result = run
        for edge, cluster in zip(system.edges, result.clusters):
            for device in edge.devices:
                assert device.backbone.width == cluster.width
                assert device.backbone.depth == cluster.depth


class TestCentralizedBaseline:
    def test_uploads_all_datasets(self, run):
        system, result = run
        cs = system.run_centralized_baseline()
        # Raw dataset bytes plus a few bytes of per-message metadata.
        assert cs.upload_bytes >= result.centralized_upload_bytes
        assert cs.upload_bytes < result.centralized_upload_bytes * 1.001
        assert cs.by_kind["dataset_upload"] == cs.upload_bytes

    def test_acme_uploads_less_than_centralized(self, run):
        """The Table I headline: ACME uploads a small fraction of CS.

        The scaled-down test config narrows the gap (datasets are tiny);
        the bench config reproduces the ~6% figure.
        """
        _system, result = run
        assert result.traffic.upload_bytes < result.centralized_upload_bytes * 5


class TestConfigDefaults:
    def test_default_construction(self):
        config = ACMEConfig()
        assert config.vit.num_classes == config.num_classes
        assert config.edge.nas.train_backbone is False

    def test_result_nan_on_empty(self):
        from repro.distributed import ACMERunResult, TrafficStats

        empty = ACMERunResult([], TrafficStats(), 0, [])
        assert np.isnan(empty.mean_accuracy)
