"""Unit tests for cloud/edge/device nodes in isolation."""

import numpy as np
import pytest

from repro.core.distill import DistillConfig
from repro.core.header_importance import ImportanceConfig
from repro.data import make_cifar100_like
from repro.distributed.cloud import CloudConfig, CloudServer
from repro.distributed.device import DeviceNode
from repro.distributed.edge import EdgeConfig, EdgeServer
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import Network
from repro.hw.profiles import DeviceProfile, cluster_statistics, make_fleet
from repro.models import ViTConfig, VisionTransformer
from repro.models.blocks import BlockSpec, HeaderSpec
from repro.models.header_dag import DAGHeader


@pytest.fixture()
def env():
    network = Network()
    generator = make_cifar100_like(num_classes=6, image_size=8)
    data = generator.generate(samples_per_class=12, seed=1)
    config = ViTConfig(image_size=8, patch_size=4, embed_dim=16, depth=3,
                       num_heads=4, num_classes=6)
    reference = VisionTransformer(config, seed=0)
    cloud = CloudServer(
        reference, data, network,
        CloudConfig(pretrain_epochs=1, distill=DistillConfig(epochs=1),
                    depth_choices=[1, 2, 3], eval_samples=24),
    )
    return network, cloud, data, config


class TestCloudServer:
    def test_requires_backbone_generation_before_eval(self, env):
        _network, cloud, _data, _config = env
        stats = cluster_statistics(make_fleet(1, 2)[0])
        with pytest.raises(AssertionError):
            cloud.evaluate_candidates(stats)

    def test_candidate_grid_size(self, env):
        _network, cloud, _data, _config = env
        cloud.pretrain_reference()
        cloud.generate_dynamic_backbone()
        stats = cluster_statistics(make_fleet(1, 2)[0])
        candidates = cloud.evaluate_candidates(stats)
        assert len(candidates) == 4 * 3  # widths × depths

    def test_loss_cache_reused(self, env):
        _network, cloud, _data, _config = env
        cloud.pretrain_reference()
        cloud.generate_dynamic_backbone()
        stats = cluster_statistics(make_fleet(1, 2)[0])
        cloud.evaluate_candidates(stats)
        cached = dict(cloud._loss_cache)
        cloud.evaluate_candidates(stats)
        assert cloud._loss_cache == cached

    def test_customize_respects_storage(self, env):
        _network, cloud, _data, config = env
        cloud.pretrain_reference()
        cloud.generate_dynamic_backbone()
        fleet = make_fleet(1, 3, storage_levels=(15_000, 20_000, 25_000))[0]
        stats = cluster_statistics(fleet)
        chosen = cloud.customize_for_cluster(stats)
        assert config.zeta(chosen.width, chosen.depth) < 15_000

    def test_rejects_unknown_kind(self, env):
        network, cloud, _data, _config = env
        with pytest.raises(ValueError):
            cloud.handle(Message("x", "cloud", MessageKind.PERSONALIZED_SET, nbytes=1))

    def test_absorbs_dataset_upload(self, env):
        _network, cloud, data, _config = env
        reply = cloud.handle(
            Message("d0", "cloud", MessageKind.DATASET_UPLOAD, {"dataset": data})
        )
        assert reply.kind is MessageKind.ACK


class TestDeviceNode:
    def _device(self, network, data):
        profile = DeviceProfile.synthesize(0, 4, 50_000, np.random.default_rng(0))
        return DeviceNode(profile, data, network,
                          importance_config=ImportanceConfig(max_batches_per_epoch=1))

    def test_rejects_unknown_kind(self, env):
        network, _cloud, data, _config = env
        device = self._device(network, data)
        with pytest.raises(ValueError):
            device.handle(Message("e", device.name, MessageKind.CLUSTER_STATS, nbytes=1))

    def test_importance_round_requires_model(self, env):
        network, _cloud, data, _config = env
        device = self._device(network, data)
        with pytest.raises(AssertionError):
            device.importance_round()

    def test_model_installation_and_importance(self, env):
        network, _cloud, data, config = env
        device = self._device(network, data)
        backbone = VisionTransformer(config, seed=0)
        spec = HeaderSpec(blocks=(BlockSpec(0, 1, 1, 3),))
        header = DAGHeader(config.embed_dim, config.num_patches,
                           config.num_classes, spec)
        message = Message(
            "edge0", device.name, MessageKind.MODEL_DISTRIBUTION,
            {
                "vit_config": config,
                "backbone_state": backbone.state_dict(),
                "head_orders": [np.arange(4)] * config.depth,
                "neuron_orders": [np.arange(32)] * config.depth,
                "width": 0.5,
                "depth": 2,
                "header_spec": spec,
                "header_state": header.state_dict(),
                "keep_fraction": 0.5,
            },
        )
        reply = device.handle(message)
        assert reply.kind is MessageKind.ACK
        assert device.backbone.width == 0.5
        assert device.backbone.depth == 2
        assert device.keep_fraction == 0.5

        upload = device.importance_round(include_feature_sample=True)
        assert upload.kind is MessageKind.IMPORTANCE_SET
        assert upload.payload["importance"].dtype == np.float32
        assert "feature_sample" in upload.payload

        # Personalized set prunes the header.
        q_prime = np.random.default_rng(0).random(
            device.header.parameter_count()
        ).astype(np.float32)
        device.handle(
            Message("edge0", device.name, MessageKind.PERSONALIZED_SET,
                    {"importance": q_prime})
        )
        assert device.header._parameter_mask is not None


class TestEdgeServer:
    def test_request_backbone_roundtrip(self, env):
        network, cloud, data, config = env
        cloud.pretrain_reference()
        cloud.generate_dynamic_backbone()
        profiles = make_fleet(1, 2, storage_levels=(30_000, 40_000))[0]
        devices = [
            DeviceNode(p, data, network,
                       importance_config=ImportanceConfig(max_batches_per_epoch=1),
                       seed=i)
            for i, p in enumerate(profiles)
        ]
        edge = EdgeServer(0, devices, data, network, EdgeConfig())
        edge.request_backbone()
        assert edge.backbone is not None
        assert config.zeta(edge.assigned_width, edge.assigned_depth) < 30_000
        # Traffic: stats up + assignment down.
        kinds = network.kind_sequence()
        assert kinds[0] == "cluster_stats"
        assert kinds[1] == "backbone_assignment"

    def test_rejects_unknown_kind(self, env):
        network, _cloud, data, _config = env
        edge = EdgeServer(7, [], data, network, EdgeConfig())
        with pytest.raises(ValueError):
            edge.handle(Message("x", edge.name, MessageKind.ACK, nbytes=1))
