"""Cross-edge parallel cluster pipeline reproduces the serial run exactly.

``ACMEConfig.parallel_edges`` fans whole per-edge pipelines (backbone
request, header NAS, aggregation loop, finalize) out across worker
threads.  Each edge sends through its own
:class:`repro.distributed.network.NetworkShard`; shards merge into the
global ledger in deterministic edge order, and the cloud's request path
is immutable-shared with a per-edge response path — so any worker count
must reproduce the serial float64 run **bit-for-bit**, including the
full traffic ledger.  These tests assert exactly that, plus the fabric
semantics (shard routing, merge determinism, register/unregister) and
the worker-budget split that keeps nested fan-outs within the host
budget.
"""

import threading
import time

import numpy as np
import pytest

from repro.distributed import ACMEConfig, ACMESystem
from repro.distributed.executor import split_worker_budget
from repro.distributed.faults import FaultConfig, FaultPolicy
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import Network


def _fleet_config(**overrides) -> ACMEConfig:
    base = dict(
        num_clusters=3,
        devices_per_cluster=2,
        num_classes=6,
        samples_per_class=18,
        compute_dtype="float64",
        seed=0,
    )
    base.update(overrides)
    return ACMEConfig(**base)


@pytest.fixture(scope="module")
def serial_and_parallel_runs():
    # Module-scoped fixtures set up BEFORE the function-scoped autouse
    # reset in tests/conftest.py, so reset explicitly: these runs must
    # not inherit engine state from whichever test happened to run last.
    from tests.helpers import reset_engine_state

    reset_engine_state()
    serial = ACMESystem(_fleet_config()).run()
    parallel = ACMESystem(_fleet_config(parallel_edges=3)).run()
    return serial, parallel


class TestEndToEndParity:
    def test_accuracies_bit_for_bit(self, serial_and_parallel_runs):
        serial, parallel = serial_and_parallel_runs
        for cs, cp in zip(serial.clusters, parallel.clusters):
            assert cs.edge_name == cp.edge_name
            assert cs.device_accuracies == cp.device_accuracies
            assert cs.device_losses == cp.device_losses
            assert (cs.width, cs.depth) == (cp.width, cp.depth)

    def test_global_message_sequence_identical(self, serial_and_parallel_runs):
        serial, parallel = serial_and_parallel_runs
        assert serial.message_kinds == parallel.message_kinds

    def test_per_edge_subsequences_identical(self, serial_and_parallel_runs):
        """Each edge's shard log is the same kind sub-sequence either way,
        and the global sequence is their concatenation in edge order."""
        serial, parallel = serial_and_parallel_runs
        assert serial.edge_message_kinds.keys() == parallel.edge_message_kinds.keys()
        for edge_name in serial.edge_message_kinds:
            assert (
                serial.edge_message_kinds[edge_name]
                == parallel.edge_message_kinds[edge_name]
            )
        concatenated = [
            kind
            for edge_name in sorted(
                serial.edge_message_kinds, key=lambda n: int(n.removeprefix("edge"))
            )
            for kind in serial.edge_message_kinds[edge_name]
        ]
        assert concatenated == serial.message_kinds

    def test_traffic_ledger_identical(self, serial_and_parallel_runs):
        serial, parallel = serial_and_parallel_runs
        s, p = serial.traffic, parallel.traffic
        assert s.total_bytes == p.total_bytes
        assert s.upload_bytes == p.upload_bytes
        assert s.download_bytes == p.download_bytes
        assert s.message_count == p.message_count
        assert dict(s.by_kind) == dict(p.by_kind)
        assert dict(s.by_pair) == dict(p.by_pair)

    def test_ledger_internally_consistent(self, serial_and_parallel_runs):
        _serial, parallel = serial_and_parallel_runs
        stats = parallel.traffic
        assert stats.total_bytes == stats.upload_bytes + stats.download_bytes
        assert stats.total_bytes == sum(stats.by_kind.values())
        assert stats.total_bytes == sum(stats.by_pair.values())

    def test_composes_with_parallel_devices(self):
        """Both tiers fanning out at once still reproduces serial."""
        serial = ACMESystem(_fleet_config()).run()
        nested = ACMESystem(
            _fleet_config(parallel_edges=2, parallel_devices=2)
        ).run()
        assert [c.device_accuracies for c in serial.clusters] == [
            c.device_accuracies for c in nested.clusters
        ]
        assert serial.message_kinds == nested.message_kinds
        assert dict(serial.traffic.by_pair) == dict(nested.traffic.by_pair)


class TestShardFabric:
    def test_shard_records_locally_until_merge(self):
        net = Network()
        net.register("sink", lambda m: None)
        shard = net.shard("edge0")
        shard.send(Message("a", "sink", MessageKind.ACK, nbytes=3))
        assert net.stats.total_bytes == 0 and net.log == []
        assert shard.stats.total_bytes == 3
        assert shard.kind_sequence() == ["ack"]
        net.merge_shards([shard])
        assert net.stats.total_bytes == 3
        assert net.kind_sequence() == ["ack"]
        # Drained: merging again cannot double-count.
        assert shard.log == [] and shard.stats.total_bytes == 0
        net.merge_shards([shard])
        assert net.stats.total_bytes == 3

    def test_merge_order_is_the_log_order(self):
        net = Network()
        net.register("sink", lambda m: None)
        first, second = net.shard("edge0"), net.shard("edge1")
        # Interleave sends; the merged log must follow merge order, not
        # send order.
        second.send(Message("b", "sink", MessageKind.PERSONALIZED_SET, nbytes=2))
        first.send(Message("a", "sink", MessageKind.IMPORTANCE_SET, nbytes=1))
        net.merge_shards([first, second])
        assert net.kind_sequence() == ["importance_set", "personalized_set"]
        assert net.stats.upload_bytes == 1 and net.stats.download_bytes == 2
        assert net.stats.by_pair[("a", "sink")] == 1

    def test_nested_handler_send_lands_on_the_carrying_shard(self):
        """A handler's reply through the ROOT network (the cloud pattern)
        is recorded on the shard that carried the request."""
        net = Network()
        net.register("edge", lambda m: None)

        def cloud_handler(message):
            net.send(Message("cloud", "edge", MessageKind.BACKBONE_ASSIGNMENT, nbytes=8))

        net.register("cloud", cloud_handler)
        shard = net.shard("edge0")
        shard.send(Message("edge", "cloud", MessageKind.CLUSTER_STATS, nbytes=4))
        assert shard.kind_sequence() == ["cluster_stats", "backbone_assignment"]
        assert shard.stats.total_bytes == 12
        assert net.stats.total_bytes == 0

    def test_activate_scope_routes_root_sends(self):
        net = Network()
        net.register("sink", lambda m: None)
        shard = net.shard("edge0")
        with shard.activate():
            net.send(Message("a", "sink", MessageKind.ACK, nbytes=5))
        net.send(Message("a", "sink", MessageKind.ACK, nbytes=7))
        assert shard.stats.total_bytes == 5
        assert net.stats.total_bytes == 7

    def test_merge_rejects_foreign_shards(self):
        net, other = Network(), Network()
        with pytest.raises(ValueError, match="different fabric"):
            net.merge_shards([other.shard("edge0")])

    def test_shard_register_is_fabric_global(self):
        net = Network()
        shard = net.shard("edge0")
        shard.register("node", lambda m: None)
        assert "node" in net.nodes()
        with pytest.raises(ValueError, match="shard 'edge0'"):
            shard.register("node", lambda m: None)

    def test_unknown_receiver_names_the_shard(self):
        net = Network()
        shard = net.shard("edge0")
        with pytest.raises(KeyError, match="edge0"):
            shard.send(Message("a", "nowhere", MessageKind.ACK, nbytes=1))


class TestAdversarialShardMerge:
    """``merge_shards`` under fault injection and hostile interleavings.

    Each shard pumps a seeded random schedule of sends while a fault
    policy drops/corrupts/duplicates/delays deliveries.  Fault draws are
    keyed per (kind, sender, receiver) link and every link belongs to
    exactly one shard, so however the threads interleave, the merged
    traffic log AND the merged fault log must equal the serial
    edge-order run's — the same contract the system relies on for
    chaos-run replayability under ``parallel_edges``.
    """

    KINDS = (
        MessageKind.CLUSTER_STATS,
        MessageKind.ACK,
        MessageKind.IMPORTANCE_SET,
        MessageKind.PERSONALIZED_SET,
    )

    def _schedules(self, seed, num_shards=4, sends_per_shard=40):
        rng = np.random.default_rng(seed)
        return [
            [
                (self.KINDS[int(k)], int(n))
                for k, n in zip(
                    rng.integers(0, len(self.KINDS), sends_per_shard),
                    rng.integers(1, 100, sends_per_shard),
                )
            ]
            for _ in range(num_shards)
        ]

    def _run(self, schedules, seed, concurrent):
        net = Network()
        net.register("sink", lambda m: None)
        net.install_fault_policy(
            FaultPolicy(
                FaultConfig(
                    seed=seed,
                    drop=0.2,
                    corrupt=0.1,
                    duplicate=0.1,
                    delay=0.1,
                    delay_deliveries=2,
                )
            )
        )
        shards = [net.shard(f"edge{i}") for i in range(len(schedules))]

        def pump(i):
            jitter = np.random.default_rng(1000 + i)
            for kind, nbytes in schedules[i]:
                if concurrent and jitter.random() < 0.3:
                    time.sleep(float(jitter.uniform(0.0, 0.002)))
                shards[i].send(Message(f"edge{i}", "sink", kind, nbytes=nbytes))

        if concurrent:
            threads = [
                threading.Thread(target=pump, args=(i,))
                for i in range(len(shards))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        else:
            for i in range(len(shards)):
                pump(i)
        net.merge_shards(shards)
        return net

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_concurrent_merge_equals_serial_edge_order(self, seed):
        schedules = self._schedules(seed)
        serial = self._run(schedules, seed, concurrent=False)
        concurrent = self._run(schedules, seed, concurrent=True)
        assert concurrent.kind_sequence() == serial.kind_sequence()
        assert [
            (m.kind, m.sender, m.receiver, m.nbytes) for m in concurrent.log
        ] == [(m.kind, m.sender, m.receiver, m.nbytes) for m in serial.log]
        assert concurrent.fault_log == serial.fault_log
        assert concurrent.fault_log, "campaign should have injected faults"
        assert concurrent.stats.total_bytes == serial.stats.total_bytes
        assert dict(concurrent.stats.by_kind) == dict(serial.stats.by_kind)
        assert dict(concurrent.stats.by_pair) == dict(serial.stats.by_pair)
        assert concurrent.delivery_attempts == serial.delivery_attempts


class TestTeardown:
    def test_unregister_frees_the_name(self):
        net = Network()
        net.register("x", lambda m: None)
        net.unregister("x")
        assert net.nodes() == []
        net.register("x", lambda m: None)  # no duplicate error

    def test_unregister_unknown_raises(self):
        net = Network()
        with pytest.raises(KeyError, match="unknown node"):
            net.unregister("ghost")

    def test_system_dispose_unregisters_everything(self):
        system = ACMESystem(
            _fleet_config(num_clusters=1, finalize=False)
        )
        assert len(system.network.nodes()) == 1 + 1 + 2  # cloud + edge + devices
        system.dispose()
        assert system.network.nodes() == []


class TestWorkerBudgetSplit:
    def test_serial_outer_passes_inner_through(self):
        assert split_worker_budget(None, 4) == (1, 4)
        assert split_worker_budget(1, "auto") == (1, "auto")

    def test_serial_inner_untouched(self):
        assert split_worker_budget(4, None) == (4, None)
        assert split_worker_budget(4, 1) == (4, 1)

    def test_product_capped_by_budget(self):
        outer, inner = split_worker_budget(4, 8, budget=8)
        assert outer == 4 and inner == 2
        outer, inner = split_worker_budget(8, 8, budget=4)
        assert outer == 8 and inner == 1  # outer tier wins; inner floors at 1

    def test_within_budget_passes_through(self):
        assert split_worker_budget(2, 3, budget=6) == (2, 3)

    def test_outer_clamped_to_tasks(self):
        outer, inner = split_worker_budget(16, 4, num_outer_tasks=2, budget=8)
        assert outer == 2 and inner == 4

    def test_config_wiring_applies_split(self):
        config = _fleet_config(parallel_edges=2, parallel_devices=8)
        _, expected = split_worker_budget(2, 8, num_outer_tasks=3)
        assert config.edge.parallel_devices == expected
        assert config.edge.nas.parallel_workers == expected

    def test_config_wiring_without_edges_unchanged(self):
        config = _fleet_config(parallel_devices=5)
        assert config.edge.parallel_devices == 5
        assert config.edge.nas.parallel_workers == 5


class TestCloudConcurrencySafety:
    def test_prepare_candidates_freezes_request_state(self):
        system = ACMESystem(_fleet_config(num_clusters=1, finalize=False))
        system.run_cloud_phases()
        cloud = system.cloud
        assert cloud._losses_ready
        # The request path must not mutate the backbone's configuration.
        width_before = cloud.backbone.width
        depth_before = cloud.backbone.depth
        stats_payload = {
            "mean_gpu_capacity": 4.0,
            "min_storage": 50_000,
            "num_patches": cloud.backbone.config.num_patches,
            "batch_size": 16,
            "max_base_power": 1.0,
            "max_power_per_layer": 0.5,
            "max_base_latency": 0.1,
            "max_latency_per_layer": 0.05,
        }
        candidates = cloud.evaluate_candidates(stats_payload)
        assert cloud.backbone.width == width_before
        assert cloud.backbone.depth == depth_before
        assert len(candidates) == len(cloud.config.width_choices) * len(
            cloud._depth_choices()
        )

    def test_concurrent_requests_match_serial_replies(self):
        """Same stats → same deterministic reply regardless of arrival
        order or concurrency."""
        import concurrent.futures

        system = ACMESystem(_fleet_config(finalize=False))
        system.run_cloud_phases()
        cloud = system.cloud
        from repro.hw.profiles import cluster_statistics

        stats = [
            cluster_statistics([d.profile for d in edge.devices])
            for edge in system.edges
        ]
        serial = [cloud.customize_for_cluster(s) for s in stats]
        with concurrent.futures.ThreadPoolExecutor(max_workers=3) as pool:
            concurrent = list(pool.map(cloud.customize_for_cluster, stats))
        assert serial == concurrent


class TestSelectModelDeterminism:
    def test_selection_is_order_invariant(self):
        from repro.core.pareto import Candidate, build_pfg, select_model

        rng = np.random.default_rng(0)
        candidates = [
            Candidate(w, d, (float(rng.uniform(1, 2)), float(rng.uniform(5, 9)), w * d * 100))
            for w in (0.25, 0.5, 0.75, 1.0)
            for d in (1, 2, 3, 4)
        ]
        reference = select_model(build_pfg(candidates, 0.05), storage_limit=500)
        for seed in range(5):
            shuffled = list(candidates)
            np.random.default_rng(seed).shuffle(shuffled)
            chosen = select_model(build_pfg(shuffled, 0.05), storage_limit=500)
            assert (chosen.width, chosen.depth) == (reference.width, reference.depth)

    def test_exact_ties_break_on_width_then_depth(self):
        from repro.core.pareto import Candidate, build_pfg, select_model

        # Two candidates with identical objectives: the smaller (width,
        # depth) must win no matter the list order.
        tied = [
            Candidate(1.0, 4, (1.0, 5.0, 100.0)),
            Candidate(0.5, 2, (1.0, 5.0, 100.0)),
        ]
        for ordering in (tied, tied[::-1]):
            chosen = select_model(build_pfg(ordering, 0.05), storage_limit=500)
            assert (chosen.width, chosen.depth) == (0.5, 2)
