"""Tests for the NAS block vocabulary and DAG headers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    BackboneFeatures,
    BlockSpec,
    DAGHeader,
    HeaderSpec,
    OPERATION_NAMES,
    build_operation,
    num_operations,
)
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(41)
EMBED, PATCHES, CLASSES = 16, 16, 5


def features(n=2):
    return BackboneFeatures(
        cls=Tensor(RNG.normal(size=(n, EMBED))),
        tokens=Tensor(RNG.normal(size=(n, PATCHES, EMBED))),
        penultimate=Tensor(RNG.normal(size=(n, PATCHES, EMBED))),
    )


class TestOperations:
    @pytest.mark.parametrize("name", OPERATION_NAMES)
    def test_shape_preserving(self, name):
        op = build_operation(name, EMBED, np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(2, EMBED, 4, 4)))
        assert op(x).shape == x.shape

    def test_registry_matches_paper(self):
        """§IV-A lists conv 1/3/5, identity, downsample, avg/max pooling."""
        assert set(OPERATION_NAMES) == {
            "conv1x1", "conv3x3", "conv5x5", "identity",
            "downsample", "avg_pool", "max_pool",
        }
        assert num_operations() == 7

    def test_unknown_operation(self):
        with pytest.raises(ValueError):
            build_operation("attention9000", EMBED, np.random.default_rng(0))

    def test_identity_is_identity(self):
        op = build_operation("identity", EMBED, np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(1, EMBED, 4, 4)))
        assert op(x) is x

    def test_downsample_coarsens(self):
        op = build_operation("downsample", EMBED, np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(1, EMBED, 4, 4)))
        out = op(x).data
        # 2×2 cells carry a constant (the pooled average).
        np.testing.assert_allclose(out[0, 0, 0, 0], out[0, 0, 0, 1])
        np.testing.assert_allclose(out[0, 0, 0, 0], out[0, 0, 1, 1])

    def test_downsample_tiny_input_passthrough(self):
        op = build_operation("downsample", EMBED, np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(1, EMBED, 1, 1)))
        assert op(x) is x


class TestSpecs:
    def test_block_validation(self):
        BlockSpec(0, 1, 0, 6).validate(0, 7)
        with pytest.raises(ValueError):
            BlockSpec(2, 0, 0, 0).validate(0, 7)  # block 0 sees inputs {0,1}
        with pytest.raises(ValueError):
            BlockSpec(0, 0, 7, 0).validate(0, 7)

    def test_header_spec_validation(self):
        with pytest.raises(ValueError):
            HeaderSpec(blocks=())
        with pytest.raises(ValueError):
            HeaderSpec(blocks=(BlockSpec(0, 0, 0, 0),), repeats=0)

    def test_sequence_roundtrip(self):
        spec = HeaderSpec(
            blocks=(BlockSpec(0, 1, 2, 3), BlockSpec(2, 0, 4, 5)), repeats=2
        )
        seq = spec.to_sequence()
        assert seq == [0, 1, 2, 3, 2, 0, 4, 5]
        again = HeaderSpec.from_sequence(seq, repeats=2)
        assert again == spec

    def test_from_sequence_validation(self):
        with pytest.raises(ValueError):
            HeaderSpec.from_sequence([0, 1, 2])


class TestDAGHeader:
    def spec(self, blocks=2, repeats=1):
        block_specs = tuple(
            BlockSpec(b % (b + 2), (b + 1) % (b + 2), b % 7, (b + 3) % 7)
            for b in range(blocks)
        )
        return HeaderSpec(blocks=block_specs, repeats=repeats)

    def test_output_shape(self):
        header = DAGHeader(EMBED, PATCHES, CLASSES, self.spec())
        assert header(features(3)).shape == (3, CLASSES)

    @pytest.mark.parametrize("repeats", [1, 2, 3])
    def test_repeats_increase_parameters(self, repeats):
        header = DAGHeader(EMBED, PATCHES, CLASSES, self.spec(repeats=repeats))
        base = DAGHeader(EMBED, PATCHES, CLASSES, self.spec(repeats=1))
        if repeats == 1:
            assert header.parameter_count() == base.parameter_count()
        else:
            assert header.parameter_count() > base.parameter_count()

    def test_uses_penultimate_input(self):
        """A block wired to input 1 must react to penultimate features."""
        spec = HeaderSpec(blocks=(BlockSpec(0, 1, 3, 1),))  # op2=conv3x3 on input 1
        header = DAGHeader(EMBED, PATCHES, CLASSES, spec)
        f1 = features(1)
        f2 = BackboneFeatures(
            cls=f1.cls,
            tokens=f1.tokens,
            penultimate=Tensor(RNG.normal(size=(1, PATCHES, EMBED))),
        )
        assert not np.allclose(header(f1).data, header(f2).data)

    def test_gradients_flow(self):
        header = DAGHeader(EMBED, PATCHES, CLASSES, self.spec())
        header(features(2)).sum().backward()
        assert any(
            p.grad is not None and np.abs(p.grad).sum() > 0
            for p in header.parameters()
        )

    def test_parameter_mask_roundtrip(self):
        header = DAGHeader(EMBED, PATCHES, CLASSES, self.spec())
        x = features(2)
        original = header(x).data.copy()
        count = header.parameter_count()
        keep = np.ones(count, dtype=bool)
        keep[: count // 2] = False
        header.set_parameter_mask(keep)
        assert header.active_parameter_count() == keep.sum()
        masked = header(x).data
        assert not np.allclose(original, masked)
        header.clear_parameter_mask()
        np.testing.assert_allclose(header(x).data, original)

    def test_mask_revision_from_pristine(self):
        """Re-masking must start from pristine values, not doubly-zeroed ones."""
        header = DAGHeader(EMBED, PATCHES, CLASSES, self.spec())
        count = header.parameter_count()
        x = features(1)
        original = header(x).data.copy()
        first = np.zeros(count, dtype=bool)  # drop everything
        header.set_parameter_mask(first)
        header.set_parameter_mask(np.ones(count, dtype=bool))  # restore all
        np.testing.assert_allclose(header(x).data, original)

    def test_mask_length_validation(self):
        header = DAGHeader(EMBED, PATCHES, CLASSES, self.spec())
        with pytest.raises(ValueError):
            header.set_parameter_mask(np.ones(3, dtype=bool))

    def test_reapply_mask_after_updates(self):
        header = DAGHeader(EMBED, PATCHES, CLASSES, self.spec())
        count = header.parameter_count()
        keep = np.zeros(count, dtype=bool)
        header.set_parameter_mask(keep)
        # Simulate an optimizer resurrecting weights.
        for p in header.parameters():
            p.data = p.data + 1.0
        header.reapply_mask()
        assert sum(np.abs(p.data).sum() for p in header.parameters()) == 0.0

    def test_parameter_vector_matches_count(self):
        header = DAGHeader(EMBED, PATCHES, CLASSES, self.spec())
        assert header.parameter_vector().size == header.parameter_count()

    def test_shared_op_factory(self):
        """Two headers built from one factory share operation weights."""
        from repro.core.nas import SharedOpPool

        pool = SharedOpPool(EMBED, seed=0)
        spec = HeaderSpec(blocks=(BlockSpec(0, 1, 1, 1),))
        a = DAGHeader(EMBED, PATCHES, CLASSES, spec, op_factory=pool.factory)
        b = DAGHeader(EMBED, PATCHES, CLASSES, spec, op_factory=pool.factory)
        assert a.modules_list[0].blocks[0].op1 is b.modules_list[0].blocks[0].op1


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 3), st.integers(1, 2), st.data())
def test_property_random_specs_run(num_blocks, repeats, data):
    blocks = []
    for b in range(num_blocks):
        blocks.append(
            BlockSpec(
                data.draw(st.integers(0, b + 1)),
                data.draw(st.integers(0, b + 1)),
                data.draw(st.integers(0, 6)),
                data.draw(st.integers(0, 6)),
            )
        )
    spec = HeaderSpec(blocks=tuple(blocks), repeats=repeats)
    header = DAGHeader(EMBED, PATCHES, CLASSES, spec)
    out = header(features(1))
    assert out.shape == (1, CLASSES)
    assert np.isfinite(out.data).all()
