"""Command-line interface for running ACME experiments.

Usage::

    python -m repro.cli run --clusters 2 --devices 3 --classes 8
    python -m repro.cli table1 --fleet 10
    python -m repro.cli search-space --blocks 3

The CLI is a thin veneer over :mod:`repro.distributed` and
:mod:`repro.core`; anything it prints can be computed programmatically
through the public API.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.distributed import ACMEConfig, ACMESystem, FaultConfig

    fault_config = FaultConfig.parse(args.faults) if args.faults else None
    config = ACMEConfig(
        num_clusters=args.clusters,
        devices_per_cluster=args.devices,
        num_classes=args.classes,
        samples_per_class=args.samples,
        parallel_devices=args.workers,
        parallel_edges=args.edge_workers,
        backend=args.backend,
        fleet_training=args.fleet,
        fault_config=fault_config,
        seed=args.seed,
    )
    if args.quorum is not None:
        config.edge.round_quorum = args.quorum
    if args.transport == "tcp":
        from repro.distributed.system import run_multiprocess

        result = run_multiprocess(config)
    else:
        system = ACMESystem(config)
        result = system.run()
    payload = {
        "mean_accuracy": result.mean_accuracy,
        "upload_mb": result.traffic.upload_megabytes(),
        "total_mb": result.traffic.total_megabytes(),
        "upload_ratio_vs_centralized": result.upload_ratio_vs_centralized,
        "clusters": [
            {
                "edge": c.edge_name,
                "width": c.width,
                "depth": c.depth,
                "device_accuracies": c.device_accuracies,
                "round_participation": c.round_participation,
                "protocol_retries": c.protocol_retries,
            }
            for c in result.clusters
        ],
        "participation": result.participation,
        "fault_counts": result.fault_counts,
        "total_retries": result.total_retries,
        "failed_deliveries": result.failed_deliveries,
    }
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.distributed.scale import ScaleConfig, run_scale_campaign

    config = ScaleConfig(
        num_devices=args.devices,
        num_clusters=args.clusters,
        rounds=args.rounds,
        set_size=args.set_size,
        lru_capacity=args.lru,
        always_live=args.always_live,
        eval_requests=args.eval_requests,
        deadline_quantile=args.deadline_quantile,
        churn=args.churn,
        drop=args.drop,
        ledger=args.ledger,
        seed=args.seed,
    )
    report = run_scale_campaign(config, measure_memory=args.memory)
    print(json.dumps(report.to_dict(), indent=2))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.core.search_space import table1_search_space_row

    row = table1_search_space_row(args.fleet, devices_per_cluster=args.devices)
    print(json.dumps(row, indent=2))
    return 0


def _cmd_search_space(args: argparse.Namespace) -> int:
    from repro.core.search_space import header_search_space_size

    size = header_search_space_size(args.blocks)
    print(json.dumps({"blocks": args.blocks, "architectures": size}))
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.hw.energy import energy
    from repro.hw.profiles import DeviceProfile

    profile = DeviceProfile.synthesize(
        0, args.vcpus, storage_limit=10**9, rng=np.random.default_rng(args.seed)
    )
    report = energy(profile, args.width, args.depth, epochs=args.epochs)
    print(
        json.dumps(
            {
                "power_watts": report.power_watts,
                "latency_seconds": report.latency_seconds,
                "energy_joules": report.energy_joules,
            }
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the full ACME system")
    run.add_argument("--clusters", type=int, default=2)
    run.add_argument("--devices", type=int, default=3)
    run.add_argument("--classes", type=int, default=8)
    run.add_argument("--samples", type=int, default=48)
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker threads for the per-device cluster phases "
        "(1 = serial, -1 = all CPU cores); any value reproduces the "
        "serial results exactly",
    )
    run.add_argument(
        "--edge-workers",
        type=int,
        default=1,
        help="worker threads for the cluster dimension (each runs one "
        "edge's whole pipeline; 1 = serial, -1 = all CPU cores); "
        "composes with --workers under a shared thread budget, and any "
        "value reproduces the serial results — traffic ledger included — "
        "exactly",
    )
    run.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="thread",
        help="executor backend for the per-device fan-outs: 'thread' "
        "overlaps the GIL-releasing numpy kernels; 'process' forks a "
        "worker pool with device headers mapped over shared memory, so "
        "the tape-bound phases (importance rounds, NAS child scoring) "
        "scale past the GIL.  Either backend reproduces the serial "
        "results bit for bit",
    )
    run.add_argument(
        "--fleet",
        action="store_true",
        help="fleet-batch each cluster's local training: one computation "
        "graph and one fused optimizer step per round for all of an "
        "edge's headers; reproduces the per-device results exactly",
    )
    run.add_argument(
        "--faults",
        type=str,
        default=None,
        metavar="SPEC",
        help="seeded chaos campaign as k=v pairs, e.g. "
        "'seed=7,drop=0.15,churn=0.05,dead=2|5' (keys: seed, drop, "
        "corrupt, duplicate, delay, churn, retries, backoff, "
        "delay_deliveries, dead).  The same spec replays the identical "
        "fault log, ledger and results",
    )
    run.add_argument(
        "--quorum",
        type=float,
        default=None,
        metavar="FRAC",
        help="fraction of each round's participating devices whose fresh "
        "importance sets must arrive before the round aggregates "
        "(default 1.0 = require every reply); below it, rounds degrade "
        "to whoever answered plus carried-forward sets",
    )
    run.add_argument(
        "--transport",
        choices=["loopback", "tcp"],
        default="loopback",
        help="message fabric: 'loopback' runs everything in-process "
        "(the default, bit-for-bit the historical behavior); 'tcp' runs "
        "the cloud and each edge cluster as separate OS processes "
        "connected by the wire protocol — same seed, same results, same "
        "ledger (see ROBUSTNESS.md, 'The wire transport')",
    )
    run.add_argument("--seed", type=int, default=0)
    run.set_defaults(func=_cmd_run)

    scale = sub.add_parser(
        "scale",
        help="synthetic fleet-scale campaign (lazy LRU device state, "
        "streaming aggregation, straggler deadlines, serving front)",
    )
    scale.add_argument("--devices", type=int, default=10_000)
    scale.add_argument("--clusters", type=int, default=8)
    scale.add_argument("--rounds", type=int, default=3)
    scale.add_argument("--set-size", type=int, default=64)
    scale.add_argument(
        "--lru",
        type=int,
        default=64,
        help="live headers kept per cluster before cold devices are "
        "evicted to compact serialized state",
    )
    scale.add_argument(
        "--always-live",
        action="store_true",
        help="disable lazy eviction; every device keeps a live header "
        "(the memory baseline the LRU exists to beat)",
    )
    scale.add_argument("--eval-requests", type=int, default=8)
    scale.add_argument(
        "--deadline-quantile",
        type=float,
        default=1.0,
        metavar="Q",
        help="per-cluster straggler deadline as a latency quantile "
        "(1.0 = no deadline; 0.9 drops the slowest decile each round)",
    )
    scale.add_argument("--churn", type=float, default=0.0)
    scale.add_argument("--drop", type=float, default=0.0)
    scale.add_argument(
        "--ledger",
        choices=["full", "summary"],
        default="summary",
        help="traffic ledger mode; 'summary' bounds memory at fleet scale",
    )
    scale.add_argument(
        "--memory",
        action="store_true",
        help="trace peak memory with tracemalloc (slower)",
    )
    scale.add_argument("--seed", type=int, default=0)
    scale.set_defaults(func=_cmd_scale)

    table1 = sub.add_parser("table1", help="Table I search-space accounting")
    table1.add_argument("--fleet", type=int, default=10)
    table1.add_argument("--devices", type=int, default=5)
    table1.set_defaults(func=_cmd_table1)

    space = sub.add_parser("search-space", help="Eq. (14) cardinality")
    space.add_argument("--blocks", type=int, default=3)
    space.set_defaults(func=_cmd_search_space)

    energy_cmd = sub.add_parser("energy", help="Eq. (1)-(2) energy estimate")
    energy_cmd.add_argument("--vcpus", type=int, default=5)
    energy_cmd.add_argument("--width", type=float, default=1.0)
    energy_cmd.add_argument("--depth", type=int, default=6)
    energy_cmd.add_argument("--epochs", type=int, default=5)
    energy_cmd.add_argument("--seed", type=int, default=0)
    energy_cmd.set_defaults(func=_cmd_energy)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
