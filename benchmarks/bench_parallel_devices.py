"""Perf bench: thread-parallel cluster phases vs the serial device loop.

The finalize/eval phase (per-device fine-tune + evaluation) is
embarrassingly parallel across a cluster — PR 2 routes it through
``repro.distributed.executor`` with ``ACMEConfig.parallel_devices``
workers.  This bench measures that cluster phase on an 8-device cluster
and records two comparisons into the ``BENCH_perf.json`` trajectory
(merged with the existing hot-path records, their floors untouched):

* ``cluster_finalize_makespan_4workers`` — the cluster-phase *schedule
  length*: measured per-device durations list-scheduled onto 4 workers
  (exactly the FIFO schedule a thread pool produces) vs their serial
  sum.  This is the speedup the executor delivers when the 4 workers
  are physical cores (or, in the deployment the paper simulates,
  physically distinct edge devices); it is computed from measured
  wall-clock durations, so it reflects the real workload balance, and
  it is the record the ≥1.5× floor is asserted on because it is
  hardware-independent.
* ``cluster_finalize_wallclock_4workers`` — the actual wall-clock of
  ``edge.finalize(max_workers=4)`` vs the serial loop **on this host**.
  On a host with ≥4 cores this approaches the makespan bound (the heavy
  kernels release the GIL), so the record asserts a conservative real
  speedup floor (≥1.3×); on a smaller box it degrades to roughly
  serial and the floor relaxes to an overhead guard (parallel must
  never be catastrophically slower than serial).  The makespan record
  above stays the single-core CI contract either way.

The bench also asserts the parallel run's per-device accuracies equal
the serial run's **bit-for-bit under float64** — speed never buys a
different answer.

Run:  PYTHONPATH=src python benchmarks/bench_parallel_devices.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_parallel_devices.py -s
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit_perf, perf_record

from repro.distributed.executor import parallel_map
from repro.distributed.metrics import schedule_length
from repro.distributed.system import ACMEConfig, ACMESystem

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKERS = 4
DEVICES = 8
#: Floor on the schedule-length speedup (hardware-independent).
MAKESPAN_FLOOR = 1.5
#: Overhead guard on this host's wall-clock: thread dispatch must never
#: make the phase catastrophically slower than the serial loop, even on
#: a single-core machine where no real speedup is possible and GIL
#: convoying between 4 Python-heavy training threads costs ~2x.
WALLCLOCK_FLOOR = 0.2
#: Strict wall-clock floor once the 4 workers are real cores: the heavy
#: kernels release the GIL, so actual parallel speedup is demanded —
#: conservative vs the ~3.5x makespan bound to absorb scheduler noise.
WALLCLOCK_MULTICORE_FLOOR = 1.3


def _wallclock_floor() -> float:
    """Strict floor on a >=4-core host, overhead guard elsewhere."""
    return (
        WALLCLOCK_MULTICORE_FLOOR
        if (os.cpu_count() or 1) >= WORKERS
        else WALLCLOCK_FLOOR
    )


def _cluster_config() -> ACMEConfig:
    """One cluster x 8 devices, float64 (the parity-auditable mode)."""
    return ACMEConfig(
        num_clusters=1,
        devices_per_cluster=DEVICES,
        num_classes=6,
        samples_per_class=64,
        finalize=False,  # protocol phases here; finalize timed separately
        compute_dtype="float64",
        seed=0,
    )


def _assert_executor_fans_out() -> None:
    """Fail the bench if the executor silently serializes.

    The makespan record is computed from measured durations plus the
    thread pool's schedule policy, so it would survive an executor that
    stopped parallelizing; this barrier cannot — it is only crossable
    when all WORKERS tasks are in flight simultaneously.
    """
    import threading

    barrier = threading.Barrier(WORKERS)
    parallel_map(lambda _: barrier.wait(timeout=10), range(WORKERS), max_workers=WORKERS)


def bench_cluster_finalize():
    _assert_executor_fans_out()
    # Two bit-identical systems: one runs the cluster phase serially
    # (timed per device), the other through the 4-worker executor.
    serial_system = ACMESystem(_cluster_config())
    serial_system.run()
    parallel_system = ACMESystem(_cluster_config())
    parallel_system.run()

    serial_edge = serial_system.edges[0]
    durations: List[float] = []
    serial_results = []
    for device in serial_edge.devices:
        start = time.perf_counter()
        serial_results.append(device.finalize_round())
        durations.append(time.perf_counter() - start)
    serial_total = sum(durations)

    start = time.perf_counter()
    parallel_results = parallel_system.edges[0].finalize(max_workers=WORKERS)
    parallel_wall = time.perf_counter() - start

    # Parity: float64 serial and parallel cluster phases must agree
    # bit-for-bit, device by device.
    serial_acc = [r["accuracy"] for r in serial_results]
    parallel_acc = [r["accuracy"] for r in parallel_results]
    if serial_acc != parallel_acc:
        raise AssertionError(
            f"parallel finalize diverged from serial: {parallel_acc} vs {serial_acc}"
        )

    makespan = schedule_length(durations, WORKERS)
    one_run = {"repeats": 1, "warmup": 0}
    records = [
        perf_record(
            "cluster_finalize_makespan_4workers",
            fast={"best_s": makespan, "mean_s": makespan, **one_run},
            baseline={"best_s": serial_total, "mean_s": serial_total, **one_run},
            floor=MAKESPAN_FLOOR,
            workers=WORKERS,
            devices=DEVICES,
            metric="list-schedule length of measured per-device durations",
            per_device_s=durations,
        ),
        perf_record(
            "cluster_finalize_wallclock_4workers",
            fast={"best_s": parallel_wall, "mean_s": parallel_wall, **one_run},
            baseline={"best_s": serial_total, "mean_s": serial_total, **one_run},
            floor=_wallclock_floor(),
            workers=WORKERS,
            devices=DEVICES,
            host_cpus=os.cpu_count(),
            metric="wall-clock on this host (strict floor on >=4 cores, "
            "overhead guard otherwise)",
            parity="float64 per-device accuracies identical serial vs parallel",
        ),
    ]
    return records


def run_bench():
    return emit_perf(
        "bench_parallel_devices",
        bench_cluster_finalize(),
        path=REPO_ROOT / "BENCH_perf.json",
    )


def test_parallel_devices_bench():
    run_bench()


if __name__ == "__main__":
    run_bench()
