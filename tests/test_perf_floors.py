"""Tier-1 replay of the BENCH_perf.json speedup floors.

The perf benches assert their floors at measurement time; this test
replays them from the committed trajectory file on every test run so a
perf regression (or a hand-edited / truncated trajectory) fails tier-1,
not just the occasional bench invocation.  See scripts/check_floors.py.
"""

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_floors():
    spec = importlib.util.spec_from_file_location(
        "check_floors", REPO_ROOT / "scripts" / "check_floors.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPerfFloors:
    def test_trajectory_file_is_valid(self):
        module = _load_check_floors()
        data = module.load_trajectory()
        labels = [r.get("label") for r in data["results"]]
        assert len(labels) == len(set(labels)), f"duplicate perf labels: {labels}"
        # The trajectory must keep covering both the PR 1 hot paths and
        # the PR 2 parallel cluster phase.
        assert "conv_forward_warm_cache" in labels
        assert "cluster_finalize_makespan_4workers" in labels

    def test_recorded_floors_hold(self):
        module = _load_check_floors()
        failures = module.check_floors()
        assert not failures, "\n".join(failures)

    def test_parallel_cluster_phase_floor(self):
        """The headline PR 2 number: >=1.5x cluster-phase speedup on 4 workers."""
        module = _load_check_floors()
        data = module.load_trajectory()
        record = next(
            r
            for r in data["results"]
            if r.get("label") == "cluster_finalize_makespan_4workers"
        )
        assert record["floor"] >= 1.5
        assert record["speedup"] >= 1.5

    def test_checker_cli_passes_on_committed_file(self, capsys):
        module = _load_check_floors()
        assert module.main(["check_floors.py"]) == 0
        out = capsys.readouterr().out
        assert "ok:" in out
        # The status table prints one row per record before the verdict.
        assert "record" in out and "speedup" in out and "floor" in out

    def test_checker_cli_fails_readably_on_regressed_file(self, tmp_path, capsys):
        """A regressed trajectory exits nonzero and the FAIL line carries
        the measured values, not just a boolean verdict."""
        module = _load_check_floors()
        bad = {
            "bench": "bench_example",
            "schema": "perf/v1",
            "unix_time": 0.0,
            "results": [
                {
                    "label": "regressed_kernel",
                    "bench": "bench_example",
                    "fast": {"best_s": 2.0, "mean_s": 2.0},
                    "baseline": {"best_s": 1.0, "mean_s": 1.0},
                    "speedup": 0.5,
                    "floor": 1.5,
                },
                {
                    "label": "healthy_kernel",
                    "bench": "bench_example",
                    "fast": {"best_s": 0.5, "mean_s": 0.5},
                    "baseline": {"best_s": 1.0, "mean_s": 1.0},
                    "speedup": 2.0,
                    "floor": 1.5,
                },
            ],
        }
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(bad))
        assert module.main(["check_floors.py", str(path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL regressed_kernel" in out
        assert "0.50x" in out and "1.50x" in out  # measured value + floor
        assert "fast best 2s vs baseline best 1s" in out
        assert "1 of 2 floored record(s) FAILED" in out
        # The healthy record still shows as ok in the table.
        assert "healthy_kernel" in out
