"""Replay the perf floors recorded in ``BENCH_perf.json``.

The perf benches (``benchmarks/bench_perf_hotpaths.py``,
``benchmarks/bench_parallel_devices.py``) assert their speedup floors at
measurement time and only then merge records into the trajectory file.
This script replays those floors from the committed file so that a
regressed or hand-edited trajectory fails fast — it is wired into tier-1
via ``tests/test_perf_floors.py`` and can be run standalone:

    python scripts/check_floors.py [path/to/BENCH_perf.json]

Exit status 0 when every record holds its floor, 1 otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TRAJECTORY = REPO_ROOT / "BENCH_perf.json"
EXPECTED_SCHEMA = "perf/v1"


def load_trajectory(path: Path = DEFAULT_TRAJECTORY) -> Dict[str, object]:
    """Parse and structurally validate the trajectory file."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != EXPECTED_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {EXPECTED_SCHEMA!r}, got {data.get('schema')!r}"
        )
    results = data.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError(f"{path}: no perf records found")
    return data


def _best_s(record: Dict[str, object], side: str) -> object:
    timing = record.get(side)
    if isinstance(timing, dict):
        return timing.get("best_s")
    return None


def check_floors(path: Path = DEFAULT_TRAJECTORY) -> List[str]:
    """Return one failure message per record whose floor does not hold.

    Each message carries the measured values (speedup, floor, and the
    fast/baseline best times) so a CI failure is diagnosable from the
    log alone.
    """
    data = load_trajectory(path)
    failures: List[str] = []
    for record in data["results"]:
        label = record.get("label", "<unlabeled>")
        floor = record.get("floor")
        speedup = record.get("speedup")
        if not isinstance(speedup, (int, float)):
            failures.append(f"{label}: missing/invalid speedup {speedup!r}")
            continue
        if floor is not None and speedup < floor:
            fast, base = _best_s(record, "fast"), _best_s(record, "baseline")
            timing = ""
            if isinstance(fast, (int, float)) and isinstance(base, (int, float)):
                timing = f" (fast best {fast:.4g}s vs baseline best {base:.4g}s)"
            failures.append(
                f"{label}: recorded speedup {speedup:.2f}x is below the "
                f"{floor:.2f}x floor{timing} — from bench "
                f"{record.get('bench', '<unknown>')!r}"
            )
    return failures


def summary_table(data: Dict[str, object]) -> List[str]:
    """Human-readable status table: one row per record, floors annotated."""
    rows = []
    for record in data["results"]:
        floor = record.get("floor")
        speedup = record.get("speedup")
        if not isinstance(speedup, (int, float)):
            status, speed_txt = "INVALID", repr(speedup)
        else:
            speed_txt = f"{speedup:.2f}x"
            if floor is None:
                status = "-"
            else:
                status = "ok" if speedup >= floor else "FAIL"
        rows.append(
            (
                str(record.get("label", "<unlabeled>")),
                speed_txt,
                "-" if floor is None else f"{floor:.2f}x",
                status,
            )
        )
    headers = ("record", "speedup", "floor", "status")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(4)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend("  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows)
    return lines


def main(argv: List[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_TRAJECTORY
    try:
        data = load_trajectory(path)
        failures = check_floors(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"perf floor check errored: {exc}")
        return 1
    for line in summary_table(data):
        print(line)
    floored = [r for r in data["results"] if r.get("floor") is not None]
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        print(f"{len(failures)} of {len(floored)} floored record(s) FAILED in {path}")
        return 1
    print(
        f"ok: {len(floored)} floored record(s) "
        f"(of {len(data['results'])}) hold in {path}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
