"""LSTM controller for header architecture search (§III-C2).

The controller emits the 4B-long decision sequence defining a
:class:`~repro.models.blocks.HeaderSpec`: for each block ``b``, two input
choices (vocabulary size ``b + 2``) and two operation choices (vocabulary
size ``|Ô|``).  Per the paper it is a single-layer LSTM with 100 hidden
units; each decision is one-hot encoded, passed through an embedding, and
the hidden state is projected to logits over the step's vocabulary
(invalid entries masked).  A separate head maps the final hidden state
through a fully-connected layer and a sigmoid to estimate validation
accuracy (the predictor used for progressive ranking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.models.blocks import BlockSpec, HeaderSpec, num_operations
from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.lstm import LSTMCell
from repro.nn.tensor import Tensor


@dataclass
class SampledArchitecture:
    """A controller sample with everything REINFORCE needs."""

    spec: HeaderSpec
    log_prob: Tensor  # scalar: Σ log π(decision)
    entropy: float  # Σ per-step entropies (for logging / regularization)


class ArchitectureController(Module):
    """Autoregressive LSTM policy over header architectures.

    Parameters
    ----------
    num_blocks:
        ``B`` — blocks per underlying module.
    hidden_size:
        LSTM width (paper: 100).
    embed_size:
        Decision-embedding width.
    repeats:
        ``U`` emitted with every sampled spec (``U`` does not change the
        search space — Eq. 14 — so it is a fixed hyperparameter here).
    """

    def __init__(
        self,
        num_blocks: int = 4,
        hidden_size: int = 100,
        embed_size: int = 24,
        repeats: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_blocks = num_blocks
        self.repeats = repeats
        self.num_ops = num_operations()
        # The largest vocabulary any step needs.
        self.max_vocab = max(self.num_ops, num_blocks + 1)
        self.hidden_size = hidden_size
        self.embed = Linear(self.max_vocab, embed_size, bias=False, rng=rng)
        self.cell = LSTMCell(embed_size, hidden_size, rng=rng)
        self.out = Linear(hidden_size, self.max_vocab, rng=rng)
        self.accuracy_head = Linear(hidden_size, 1, rng=rng)

    # ------------------------------------------------------------------
    def step_vocab_sizes(self) -> List[int]:
        """Vocabulary size of each of the 4B decisions."""
        sizes: List[int] = []
        for b in range(self.num_blocks):
            input_vocab = b + 2  # backbone, penultimate, blocks 1..b
            sizes.extend([input_vocab, input_vocab, self.num_ops, self.num_ops])
        return sizes

    def _masked_logits(self, hidden: Tensor, vocab: int) -> Tensor:
        logits = self.out(hidden)  # (1, max_vocab)
        if vocab < self.max_vocab:
            mask = np.full((1, self.max_vocab), -1e9)
            mask[0, :vocab] = 0.0
            logits = logits + Tensor(mask)
        return logits

    def sample(
        self, rng: np.random.Generator, greedy: bool = False
    ) -> SampledArchitecture:
        """Draw one architecture; returns spec + differentiable log-prob."""
        state: Optional[Tuple[Tensor, Tensor]] = None
        previous = np.zeros((1, self.max_vocab))  # start token: all-zero
        log_prob: Optional[Tensor] = None
        entropy = 0.0
        decisions: List[int] = []

        for vocab in self.step_vocab_sizes():
            embedded = self.embed(Tensor(previous))
            h, c = self.cell(embedded, state)
            state = (h, c)
            logits = self._masked_logits(h, vocab)
            log_probs = F.log_softmax(logits, axis=-1)
            probs = np.exp(log_probs.data[0, :vocab])
            probs = probs / probs.sum()
            if greedy:
                choice = int(np.argmax(probs))
            else:
                choice = int(rng.choice(vocab, p=probs))
            decisions.append(choice)
            step_lp = log_probs[0, choice]
            log_prob = step_lp if log_prob is None else log_prob + step_lp
            entropy += float(-(probs * np.log(probs + 1e-12)).sum())
            previous = F.one_hot(np.array([choice]), self.max_vocab)

        assert log_prob is not None
        spec = HeaderSpec.from_sequence(decisions, repeats=self.repeats)
        return SampledArchitecture(spec=spec, log_prob=log_prob, entropy=entropy)

    def log_prob_of(self, spec: HeaderSpec) -> Tensor:
        """Differentiable log-probability of an existing spec."""
        state: Optional[Tuple[Tensor, Tensor]] = None
        previous = np.zeros((1, self.max_vocab))
        total: Optional[Tensor] = None
        for vocab, choice in zip(self.step_vocab_sizes(), spec.to_sequence()):
            embedded = self.embed(Tensor(previous))
            h, c = self.cell(embedded, state)
            state = (h, c)
            log_probs = F.log_softmax(self._masked_logits(h, vocab), axis=-1)
            step_lp = log_probs[0, choice]
            total = step_lp if total is None else total + step_lp
            previous = F.one_hot(np.array([choice]), self.max_vocab)
        assert total is not None
        return total

    def predict_accuracy(self, spec: HeaderSpec) -> Tensor:
        """Sigmoid accuracy estimate from the final hidden state (§III-C2)."""
        state: Optional[Tuple[Tensor, Tensor]] = None
        previous = np.zeros((1, self.max_vocab))
        h: Optional[Tensor] = None
        for choice in spec.to_sequence():
            embedded = self.embed(Tensor(previous))
            h, c = self.cell(embedded, state)
            state = (h, c)
            previous = F.one_hot(np.array([choice]), self.max_vocab)
        assert h is not None
        return self.accuracy_head(h).sigmoid().reshape(())


class MovingAverageBaseline:
    """The REINFORCE variance-reduction baseline (exponential moving average)."""

    def __init__(self, decay: float = 0.8) -> None:
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        self.decay = decay
        self.value: Optional[float] = None

    def update(self, reward: float) -> float:
        """Fold in a reward; returns the baseline *before* the update."""
        if self.value is None:
            self.value = reward
            return reward
        previous = self.value
        self.value = self.decay * self.value + (1.0 - self.decay) * reward
        return previous
