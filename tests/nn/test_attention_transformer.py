"""Tests for multi-head self-attention and Transformer encoder blocks."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.tensor import Tensor, using_dtype
from repro.nn.transformer import TransformerEncoder, TransformerEncoderLayer
from tests.helpers import check_gradient

RNG = np.random.default_rng(13)


class TestMHSA:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(16, 4, rng=RNG)
        out = attn(Tensor(RNG.normal(size=(2, 7, 16))))
        assert out.shape == (2, 7, 16)

    def test_embed_dim_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_input_gradient(self):
        attn = MultiHeadSelfAttention(8, 2, rng=RNG)
        x = RNG.normal(size=(1, 3, 8))
        check_gradient(lambda t: (attn(t) ** 2).sum(), x, atol=1e-4)

    def test_head_mask_changes_output(self):
        attn = MultiHeadSelfAttention(8, 4, rng=RNG)
        x = Tensor(RNG.normal(size=(1, 4, 8)))
        full = attn(x).data.copy()
        attn.set_head_mask(np.array([True, True, False, False]))
        masked = attn(x).data
        assert not np.allclose(full, masked)
        assert attn.active_heads() == 2

    def test_all_heads_masked_yields_projection_of_zeros(self):
        attn = MultiHeadSelfAttention(8, 2, rng=RNG)
        attn.set_head_mask(np.zeros(2, dtype=bool))
        x = Tensor(RNG.normal(size=(1, 3, 8)))
        out = attn(x).data
        expected = np.broadcast_to(attn.proj.bias.data, out.shape)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_mask_shape_validation(self):
        attn = MultiHeadSelfAttention(8, 2)
        with pytest.raises(ValueError):
            attn.set_head_mask(np.ones(3, dtype=bool))

    def test_last_head_output_recorded(self):
        attn = MultiHeadSelfAttention(8, 2, rng=RNG)
        x = Tensor(RNG.normal(size=(2, 3, 8)))
        attn(x)
        assert attn.last_head_output is not None
        assert attn.last_head_output.shape == (2, 2, 3, 4)

    def test_head_output_gradients_observable(self):
        """Eq. (8) needs ∂F/∂O_h on the recorded per-head output."""
        attn = MultiHeadSelfAttention(8, 2, rng=RNG)
        x = Tensor(RNG.normal(size=(1, 3, 8)), requires_grad=True)
        out = attn(x)
        (out**2).sum().backward()
        assert attn.last_head_output.grad is not None
        assert attn.last_head_output.grad.shape == (1, 2, 3, 4)

    def test_attention_is_permutation_sensitive(self):
        # Without positional information self-attention output per token is
        # permutation-equivariant; check the machinery reflects input order.
        # The 1e-8 equivariance tolerance (reductions reorder under the
        # permutation) is a float64 statement.
        with using_dtype("float64"):
            attn = MultiHeadSelfAttention(8, 2, rng=RNG)
            x = RNG.normal(size=(1, 4, 8))
            out1 = attn(Tensor(x)).data
            out2 = attn(Tensor(x[:, ::-1])).data
        np.testing.assert_allclose(out1, out2[:, ::-1], atol=1e-8)


class TestEncoderLayer:
    def test_residual_path(self):
        layer = TransformerEncoderLayer(8, 2, rng=RNG)
        x = Tensor(RNG.normal(size=(1, 3, 8)))
        out = layer(x)
        assert out.shape == x.shape

    def test_inactive_layer_is_identity(self):
        layer = TransformerEncoderLayer(8, 2, rng=RNG)
        layer.active = False
        x = Tensor(RNG.normal(size=(2, 3, 8)))
        assert layer(x) is x

    def test_gradient_flows(self):
        layer = TransformerEncoderLayer(8, 2, rng=RNG)
        x = RNG.normal(size=(1, 2, 8))
        check_gradient(lambda t: (layer(t) ** 2).sum(), x, atol=1e-4, rtol=1e-3)


class TestEncoder:
    def test_depth_control(self):
        enc = TransformerEncoder(4, 8, 2, rng=RNG)
        assert enc.active_depth() == 4
        enc.set_active_depth(2)
        assert enc.active_depth() == 2
        assert enc.layers[0].active and enc.layers[1].active
        assert not enc.layers[2].active

    def test_depth_bounds(self):
        enc = TransformerEncoder(3, 8, 2)
        with pytest.raises(ValueError):
            enc.set_active_depth(0)
        with pytest.raises(ValueError):
            enc.set_active_depth(4)

    def test_reduced_depth_changes_output(self):
        enc = TransformerEncoder(3, 8, 2, rng=RNG)
        x = Tensor(RNG.normal(size=(1, 4, 8)))
        full = enc(x).data.copy()
        enc.set_active_depth(1)
        shallow = enc(x).data
        assert not np.allclose(full, shallow)

    def test_collect_hidden_counts_active_layers(self):
        enc = TransformerEncoder(4, 8, 2, rng=RNG)
        enc.set_active_depth(3)
        x = Tensor(RNG.normal(size=(1, 2, 8)))
        out, hidden = enc(x, collect_hidden=True)
        assert len(hidden) == 3
        np.testing.assert_allclose(hidden[-1].data, out.data)

    def test_penultimate_and_final(self):
        enc = TransformerEncoder(3, 8, 2, rng=RNG)
        x = Tensor(RNG.normal(size=(1, 2, 8)))
        penult, final = enc.penultimate_and_final(x)
        out, hidden = enc(x, collect_hidden=True)
        np.testing.assert_allclose(final.data, out.data)
        np.testing.assert_allclose(penult.data, hidden[-2].data)

    def test_penultimate_single_layer(self):
        enc = TransformerEncoder(2, 8, 2, rng=RNG)
        enc.set_active_depth(1)
        x = Tensor(RNG.normal(size=(1, 2, 8)))
        penult, final = enc.penultimate_and_final(x)
        np.testing.assert_allclose(penult.data, final.data)

    def test_training_reduces_loss(self):
        """An encoder + linear head can fit a small random problem."""
        from repro.nn.layers import Linear
        from repro.nn.optim import Adam

        rng = np.random.default_rng(0)
        enc = TransformerEncoder(2, 8, 2, rng=rng)
        head = Linear(8, 3, rng=rng)
        x = Tensor(rng.normal(size=(12, 4, 8)))
        y = rng.integers(0, 3, size=12)
        params = enc.parameters() + head.parameters()
        opt = Adam(params, lr=1e-2)

        def loss_value():
            logits = head(enc(x).mean(axis=1))
            return F.cross_entropy(logits, y)

        first = float(loss_value().data)
        for _ in range(30):
            opt.zero_grad()
            loss = loss_value()
            loss.backward()
            opt.step()
        final = float(loss_value().data)
        assert final < first * 0.5
