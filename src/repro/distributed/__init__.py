"""The bidirectional single-loop distributed system (cloud/edge/device)."""

from repro.distributed.cloud import CloudConfig, CloudServer
from repro.distributed.device import DeviceNode
from repro.distributed.edge import EdgeConfig, EdgeServer
from repro.distributed.executor import (
    WorkerSpec,
    parallel_map,
    parallel_starmap,
    resolve_workers,
    split_worker_budget,
)
from repro.distributed.faults import (
    DeliveryError,
    FaultConfig,
    FaultDecision,
    FaultPolicy,
    FaultRecord,
    ProtocolError,
)
from repro.distributed.messages import Message, MessageKind, payload_nbytes
from repro.distributed.metrics import (
    NormalizedTradeoff,
    centralized_upload_bytes,
    energy_efficiency_ratio,
    relative_upload,
    schedule_length,
    size_efficiency_ratio,
)
from repro.distributed.network import Network, NetworkShard, TrafficStats
from repro.distributed.system import (
    ACMEConfig,
    ACMERunResult,
    ACMESystem,
    ClusterResult,
)

__all__ = [
    "ACMEConfig",
    "ACMERunResult",
    "ACMESystem",
    "CloudConfig",
    "CloudServer",
    "ClusterResult",
    "DeliveryError",
    "DeviceNode",
    "EdgeConfig",
    "EdgeServer",
    "FaultConfig",
    "FaultDecision",
    "FaultPolicy",
    "FaultRecord",
    "Message",
    "MessageKind",
    "Network",
    "NetworkShard",
    "NormalizedTradeoff",
    "ProtocolError",
    "TrafficStats",
    "WorkerSpec",
    "centralized_upload_bytes",
    "energy_efficiency_ratio",
    "parallel_map",
    "parallel_starmap",
    "payload_nbytes",
    "relative_upload",
    "resolve_workers",
    "schedule_length",
    "size_efficiency_ratio",
    "split_worker_budget",
]
