"""Simulated network with full traffic accounting.

The :class:`Network` delivers messages between named nodes instantly (this
is a protocol/cost simulation, not a latency simulation) and records every
transfer: per message kind, per direction, and per (sender, receiver) pair.
Table I's "Upload Data" column is read directly from these counters.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.distributed.messages import Message, MessageKind


@dataclass
class TrafficStats:
    """Aggregated transfer counters."""

    total_bytes: int = 0
    upload_bytes: int = 0
    download_bytes: int = 0
    message_count: int = 0
    by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    by_pair: Dict[Tuple[str, str], int] = field(default_factory=lambda: defaultdict(int))

    def record(self, message: Message) -> None:
        self.total_bytes += message.nbytes
        self.message_count += 1
        if message.kind.is_upload:
            self.upload_bytes += message.nbytes
        else:
            self.download_bytes += message.nbytes
        self.by_kind[message.kind.value] += message.nbytes
        self.by_pair[(message.sender, message.receiver)] += message.nbytes

    def upload_megabytes(self) -> float:
        return self.upload_bytes / 1e6

    def total_megabytes(self) -> float:
        return self.total_bytes / 1e6


class Network:
    """In-process message fabric connecting cloud, edges and devices."""

    def __init__(self) -> None:
        self._handlers: Dict[str, Callable[[Message], Optional[Message]]] = {}
        self.stats = TrafficStats()
        self.log: List[Message] = []

    def register(self, name: str, handler: Callable[[Message], Optional[Message]]) -> None:
        """Register a node's message handler under its unique name."""
        if name in self._handlers:
            raise ValueError(f"node name {name!r} already registered")
        self._handlers[name] = handler

    def nodes(self) -> List[str]:
        return sorted(self._handlers)

    def send(self, message: Message) -> Optional[Message]:
        """Deliver a message; returns the receiver's (unrecorded) reply.

        Replies returned by handlers are control-flow conveniences for the
        simulation; protocols that need the reply *transmitted* must send it
        as an explicit message so its bytes are accounted.
        """
        if message.receiver not in self._handlers:
            raise KeyError(f"unknown receiver {message.receiver!r}")
        self.stats.record(message)
        self.log.append(message)
        return self._handlers[message.receiver](message)

    def kind_sequence(self) -> List[str]:
        """The ordered kinds of all delivered messages (for conformance tests)."""
        return [m.kind.value for m in self.log]

    def reset_stats(self) -> None:
        self.stats = TrafficStats()
        self.log = []
