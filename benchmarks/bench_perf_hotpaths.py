"""Perf trajectory bench: the numerical-core fast paths vs the seed engine.

Three comparisons, each asserting a hard speedup floor so regressions
fail loudly:

* **conv forward** — no-grad float32 forward with a warm im2col index
  cache vs the seed configuration (float64, tape recorded, indices
  rebuilt every call).  Floor: 2×.
* **similarity matrix** — vectorized sliced-Wasserstein (one projection
  matmul + one sort per feature set, shared across all pairs) vs the
  per-pair per-projection scipy loop, on an 8-device fleet.  Floor: 3×.
* **end-to-end system** — a small ``ACMESystem().run()`` in fast mode
  (float32, no-grad inference routing, caches, vectorized similarity) vs
  the seed configuration (float64, every forward taped, cold indices,
  loop similarity).  Floor: 2×.

Results are persisted machine-readably to ``bench_results/`` and to
``BENCH_perf.json`` at the repo root — the file future perf PRs are
measured against.

Run:  PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_perf_hotpaths.py -s
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit_perf, perf_record, timed

from repro.core import similarity
from repro.core.distill import DistillConfig
from repro.distributed.cloud import CloudConfig
from repro.distributed.system import ACMEConfig, ACMESystem
from repro.models import ViTConfig
from repro.nn import conv as nn_conv
from repro.nn import tensor as nn_tensor
from repro.nn.conv import Conv2d
from repro.nn.tensor import Tensor, no_grad

REPO_ROOT = Path(__file__).resolve().parent.parent

# Floors asserted by emit_perf — regressions below these fail the bench.
CONV_FLOOR = 2.0
SIMILARITY_FLOOR = 3.0
SYSTEM_FLOOR = 2.0


@contextmanager
def engine_mode(fast: bool):
    """Pin the engine to the fast path or the seed-equivalent slow path.

    Slow mode reproduces the pre-perf-PR engine: float64 compute, tape
    recording forced even inside ``no_grad`` regions (which also disables
    the tape-free conv/pool kernels), ``libm``-pow integer exponents,
    im2col indices rebuilt on every forward, the per-pair similarity
    loops, and allocate-per-accumulation gradients (the PR 3 in-place
    engine switched off).
    """
    previous_dtype = nn_tensor.get_default_dtype()
    try:
        if fast:
            nn_tensor.set_default_dtype("float32")
            nn_tensor._set_grad_override(None)
            nn_tensor._set_fast_pow(True)
            nn_tensor._set_inplace_accumulation(True)
            nn_conv.set_im2col_cache_enabled(True)
            similarity.set_vectorized(True)
        else:
            nn_tensor.set_default_dtype("float64")
            nn_tensor._set_grad_override(True)
            nn_tensor._set_fast_pow(False)
            nn_tensor._set_inplace_accumulation(False)
            nn_conv.set_im2col_cache_enabled(False)
            similarity.set_vectorized(False)
        nn_conv.clear_im2col_cache()
        yield
    finally:
        nn_tensor.set_default_dtype(previous_dtype)
        nn_tensor._set_grad_override(None)
        nn_tensor._set_fast_pow(True)
        nn_tensor._set_inplace_accumulation(True)
        nn_conv.set_im2col_cache_enabled(True)
        similarity.set_vectorized(True)


# ----------------------------------------------------------------------
def bench_conv_forward():
    """3×3 conv forward over a (8, 16, 16, 16) activation batch."""
    x = np.random.default_rng(0).normal(size=(8, 16, 16, 16))

    def run_mode(fast: bool):
        with engine_mode(fast):
            conv = Conv2d(16, 16, kernel_size=3, padding=1, rng=np.random.default_rng(1))
            t = Tensor(x)  # cast to the mode's dtype once, outside the timer

            def step():
                with no_grad():
                    conv(t)

            return timed(step, repeats=20, warmup=3)

    return perf_record(
        "conv_forward_warm_cache",
        fast=run_mode(True),
        baseline=run_mode(False),
        floor=CONV_FLOOR,
        shape=[8, 16, 16, 16],
        kernel=3,
    )


def bench_similarity_matrix():
    """8-device Wasserstein distance matrix (64×32 feature clouds)."""
    rng = np.random.default_rng(7)
    feats = [rng.normal(size=(64, 32)) + 0.3 * i for i in range(8)]

    def run_mode(fast: bool):
        with engine_mode(fast):
            return timed(
                lambda: similarity.distance_matrix(feats, metric="wasserstein", seed=0),
                repeats=5,
                warmup=1,
            )

    fast, slow = run_mode(True), run_mode(False)
    # Both paths must agree numerically, not just be fast.
    with engine_mode(True):
        d_fast = similarity.distance_matrix(feats, seed=0)
    with engine_mode(False):
        d_slow = similarity.distance_matrix(feats, seed=0)
    np.testing.assert_allclose(d_fast, d_slow, rtol=1e-9, atol=1e-12)
    return perf_record(
        "similarity_matrix_8_devices",
        fast=fast,
        baseline=slow,
        floor=SIMILARITY_FLOOR,
        devices=8,
        samples=64,
        dims=32,
    )


def _small_system_config(fast: bool) -> ACMEConfig:
    vit = ViTConfig(num_classes=6, depth=3, embed_dim=32, num_heads=4)
    config = ACMEConfig(
        num_clusters=1,
        devices_per_cluster=3,
        num_classes=6,
        samples_per_class=40,
        public_samples_per_class=20,
        vit=vit,
        cloud=CloudConfig(
            depth_choices=[1, 2, 3],
            pretrain_epochs=2,
            distill=DistillConfig(epochs=1, seed=0),
            seed=0,
        ),
        compute_dtype="float32" if fast else "float64",
        seed=0,
    )
    if not fast:
        # Seed equivalence also means no PR 3 batched serving: one
        # backbone forward per device/child, like the original loops.
        config.edge.batched_serving = False
        config.edge.nas.batched_scoring = False
    return config


def bench_system_run():
    """End-to-end ``ACMESystem().run()`` on a 1-cluster, 3-device config.

    Construction (data generation, node wiring) happens outside the
    timer; the timed region is the full Fig. 4 pipeline.  Three timed
    runs per mode (fresh system each, so no warm training state leaks
    between runs) — best-of-3 keeps shared-machine noise away from the
    asserted 2× floor.
    """

    def run_mode(fast: bool):
        times = []
        result_box = {}
        with engine_mode(fast):
            for _ in range(3):
                system = ACMESystem(_small_system_config(fast))
                start = time.perf_counter()
                result_box["result"] = system.run()
                times.append(time.perf_counter() - start)
        measurement = {
            "best_s": min(times),
            "mean_s": sum(times) / len(times),
            "repeats": len(times),
            "warmup": 0,
            "times_s": times,
        }
        return measurement, result_box["result"]

    fast, fast_result = run_mode(True)
    slow, slow_result = run_mode(False)
    return perf_record(
        "acme_system_run_small",
        fast=fast,
        baseline=slow,
        floor=SYSTEM_FLOOR,
        fast_mean_accuracy=fast_result.mean_accuracy,
        baseline_mean_accuracy=slow_result.mean_accuracy,
    )


def run_bench():
    records = [
        bench_conv_forward(),
        bench_similarity_matrix(),
        bench_system_run(),
    ]
    return emit_perf(
        "bench_perf_hotpaths",
        records,
        path=REPO_ROOT / "BENCH_perf.json",
    )


def test_perf_hotpaths():
    run_bench()


if __name__ == "__main__":
    run_bench()
