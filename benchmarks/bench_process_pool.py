"""Perf bench: the process-pool executor and the cache-blocked fused step.

Two comparisons, recorded into the ``BENCH_perf.json`` trajectory
(merged with the existing records, their floors untouched):

* ``process_pool_importance_rounds`` — an 8-device importance-round
  fan-out (Algorithm 2's per-device phase: a taped DAG-header forward /
  backward per batch, the GIL-bound workload the process backend
  exists for) through ``parallel_map(backend="process")`` with 4
  workers.  On a host with ≥4 cores this is measured **wall-clock
  against the thread backend** — the honest past-the-GIL claim — with
  a ≥1.5× floor.  On a smaller host (single-core CI) no real
  parallelism is possible, so the record falls back to the
  hardware-independent *schedule length* of the measured per-device
  durations on 4 workers vs their serial sum (the same contract the
  cross-edge and cluster-finalize benches pin), keeping the 1.5×
  floor replayable everywhere.  Either way the process-backend results
  are asserted **bit-for-bit identical** to the serial loop under
  float64 — parameters shared over ``multiprocessing.shared_memory``
  included.

* ``fused_step_cache_blocked`` — the cache-blocked fused Adam sweep
  (PR 9: ``repro.nn.optim._FUSED_BLOCK_ELEMS``-element chunks keep one
  block of all six step arrays cache-resident across the ~14 ufunc
  passes) vs the unblocked sweep on multi-megabyte flat buffers.
  Floor: 1.0× — blocking must never lose; measured 1.1–1.2× on
  0.5M–4M-element buffers.  Parity is bit-for-bit by construction
  (elementwise passes) and asserted in ``tests/nn/test_optim_blocked.py``.

Run:  PYTHONPATH=src python benchmarks/bench_process_pool.py
  or: PYTHONPATH=src python -m pytest benchmarks/bench_process_pool.py -s
``--smoke`` runs tiny shapes with no floor assertions and without
touching ``BENCH_perf.json`` (wired into tier-1 so this script cannot
rot between perf PRs).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import List

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit_perf, perf_record, timed

from repro.core.header_importance import ImportanceConfig, compute_importance_set
from repro.data.synthetic import make_cifar100_like
from repro.distributed.executor import parallel_map
from repro.distributed.metrics import schedule_length
from repro.distributed.procpool import fork_available
from repro.models.blocks import HeaderSpec
from repro.models.header_dag import DAGHeader
from repro.models.vit import VisionTransformer, ViTConfig
from repro.nn.optim import Adam, set_fused_block_elems
from repro.nn.tensor import Tensor, using_dtype

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKERS = 4
DEVICES = 8
#: Floor on the process-pool importance fan-out: wall-clock vs threads
#: on a ≥4-core host, schedule-length vs serial on anything smaller.
PROCESS_POOL_FLOOR = 1.5
#: Floor on the cache-blocked fused sweep: blocking must never lose.
BLOCKED_STEP_FLOOR = 1.0


def _importance_fixture(smoke: bool):
    """Task + a factory for fresh per-run work items.

    ``compute_importance_set`` trains the header it scores, so every
    run (serial reference, each timed repeat, each backend) must start
    from freshly built — seed-identical — headers, exactly like the
    fleet bench rebuilds its fleets.
    """
    members = 3 if smoke else DEVICES
    vit = ViTConfig(num_classes=8, depth=1, embed_dim=16, num_heads=4, image_size=16)
    backbone = VisionTransformer(vit, seed=0)
    generator = make_cifar100_like(num_classes=8, image_size=16, seed=0)
    spec = HeaderSpec.from_sequence([0, 1, 0, 2, 1, 2, 2, 0])
    datasets = [
        generator.generate(samples_per_class=2 if smoke else 6, seed=30 + i)
        for i in range(members)
    ]
    configs = [ImportanceConfig(seed=i, batch_size=4) for i in range(members)]

    def make_items():
        headers = [
            DAGHeader(
                vit.embed_dim, vit.num_patches, vit.num_classes, spec,
                rng=np.random.default_rng(i),
            )
            for i in range(members)
        ]
        items = list(zip(headers, datasets, configs))
        shared = [list(h.parameters()) for h in headers]
        return items, shared

    task = lambda triple: compute_importance_set(  # noqa: E731
        backbone, triple[0], triple[1], config=triple[2]
    )
    return make_items, task


def bench_process_pool_importance(smoke: bool):
    """8 per-device importance rounds: process pool vs thread/serial."""
    multicore = (os.cpu_count() or 1) >= WORKERS and fork_available()
    with using_dtype("float64"):
        make_items, task = _importance_fixture(smoke)

        # Serial reference + per-device durations (drives the
        # schedule-length fallback and the parity assert).
        items, _ = make_items()
        durations: List[float] = []
        serial_sets = []
        for item in items:
            start = time.perf_counter()
            serial_sets.append(task(item))
            durations.append(time.perf_counter() - start)
        serial_total = sum(durations)

        # The process backend must reproduce the serial sets exactly —
        # results travel back over the wire codec, header parameters
        # over shared memory.
        process_items, process_shared = make_items()
        process_sets = parallel_map(
            task, process_items, max_workers=WORKERS, backend="process",
            shared_params=process_shared,
        )
        for a, b in zip(serial_sets, process_sets):
            np.testing.assert_array_equal(a, b)

        one_run = {"repeats": 1, "warmup": 0}
        if multicore:
            repeats = 2 if smoke else 5

            def run_threads():
                fresh, _ = make_items()
                return parallel_map(task, fresh, max_workers=WORKERS,
                                    backend="thread")

            def run_processes():
                fresh, shared = make_items()
                return parallel_map(task, fresh, max_workers=WORKERS,
                                    backend="process", shared_params=shared)

            thread_run = timed(run_threads, repeats=repeats, warmup=1)
            process_run = timed(run_processes, repeats=repeats, warmup=1)
            return perf_record(
                "process_pool_importance_rounds",
                fast=process_run,
                baseline=thread_run,
                floor=None if smoke else PROCESS_POOL_FLOOR,
                workers=WORKERS,
                devices=len(items),
                host_cpus=os.cpu_count(),
                metric="wall-clock: process pool vs thread pool on this host",
                parity="float64 importance sets identical serial vs process",
            )
        # Single-core (or fork-less) fallback: the hardware-independent
        # schedule length of the measured per-device durations — the
        # speedup the pool delivers once the 4 workers are real cores.
        makespan = schedule_length(durations, WORKERS)
        return perf_record(
            "process_pool_importance_rounds",
            fast={"best_s": makespan, "mean_s": makespan, **one_run},
            baseline={"best_s": serial_total, "mean_s": serial_total, **one_run},
            floor=None if smoke else PROCESS_POOL_FLOOR,
            workers=WORKERS,
            devices=len(items),
            host_cpus=os.cpu_count(),
            metric="list-schedule length of measured per-device durations "
            "(single-core fallback; wall-clock mode needs >= 4 cores)",
            per_device_s=durations,
            parity="float64 importance sets identical serial vs process",
        )


def bench_blocked_fused_step(smoke: bool):
    """Cache-blocked vs unblocked fused Adam on multi-megabyte flats."""
    size = 100_000 if smoke else 2_000_000
    repeats = 3 if smoke else 10

    def run_mode(block_elems: int):
        previous = set_fused_block_elems(block_elems)
        try:
            with using_dtype("float64"):
                rng = np.random.default_rng(0)
                params = [Tensor(rng.normal(size=size), requires_grad=True)]
                params[0].grad = rng.normal(size=size)
                optimizer = Adam(params, lr=1e-3, fused=True)
                return timed(optimizer.step, repeats=repeats, warmup=3)
        finally:
            set_fused_block_elems(previous)

    from repro.nn import optim as _optim

    blocked = run_mode(_optim._FUSED_BLOCK_ELEMS)
    unblocked = run_mode(0)
    return perf_record(
        "fused_step_cache_blocked",
        fast=blocked,
        baseline=unblocked,
        floor=None if smoke else BLOCKED_STEP_FLOOR,
        buffer_elems=size,
        dtype="float64",
        metric="one fused Adam step, cache-blocked vs unblocked sweep",
        parity="bit-for-bit by construction (elementwise passes); "
        "asserted in tests/nn/test_optim_blocked.py",
    )


def run_bench(smoke: bool = False):
    records = [
        bench_process_pool_importance(smoke),
        bench_blocked_fused_step(smoke),
    ]
    # Smoke runs exercise the full pipeline but never touch the committed
    # trajectory file or the full run's bench_results records.
    return emit_perf(
        "bench_process_pool_smoke" if smoke else "bench_process_pool",
        records,
        path=None if smoke else REPO_ROOT / "BENCH_perf.json",
    )


def test_process_pool_bench():
    run_bench(smoke="--smoke" in sys.argv)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny shapes, no floor assertions, BENCH_perf.json untouched",
    )
    run_bench(smoke=parser.parse_args().smoke)
