"""Gradient-based optimizers.

Plain SGD (with momentum and weight decay) and Adam, operating on lists of
:class:`~repro.nn.layers.Parameter`.  All state is keyed by parameter
identity, so parameters can be shared between child models (the ENAS
weight-sharing scheme) and still receive a single, consistent update.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base class: holds parameters, exposes ``step`` and ``zero_grad``."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        # Deduplicate by identity so shared modules are stepped once.
        seen = set()
        self.params: List[Tensor] = []
        for p in params:
            if id(p) not in seen:
                seen.add(id(p))
                self.params.append(p)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                buf = self._velocity.get(id(p))
                if buf is None:
                    buf = np.zeros_like(p.data)
                buf = self.momentum * buf + grad
                self._velocity[id(p)] = buf
                grad = buf
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: int = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = b1 * m + (1 - b1) * grad
            v = b2 * v + (1 - b2) * (grad * grad)
            self._m[id(p)] = m
            self._v[id(p)] = v
            p.data = p.data - self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad * p.grad).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
