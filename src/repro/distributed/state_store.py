"""Lazy per-device state with LRU eviction — the fleet-scale memory model.

An always-live :class:`~repro.distributed.device.DeviceNode` holds a
full :class:`~repro.models.vit.VisionTransformer` and a
:class:`~repro.models.header_dag.DAGHeader` from the moment the model
distribution arrives; at 10⁴–10⁶ registered devices that is the memory
bill that makes fleet-scale simulation impossible.  This module keeps a
bounded working set instead:

* :class:`DeviceStateLRU` — a capacity-bounded LRU of *live* devices.
  Touching a cold device hydrates it (building its header on first
  touch, or restoring an evicted snapshot); exceeding the capacity
  evicts the least-recently-used device to a compact serialized blob
  (:func:`repro.nn.serialization.state_to_bytes`, the in-memory ``npz``
  path — bit-exact array round-trip).
* One **shared backbone per model payload**: every device in an ACME
  cluster receives the same frozen ``backbone_state``, so the store
  materializes a single :class:`VisionTransformer` per distribution
  payload and lends it to whichever devices are live.  Backbones are
  read-only during the single loop, and the engine's kernels are
  deterministic per input, so sharing is bit-for-bit equivalent to the
  per-device instances of the always-live path.

Snapshot contents cover everything mutable on a device: header
parameters (masked values), the prune mask and its pristine copies, the
cached frozen-feature sample, and — for training loops that persist an
optimizer across the eviction point — fused/reference Adam moments via
:func:`export_adam_state` / :func:`import_adam_state`.  Parity is
asserted bit-for-bit in ``tests/distributed/test_state_store.py``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.models.vit import VisionTransformer
from repro.nn.optim import Adam
from repro.nn.serialization import state_from_bytes, state_to_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.models.header_dag import DAGHeader

__all__ = [
    "DeviceStateLRU",
    "snapshot_header",
    "restore_header",
    "export_adam_state",
    "import_adam_state",
]

_PARAM = "param."
_MASK = "mask."
_PRISTINE = "pristine."


def snapshot_header(header: "DAGHeader") -> Dict[str, np.ndarray]:
    """Everything mutable on a header, as a flat array dict.

    Captures the current (possibly masked) parameter values plus the
    prune-mask state :meth:`DAGHeader.set_parameter_mask` maintains —
    the boolean masks *and* the pristine pre-mask copies, which later
    re-masks compose from.  Restoring all three reproduces the header's
    observable behavior bit-for-bit, including future ``reapply_mask``
    and re-prune calls.
    """
    state = {_PARAM + name: value for name, value in header.state_dict().items()}
    if header._parameter_mask is not None:
        for name, mask in header._parameter_mask.items():
            state[_MASK + name] = mask
    if header._pristine is not None:
        for name, pristine in header._pristine.items():
            state[_PRISTINE + name] = pristine
    return state


def restore_header(header: "DAGHeader", state: Dict[str, np.ndarray]) -> None:
    """Load a :func:`snapshot_header` dict into a freshly built header."""
    params = {
        key[len(_PARAM):]: value
        for key, value in state.items()
        if key.startswith(_PARAM)
    }
    header.load_state_dict(params)
    masks = {
        key[len(_MASK):]: value.astype(bool)
        for key, value in state.items()
        if key.startswith(_MASK)
    }
    pristine = {
        key[len(_PRISTINE):]: value
        for key, value in state.items()
        if key.startswith(_PRISTINE)
    }
    header._parameter_mask = masks or None
    header._pristine = pristine or None


def export_adam_state(optimizer: Adam) -> Dict[str, np.ndarray]:
    """Adam moments + step count as arrays, in ``optimizer.params`` order.

    Reads whichever storage is authoritative — the fused flat-group
    state views when groups exist, else the reference ``_m``/``_v``
    dicts — so a snapshot taken mid-training captures exactly what the
    next ``step()`` would have used.  Never-stepped parameters export
    their zero-initialized moments.
    """
    if not isinstance(optimizer, Adam):
        raise TypeError(
            f"optimizer state capsule supports Adam, got {type(optimizer).__name__}"
        )
    views: Dict[int, List[np.ndarray]] = {}
    if optimizer._flat_groups is not None:
        for group in optimizer._flat_groups:
            views.update(group.carried_state())
    state: Dict[str, np.ndarray] = {"t": np.asarray(optimizer._t, dtype=np.int64)}
    for i, p in enumerate(optimizer.params):
        carried = views.get(id(p))
        if carried is not None:
            m, v = carried[0], carried[1]
        else:
            m = optimizer._m.get(id(p))
            v = optimizer._v.get(id(p))
            if m is None or v is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
        state[f"m.{i}"] = np.array(m, copy=True)
        state[f"v.{i}"] = np.array(v, copy=True)
    return state


def import_adam_state(optimizer: Adam, state: Dict[str, np.ndarray]) -> None:
    """Restore :func:`export_adam_state` into a freshly built Adam.

    The optimizer must already be bound to the restored module's
    parameters, in the same order as at export.  For a fused optimizer
    the flat groups are force-built and the moments copied into their
    state views — from where a later ``Module.astype`` rebuild carries
    (and casts) them exactly like never-evicted state (the PR 5 rebind
    path); for a reference optimizer the ``_m``/``_v`` dicts are filled.
    """
    if not isinstance(optimizer, Adam):
        raise TypeError(
            f"optimizer state capsule supports Adam, got {type(optimizer).__name__}"
        )
    optimizer._t = int(state["t"])
    if optimizer.fused:
        if optimizer._flat_groups is None:
            optimizer._flat_groups = optimizer._build_groups()
        index_of = {id(p): i for i, p in enumerate(optimizer.params)}
        for group in optimizer._flat_groups:
            for j, p in enumerate(group.params):
                i = index_of[id(p)]
                np.copyto(group.state_views[0][j], state[f"m.{i}"], casting="unsafe")
                np.copyto(group.state_views[1][j], state[f"v.{i}"], casting="unsafe")
    else:
        for i, p in enumerate(optimizer.params):
            optimizer._m[id(p)] = np.array(state[f"m.{i}"], copy=True)
            optimizer._v[id(p)] = np.array(state[f"v.{i}"], copy=True)


class DeviceStateLRU:
    """Capacity-bounded working set of live devices for one cluster.

    Owners implement the hydration protocol — ``_hydrate()`` (build or
    restore live state) and ``_evict()`` (serialize to a cold blob and
    drop live references) — and call :meth:`touch` before using their
    model state.  The store is deliberately single-threaded: lazy
    clusters run their device fan-outs serially (the edge enforces it),
    because a concurrent hydration could evict a peer mid-use.
    """

    def __init__(self, capacity: int, compress: bool = False) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        #: Whether cold blobs are zlib-compressed.  Header parameters are
        #: high-entropy float64, so compression recovers only a few
        #: percent while costing ~5× the serialization time — off by
        #: default; flip it for low-entropy state (e.g. heavily masked
        #: headers, integer-quantized params).
        self.compress = bool(compress)
        self._live: "OrderedDict[str, object]" = OrderedDict()
        #: One shared backbone per distribution payload, keyed by the
        #: identity of the payload's ``backbone_state`` dict (kept
        #: strongly referenced alongside, so the id cannot be recycled).
        self._backbones: Dict[int, tuple] = {}
        self.hydrations = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def touch(self, owner) -> None:
        """Mark ``owner`` most-recently-used, hydrating it if cold.

        Hydration beyond capacity evicts the least-recently-used live
        device first-in-first-out until the bound holds again.
        """
        key = owner.name
        if key in self._live:
            self._live.move_to_end(key)
            return
        owner._hydrate()
        self.hydrations += 1
        self._live[key] = owner
        while len(self._live) > self.capacity:
            _, cold = self._live.popitem(last=False)
            cold._evict()
            self.evictions += 1

    def drop(self, owner) -> None:
        """Forget a live entry without snapshotting (state superseded)."""
        self._live.pop(owner.name, None)

    @property
    def live_count(self) -> int:
        return len(self._live)

    def is_live(self, owner) -> bool:
        return owner.name in self._live

    # ------------------------------------------------------------------
    def shared_backbone(self, payload: Dict) -> VisionTransformer:
        """The single backbone instance for a distribution payload.

        Built exactly like :meth:`DeviceNode._receive_model` builds its
        per-device instance — same seed, state dict, importance orders
        and scaling — so forwards through the shared instance are
        bit-identical to the always-live path's.
        """
        backbone_state = payload["backbone_state"]
        key = id(backbone_state)
        cached = self._backbones.get(key)
        if cached is not None:
            return cached[0]
        backbone = VisionTransformer(payload["vit_config"], seed=0)
        backbone.load_state_dict(backbone_state)
        backbone.set_importance_orders(
            head_orders=payload["head_orders"],
            neuron_orders=payload["neuron_orders"],
        )
        backbone.scale(payload["width"], payload["depth"])
        self._backbones[key] = (backbone, backbone_state)
        return backbone
