"""Shared test utilities: gradient checking and deterministic seeding.

Seeding discipline: the engine keeps a small amount of process-wide
state (the per-thread fallback-init streams of ``repro.nn.init``, the
im2col index cache, the similarity projection cache) plus context-local
grad/dtype switches.  :func:`reset_engine_state` restores all of it to
the import-time defaults — including the **float32** default dtype the
engine ships with since PR 9; float64-sensitive tests opt back in with
``using_dtype("float64")`` (the gradient-check helpers below do so
internally, since finite differences at ``eps=1e-6`` are meaningless in
single precision).  ``tests/conftest.py`` applies the reset around every
test so the suite passes under any test ordering — including
``pytest-randomly``-style shuffling (``-p no:randomly`` is never
required for correctness) — even though unseeded modules now draw from
a shared stream whose position depends on construction history.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor, using_dtype


def fresh_rng(seed: int = 0) -> np.random.Generator:
    """A private, order-independent generator for one test."""
    return np.random.default_rng(seed)


def reset_engine_state() -> None:
    """Restore every piece of shared engine state to import-time defaults."""
    from repro import nn
    from repro.core import similarity
    from repro.nn.tensor import _set_fast_pow, _set_grad_override

    nn.set_seed(0)
    nn.set_default_dtype("float32")
    nn.set_grad_enabled(True)
    _set_grad_override(None)
    _set_fast_pow(True)
    nn.set_im2col_cache_enabled(True)
    nn.clear_im2col_cache()
    similarity.set_vectorized(True)
    similarity.clear_projection_cache()


def numerical_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(
    build: Callable[[Tensor], Tensor],
    x: np.ndarray,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Compare autograd gradients against finite differences.

    ``build`` maps an input tensor to a scalar loss tensor.  Runs
    under ``using_dtype("float64")`` regardless of the ambient engine
    default: central differences at ``eps=1e-6`` vanish into float32
    rounding error.
    """
    x = np.asarray(x, dtype=np.float64)

    with using_dtype("float64"):
        tensor = Tensor(x.copy(), requires_grad=True)
        loss = build(tensor)
        assert loss.size == 1, "check_gradient requires a scalar loss"
        loss.backward()
        analytic = tensor.grad

        def eval_loss(arr: np.ndarray) -> float:
            return float(build(Tensor(arr.copy())).data)

        numeric = numerical_gradient(eval_loss, x)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


def parameter_gradient_check(
    module, forward: Callable[[], Tensor], params: Sequence, atol=1e-5, rtol=1e-4
) -> None:
    """Finite-difference check for a module's parameters.

    ``forward`` recomputes the scalar loss from scratch (capturing the
    module by closure); each parameter in ``params`` is perturbed in place.
    Float64-scoped like :func:`check_gradient`; the module itself must
    already hold float64 parameters (build it under the same scope).
    """
    with using_dtype("float64"):
        _parameter_gradient_check(module, forward, params, atol, rtol)


def _parameter_gradient_check(module, forward, params, atol, rtol) -> None:
    loss = forward()
    module.zero_grad()
    loss.backward()
    analytic = [p.grad.copy() for p in params]

    for p, expected in zip(params, analytic):
        def eval_loss(arr: np.ndarray) -> float:
            saved = p.data
            p.data = arr
            value = float(forward().data)
            p.data = saved
            return value

        numeric = numerical_gradient(eval_loss, p.data.copy())
        np.testing.assert_allclose(expected, numeric, atol=atol, rtol=rtol)
