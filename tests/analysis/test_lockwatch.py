"""The runtime lock-order detector.

The contract under test: disarmed costs nothing (plain locks, no proxy),
armed records per-thread nesting of every registered lock and raises
:class:`LockOrderError` naming both acquisition sites *instead of*
performing the acquire that would complete a deadlock cycle.
"""

import threading

import pytest

from repro.analysis import lockwatch, registry
from repro.analysis.lockwatch import LockOrderError


@pytest.fixture(autouse=True)
def _disarmed_before_and_after():
    lockwatch.disarm()
    yield
    lockwatch.disarm()


def _locked_pair(prefix):
    a = registry.register_lock(f"{prefix}.a")
    b = registry.register_lock(f"{prefix}.b")
    return a, b


def test_disarmed_registration_returns_plain_lock():
    lock = registry.register_lock("test.lockwatch.plain")
    assert type(lock) is type(threading.Lock())


def test_armed_registration_returns_watched_proxy():
    with lockwatch.watching():
        lock = registry.register_lock("test.lockwatch.proxy")
        assert type(lock) is not type(threading.Lock())
        with lock:
            assert lock.locked()


def test_inversion_raises_naming_both_sites():
    """A -> B established, then B -> A attempted: LockOrderError, not deadlock."""
    with lockwatch.watching():
        a, b = _locked_pair("test.lockwatch.inv")
        with a:
            with b:
                pass
        with pytest.raises(LockOrderError) as exc_info:
            with b:
                with a:
                    pass
        message = str(exc_info.value)
        assert "test.lockwatch.inv.a" in message
        assert "test.lockwatch.inv.b" in message
        # Both acquisition sites are named (this file, with line numbers).
        assert message.count("test_lockwatch.py:") >= 2


def test_inversion_across_threads():
    """The order graph is process-global: thread 1 establishes A->B,
    thread 2's B->A attempt raises in thread 2."""
    with lockwatch.watching():
        a, b = _locked_pair("test.lockwatch.xthread")

        def establish():
            with a:
                with b:
                    pass

        t = threading.Thread(target=establish)
        t.start()
        t.join()

        errors = []

        def invert():
            try:
                with b:
                    with a:
                        pass
            except LockOrderError as exc:
                errors.append(exc)

        t2 = threading.Thread(target=invert)
        t2.start()
        t2.join()
        assert len(errors) == 1


def test_transitive_cycle_detected():
    """A->B, B->C, then C->A closes a 3-cycle through the graph."""
    with lockwatch.watching():
        a = registry.register_lock("test.lockwatch.tri.a")
        b = registry.register_lock("test.lockwatch.tri.b")
        c = registry.register_lock("test.lockwatch.tri.c")
        with a, b:
            pass
        with b, c:
            pass
        with pytest.raises(LockOrderError):
            with c, a:
                pass


def test_self_deadlock_on_plain_lock():
    with lockwatch.watching():
        a = registry.register_lock("test.lockwatch.self")
        with a:
            with pytest.raises(LockOrderError, match="self-deadlock"):
                a.acquire()


def test_rlock_reentry_allowed():
    with lockwatch.watching():
        r = registry.register_lock(
            "test.lockwatch.rlock", factory=threading.RLock
        )
        with r:
            with r:
                pass
        # Still released cleanly: a fresh acquire from scratch works.
        with r:
            pass


def test_consistent_order_never_raises():
    with lockwatch.watching():
        a, b = _locked_pair("test.lockwatch.ok")
        for _ in range(3):
            with a:
                with b:
                    pass


def test_arm_swaps_registered_module_locks_and_disarm_restores():
    import repro.distributed.messages as messages

    plain_type = type(threading.Lock())
    assert type(messages._SEQUENCE_LOCK) is plain_type
    lockwatch.arm()
    try:
        assert type(messages._SEQUENCE_LOCK) is not plain_type
        assert messages._SEQUENCE_LOCK.name == "messages.sequence"
        # The watched engine lock still works.
        assert messages._next_sequence() < messages._next_sequence()
    finally:
        lockwatch.disarm()
    assert type(messages._SEQUENCE_LOCK) is plain_type


def test_engine_lock_inversion_is_caught():
    """Seeded inversion over two real registered engine locks."""
    import repro.core.similarity as similarity
    import repro.distributed.messages as messages

    with lockwatch.watching():
        with messages._SEQUENCE_LOCK:
            with similarity._PROJECTION_CACHE_LOCK:
                pass
        with pytest.raises(LockOrderError) as exc_info:
            with similarity._PROJECTION_CACHE_LOCK:
                with messages._SEQUENCE_LOCK:
                    pass
        message = str(exc_info.value)
        assert "messages.sequence" in message
        assert "similarity.projection-cache" in message


def test_disarm_clears_the_order_graph():
    with lockwatch.watching():
        a, b = _locked_pair("test.lockwatch.clear")
        with a, b:
            pass
    # New session: the old A->B edge must not leak in.
    with lockwatch.watching():
        with b, a:
            pass


def test_reset_after_fork_disarms():
    lockwatch.arm()
    lockwatch.reset_after_fork()
    assert not lockwatch.armed()
    lock = registry.register_lock("test.lockwatch.postfork")
    assert type(lock) is type(threading.Lock())


def test_armed_parallel_engine_smoke():
    """A real threaded engine workload runs clean under the watcher.

    ``sliced_wasserstein`` hits the projection cache (and its registered
    lock) from every thread; message construction hits the sequence
    lock.  A clean pass here is what the armed tier-1 modules assert at
    scale.
    """
    import numpy as np

    from repro.core.similarity import clear_projection_cache, sliced_wasserstein
    from repro.distributed.messages import Message, MessageKind

    with lockwatch.watching():
        clear_projection_cache()
        rng = np.random.default_rng(7)
        clouds = rng.normal(size=(8, 32, 16))
        results = []

        def work(i):
            d = sliced_wasserstein(clouds[i], clouds[(i + 1) % 8], num_projections=8)
            Message(sender=f"t{i}", receiver="edge", kind=MessageKind.ACK)
            results.append(d)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
