"""Fused differentiable operations built on :mod:`repro.nn.tensor`.

These cover the numerically-sensitive compound ops (softmax, losses,
layer normalization) with hand-derived backward passes where fusing is
materially faster or more stable than composing primitives.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor, get_default_dtype


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        # d softmax = s * (grad - sum(grad * s))
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp

    def backward(grad: np.ndarray) -> None:
        soft = np.exp(out_data)
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Cross-entropy between ``logits`` ``(N, C)`` and integer ``targets`` ``(N,)``.

    Parameters
    ----------
    logits:
        Unnormalized class scores.
    targets:
        Integer class indices (plain numpy array, no gradient).
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected 2-D logits, got shape {logits.shape}")
    n = logits.shape[0]
    if targets.shape != (n,):
        raise ValueError(f"targets shape {targets.shape} incompatible with logits {logits.shape}")

    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - logsumexp
    losses = -log_probs[np.arange(n), targets]

    if reduction == "mean":
        out_data = np.asarray(losses.mean())
        scale = 1.0 / n
    elif reduction == "sum":
        out_data = np.asarray(losses.sum())
        scale = 1.0
    elif reduction == "none":
        out_data = losses
        scale = None
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(grad: np.ndarray) -> None:
        g = np.exp(log_probs)
        g[np.arange(n), targets] -= 1.0
        if scale is None:
            g = g * np.asarray(grad).reshape(n, 1)
        else:
            g = g * (np.asarray(grad) * scale)
        logits._accumulate(g)

    return Tensor._make(out_data, (logits,), backward)


def fleet_cross_entropy(logits: Tensor, targets: np.ndarray, segments):
    """Summed per-segment mean cross-entropy over one stacked tensor.

    The fleet trainer (:mod:`repro.train.fleet`) stacks many devices'
    batches row-wise into one ``(N, C)`` logits tensor; ``segments`` is
    the list of ``(lo, hi)`` row ranges (one per device) partitioning
    its rows.  Returns ``(total, losses)``: ``total`` is the *sum* of
    the per-segment mean losses as a single tensor, ``losses`` each
    segment's mean as a plain float (for per-member epoch records).
    The log-softmax runs **once** over the stacked rows
    (row-independent, so each row's value is bit-identical to computing
    its segment alone).

    Gradient contract — the per-device *block-diagonal row mask*:
    backpropagating ``total`` writes the whole gradient in one
    ``(N, C)`` pass, each segment's rows scaled by its own ``1/n_seg``
    and untouched by every other segment's loss.  Per row it is
    bit-for-bit the gradient
    ``cross_entropy(logits[lo:hi], targets[lo:hi])`` would produce with
    upstream gradient 1 — the serial per-member training step, which is
    the invariant that makes fleet training reproduce the serial
    per-device path exactly.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected 2-D logits, got shape {logits.shape}")
    n = logits.shape[0]
    if targets.shape != (n,):
        raise ValueError(f"targets shape {targets.shape} incompatible with logits {logits.shape}")

    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - logsumexp
    row_losses = -log_probs[np.arange(n), targets]

    segments = [(int(lo), int(hi)) for lo, hi in segments]
    expected = 0
    losses: list = []
    for lo, hi in segments:
        if lo != expected or not lo < hi <= n:
            raise ValueError(
                f"segments must partition [0, {n}) contiguously; got ({lo}, {hi})"
            )
        expected = hi
        losses.append(float(row_losses[lo:hi].mean()))
    if expected != n:
        raise ValueError(f"segments cover [0, {expected}) but logits have {n} rows")
    # Summed exactly like chaining ``loss_0 + loss_1 + ...`` would.
    acc = losses[0]
    for value in losses[1:]:
        acc = acc + value
    total_value = np.asarray(acc)

    def backward(grad: np.ndarray) -> None:
        g = np.exp(log_probs)
        g[np.arange(n), targets] -= 1.0
        upstream = np.asarray(grad)
        for lo, hi in segments:
            # Same scalar product as cross_entropy's ``g * (grad * scale)``.
            g[lo:hi] *= upstream * (1.0 / (hi - lo))
        logits._accumulate(g)

    return Tensor._make(total_value, (logits,), backward), losses


def mse_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error; ``target`` may be a tensor or plain array."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    sq = diff * diff
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    if reduction == "none":
        return sq
    raise ValueError(f"unknown reduction {reduction!r}")


def layer_norm(
    x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5
) -> Tensor:
    """Layer normalization over the last axis with affine parameters."""
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mu) * inv_std
    out_data = x_hat * gamma.data + beta.data
    d = x.data.shape[-1]

    def backward(grad: np.ndarray) -> None:
        if gamma.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            gamma._accumulate((grad * x_hat).sum(axis=axes))
        if beta.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            beta._accumulate(grad.sum(axis=axes))
        if x.requires_grad:
            g = grad * gamma.data
            gx = (
                g - g.mean(axis=-1, keepdims=True)
                - x_hat * (g * x_hat).mean(axis=-1, keepdims=True)
            ) * inv_std
            x._accumulate(gx)

    return Tensor._make(out_data, (x, gamma, beta), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: at train time scale survivors by ``1/(1-p)``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    return x.gelu()


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def identity(x: Tensor) -> Tensor:
    return x


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Fraction of rows whose argmax matches ``targets`` (no gradient)."""
    predictions = logits.data.argmax(axis=-1)
    return float((predictions == np.asarray(targets)).mean())


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Plain numpy one-hot encoding helper for controller inputs."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=get_default_dtype())
    np.put_along_axis(
        out.reshape(-1, num_classes),
        indices.reshape(-1, 1),
        1.0,
        axis=1,
    )
    return out
