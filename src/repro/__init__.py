"""ACME: Adaptive Customization of Large Models via Distributed Systems.

A full reproduction of the ICDCS 2025 paper. The package is organized as:

* :mod:`repro.nn` — a from-scratch reverse-mode autograd engine and neural
  network layers (Linear, LayerNorm, multi-head self-attention, Conv2d, LSTM).
* :mod:`repro.data` — synthetic dataset substrate (CIFAR-100-like and
  Stanford-Cars-like generators) with non-IID partitioners.
* :mod:`repro.models` — the width/depth-scalable Vision Transformer, fixed
  header designs, the NAS block vocabulary and DAG headers, and lightweight
  ViT baselines.
* :mod:`repro.hw` — device hardware profiles and the paper's parametric
  energy model (Eqs. 1-2).
* :mod:`repro.core` — the ACME algorithms: Taylor importance (Eqs. 6-8),
  backbone segmentation and distillation (Eq. 9), Pareto Front Grid
  customization (Eqs. 10-13, Alg. 1), the ENAS-style header search
  (Eqs. 14-15), device-side importance sets (Eqs. 16-18) and
  Wasserstein-weighted personalized aggregation (Eqs. 19-21, Alg. 2).
* :mod:`repro.distributed` — the bidirectional single-loop three-tier system
  (cloud / edge / device) with byte-accounted message passing.
* :mod:`repro.train` — training and evaluation loops.
"""

from repro._version import __version__

__all__ = ["__version__"]
