"""Fig. 7(b) — NAS-generated headers vs fixed header designs.

Backbone width is fixed to 1 (as in the paper); depth varies to produce
backbones of different sizes.  For each backbone, the four fixed header
designs are trained and compared against the ACME NAS header.  Shape
target: the NAS header wins everywhere, with the largest margins on small
backbones (paper: +9.02% small, ≈+3% large).
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import emit, emit_json, table
from repro.core.nas import HeaderSearch, NASConfig
from repro.core.segmentation import clone_model
from repro.models import build_fixed_header
from repro.train import TrainConfig, evaluate_header, train_header

FIXED_KINDS = ("linear", "mlp", "pool", "cnn")
DEPTHS = (2, 4, 6)


def evaluate_fixed(backbone, kind, train_data, test_data, seed=0):
    cfg = backbone.config
    header = build_fixed_header(
        kind, cfg.embed_dim, cfg.num_patches, cfg.num_classes,
        rng=np.random.default_rng(seed),
    )
    train_header(backbone, header, train_data, TrainConfig(epochs=3, seed=seed))
    return evaluate_header(backbone, header, test_data)["accuracy"]


def evaluate_nas(backbone, train_data, test_data, seed=0):
    search = HeaderSearch(
        backbone,
        train_data.num_classes,
        NASConfig(
            num_blocks=2,
            search_epochs=2,
            children_per_epoch=3,
            shared_steps_per_child=3,
            controller_updates_per_epoch=3,
            derive_samples=4,
            train_backbone=False,
            seed=seed,
        ),
    )
    result = search.search(train_data)
    header = search.materialize_header(result.spec, seed=seed)
    train_header(backbone, header, train_data, TrainConfig(epochs=3, seed=seed))
    return evaluate_header(backbone, header, test_data)["accuracy"]


def run_fig7b(backbone_result, train_data, test_data):
    rows = []
    for depth in DEPTHS:
        backbone = clone_model(backbone_result.backbone)
        backbone.scale(1.0, depth)
        row = {"depth": depth}
        for kind in FIXED_KINDS:
            row[kind] = evaluate_fixed(backbone, kind, train_data, test_data)
        row["nas"] = evaluate_nas(backbone, train_data, test_data)
        rows.append(row)
    return rows


def test_fig7b_headers(benchmark, dynamic_backbone, train_data, test_data):
    rows = benchmark.pedantic(
        run_fig7b, args=(dynamic_backbone, train_data, test_data), rounds=1, iterations=1
    )
    lines = table(
        ["backbone depth", *FIXED_KINDS, "NAS (ours)"],
        [[r["depth"], *[r[k] for k in FIXED_KINDS], r["nas"]] for r in rows],
    )
    margins = [r["nas"] - max(r[k] for k in FIXED_KINDS) for r in rows]
    lines.append(
        "NAS margin over best fixed header per depth: "
        + ", ".join(f"d={r['depth']}: {m * 100:+.2f}%" for r, m in zip(rows, margins))
    )
    lines.append("paper: +9.02% avg on small backbones, ≈+3% on large")
    emit("fig7b_headers", lines)
    emit_json("fig7b_headers", rows)

    # Shape: NAS header is at least as good as the best fixed design on
    # every backbone (small tolerance for the scaled-down setting).
    for r in rows:
        assert r["nas"] >= max(r[k] for k in FIXED_KINDS) - 0.04
