"""The bidirectional single-loop distributed system (cloud/edge/device)."""

from repro.distributed.cloud import CloudConfig, CloudServer
from repro.distributed.device import DeviceNode
from repro.distributed.edge import EdgeConfig, EdgeServer
from repro.distributed.executor import (
    WorkerSpec,
    parallel_map,
    parallel_starmap,
    resolve_workers,
    split_worker_budget,
)
from repro.distributed.faults import (
    DeliveryError,
    FaultConfig,
    FaultDecision,
    FaultPolicy,
    FaultRecord,
    ProtocolError,
    TransportFailure,
)
from repro.distributed.messages import Message, MessageKind, payload_nbytes
from repro.distributed.metrics import (
    NormalizedTradeoff,
    centralized_upload_bytes,
    energy_efficiency_ratio,
    relative_upload,
    schedule_length,
    size_efficiency_ratio,
)
from repro.distributed.network import Network, NetworkShard, TrafficStats
from repro.distributed.system import (
    ACMEConfig,
    ACMERunResult,
    ACMESystem,
    ClusterResult,
    run_multiprocess,
)
from repro.distributed.transport import (
    LoopbackTransport,
    TcpTransport,
    Transport,
    TransportConfig,
)
from repro.distributed.wire import WireError

__all__ = [
    "ACMEConfig",
    "ACMERunResult",
    "ACMESystem",
    "CloudConfig",
    "CloudServer",
    "ClusterResult",
    "DeliveryError",
    "DeviceNode",
    "EdgeConfig",
    "EdgeServer",
    "FaultConfig",
    "FaultDecision",
    "FaultPolicy",
    "FaultRecord",
    "LoopbackTransport",
    "Message",
    "MessageKind",
    "Network",
    "NetworkShard",
    "NormalizedTradeoff",
    "ProtocolError",
    "TcpTransport",
    "TrafficStats",
    "Transport",
    "TransportConfig",
    "TransportFailure",
    "WireError",
    "WorkerSpec",
    "centralized_upload_bytes",
    "energy_efficiency_ratio",
    "parallel_map",
    "parallel_starmap",
    "payload_nbytes",
    "relative_upload",
    "resolve_workers",
    "run_multiprocess",
    "schedule_length",
    "size_efficiency_ratio",
    "split_worker_budget",
]
