"""Simulated network with full traffic accounting — sharded for parallelism.

The :class:`Network` delivers messages between named nodes instantly (this
is a protocol/cost simulation, not a latency simulation) and records every
transfer: per message kind, per direction, and per (sender, receiver) pair.
Table I's "Upload Data" column is read directly from these counters.

Concurrency model.  The fabric is a two-level ledger:

* the root :class:`Network` owns the handler table and the *global*
  ledger (``stats`` + ``log``);
* a :class:`NetworkShard` (one per edge cluster, created with
  :meth:`Network.shard`) records traffic into its own *local* ledger
  while delivering through the root's handler table.  Shards touch no
  root ledger state, so any number of edges can send concurrently;
  :meth:`Network.merge_shards` then folds the local ledgers into the
  global one **in the deterministic order the caller passes** (edge
  index order in :class:`~repro.distributed.system.ACMESystem`), which
  makes the merged log — and therefore ``kind_sequence()`` and the
  Table-I byte counters — bit-identical to a serial edge-by-edge run.

While a shard is delivering (or inside :meth:`NetworkShard.activate`),
it is installed as the *ambient route* in a :mod:`contextvars` variable:
nested sends issued through the root ``Network`` — e.g. the cloud
handler's ``BACKBONE_ASSIGNMENT`` reply, written against the root it was
constructed with — are transparently recorded on the shard that carried
the request, keeping each edge's conversation on that edge's ledger.
``contextvars`` (not a plain thread-local) so
:func:`repro.distributed.executor.parallel_map`, which runs tasks in a
copy of the caller's context, propagates an edge's active shard into
any nested per-device fan-out.

Fault injection.  :meth:`Network.install_fault_policy` arms a seeded
:class:`~repro.distributed.faults.FaultPolicy` that every delivery
attempt consults: the fabric then drops, corrupts, duplicates or delays
messages and records each injected fault in a ``fault_log`` ledger
parallel to the traffic log (sharded and merged the same way).  A
dropped or corrupted attempt still *records its bytes* — the transfer
left the sender; the wire ate it — but the handler never runs.
:meth:`send` stays datagram-like (a lost message returns ``None``);
:meth:`send_reliable` adds timeout-style retries with linear backoff and
raises :class:`~repro.distributed.faults.DeliveryError` when exhausted.
With no policy installed none of these paths is taken and the fabric is
bit-for-bit the pre-fault fabric.  See ROBUSTNESS.md.

``Message.sequence`` numbers are stamped from a **per-network** counter
on first dispatch, so two identical runs construct identical sequences
in one process — still a debugging aid; ledger order is defined by the
(merged) ``log``.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import re
import time
from collections import Counter, defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.registry import register_lock
from repro.distributed.faults import (
    DeliveryError,
    FaultPolicy,
    FaultRecord,
    TransportFailure,
)
from repro.distributed.messages import Message

#: The shard currently carrying a delivery (None = record on the root).
_ACTIVE_SHARD: contextvars.ContextVar[Optional["NetworkShard"]] = contextvars.ContextVar(
    "repro_active_network_shard", default=None
)

#: XOR mask applied to a corrupted message's wire checksum, so the
#: receiver's verification genuinely fails rather than being faked.
_CORRUPT_MASK = 0x5EED

#: Messages kept (most recent first to fall out) by a summary-mode
#: ledger's bounded log — enough tail for debugging a scale run without
#: the O(messages) growth of the full ledger.
_SUMMARY_TAIL = 256

_TRAILING_DIGITS = re.compile(r"\d+$")


def _role(name: str) -> str:
    """Collapse a node name to its role: ``device123`` → ``device*``.

    Summary-mode per-pair byte counters key on roles instead of
    individual nodes; a million-device run then keeps a handful of
    (role, role) rows instead of one per device.
    """
    collapsed = _TRAILING_DIGITS.sub("*", name)
    return collapsed


@dataclass
class TrafficStats:
    """Aggregated transfer counters."""

    total_bytes: int = 0
    upload_bytes: int = 0
    download_bytes: int = 0
    message_count: int = 0
    by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    by_pair: Dict[Tuple[str, str], int] = field(default_factory=lambda: defaultdict(int))
    #: Summary-ledger mode: key ``by_pair`` on collapsed roles
    #: (``device*``/``edge*``) instead of individual node names, keeping
    #: the table O(roles²) regardless of fleet size.  All scalar and
    #: per-kind counters stay exact.
    collapse_pairs: bool = False

    def record(self, message: Message) -> None:
        self.total_bytes += message.nbytes
        self.message_count += 1
        if message.kind.is_upload:
            self.upload_bytes += message.nbytes
        else:
            self.download_bytes += message.nbytes
        self.by_kind[message.kind.value] += message.nbytes
        pair = (message.sender, message.receiver)
        if self.collapse_pairs:
            pair = (_role(pair[0]), _role(pair[1]))
        self.by_pair[pair] += message.nbytes

    def merge_from(self, other: "TrafficStats") -> None:
        """Fold another ledger's counters into this one (shard merge)."""
        self.total_bytes += other.total_bytes
        self.upload_bytes += other.upload_bytes
        self.download_bytes += other.download_bytes
        self.message_count += other.message_count
        for kind, nbytes in other.by_kind.items():
            self.by_kind[kind] += nbytes
        for pair, nbytes in other.by_pair.items():
            if self.collapse_pairs:
                pair = (_role(pair[0]), _role(pair[1]))
            self.by_pair[pair] += nbytes

    def upload_megabytes(self) -> float:
        return self.upload_bytes / 1e6

    def total_megabytes(self) -> float:
        return self.total_bytes / 1e6


def _attempt(route: "_Route", message: Message) -> Tuple[Optional[Message], Optional[str]]:
    """One delivery attempt on a route (root network or shard).

    Returns ``(reply, failure)``.  ``failure`` is ``None`` when the
    handler ran, else the injected fault that stopped it: ``"drop"``,
    ``"corrupt"`` (checksum verification failed at the receiver) or
    ``"delay"`` (the message is queued and will be handled after further
    ledger activity — in flight, not lost, but the sender sees no reply,
    which ``send_reliable`` treats as a timeout).

    The attempt's bytes are recorded on the route's traffic ledger in
    every case except an unknown receiver: faults happen on the wire,
    after the sender has paid for the transfer.
    """
    root = route.root
    shard = route if isinstance(route, NetworkShard) else None
    handler = root._resolve(message.receiver, shard=shard)
    if message.attempts == 0:
        message.sequence = root._next_sequence()
    message.attempts += 1
    route._count_attempt()
    route._record(message)
    policy = root.fault_policy
    decision = (
        policy.decide(message.kind.value, message.sender, message.receiver)
        if policy is not None
        else None
    )
    if decision is not None and decision.drop:
        route._record_fault(_fault(message, "drop"))
        route._drain_delayed()
        return None, "drop"
    wire_checksum = message.checksum
    if decision is not None and decision.corrupt:
        wire_checksum ^= _CORRUPT_MASK
    if policy is not None and wire_checksum != message.compute_checksum():
        route._record_fault(_fault(message, "corrupt"))
        route._drain_delayed()
        return None, "corrupt"
    if decision is not None and decision.delay_deliveries > 0:
        route._record_fault(
            _fault(message, "delay", detail=decision.delay_deliveries)
        )
        route._delayed.append([message, decision.delay_deliveries])
        return None, "delay"
    try:
        reply = route._invoke(handler, message)
    except TransportFailure as exc:
        # A real wire failure (timeout, dropped connection, dead peer)
        # behaves exactly like an injected drop: the bytes left the
        # sender and were recorded above, the fault lands on the ledger,
        # and the caller sees a retryable loss.  Loopback handlers never
        # raise this.
        route._record_fault(_fault(message, exc.fault))
        route._drain_delayed()
        return None, exc.fault
    if decision is not None and decision.duplicate:
        route._record_fault(_fault(message, "duplicate"))
        route._record(message)  # the duplicate transfer costs bytes too
        try:
            route._invoke(handler, message)
        except TransportFailure as exc:
            route._record_fault(_fault(message, exc.fault))
    route._drain_delayed()
    return reply, None


def _fault(message: Message, name: str, detail: int = 0) -> FaultRecord:
    return FaultRecord(
        fault=name,
        kind=message.kind.value,
        sender=message.sender,
        receiver=message.receiver,
        attempt=message.attempts,
        detail=detail,
    )


def _drain_delayed(route: "_Route") -> None:
    """Advance straggler countdowns after a fresh dispatch; deliver ripe ones.

    Each queued message's countdown drops by one per fresh dispatch on
    this ledger; at zero its handler finally runs (no further fault
    draws — the message already passed its attempt's draw).  A receiver
    that churned off the fabric in the meantime turns the delivery into
    a ``"lost"`` fault record instead of an exception.  Nested sends
    issued *during* a drain do not re-enter it (``_draining`` guard), so
    the countdown bookkeeping stays deterministic.
    """
    if not route._delayed or route._draining:
        return
    route._draining = True
    try:
        ripe: List[List] = []
        for entry in route._delayed:
            entry[1] -= 1
            if entry[1] <= 0:
                ripe.append(entry)
        for entry in ripe:
            route._delayed.remove(entry)
        for message, _ in ripe:
            try:
                handler = route.root._resolve(message.receiver)
            except KeyError:
                route._record_fault(_fault(message, "lost"))
                continue
            try:
                route._invoke(handler, message)
            except TransportFailure as exc:
                route._record_fault(_fault(message, exc.fault))
    finally:
        route._draining = False


def _send_reliable(
    route: "_Route",
    message: Message,
    retries: Optional[int],
    backoff: Optional[float],
) -> Optional[Message]:
    """Retry loop shared by ``Network.send_reliable`` and the shard's.

    A lost attempt (drop / corrupt) and a delayed one (no reply = the
    sender's timeout fired) are retried up to ``retries`` extra times
    with ``backoff * attempt`` seconds between attempts, re-sending the
    *same* message object — receivers' handlers are idempotent, so a
    retry racing a delayed original is safe.  Exhaustion raises
    :class:`DeliveryError` naming the message and its last failure.
    """
    policy = route.root.fault_policy
    if retries is None:
        retries = policy.config.retries if policy is not None else 0
    if backoff is None:
        backoff = policy.config.backoff if policy is not None else 0.0
    failure: Optional[str] = None
    for attempt in range(retries + 1):
        if attempt:
            route._count_retry()
            if backoff > 0.0:
                time.sleep(backoff * attempt)
        reply, failure = _attempt(route, message)
        if failure is None:
            return reply
    route._count_failure()
    raise DeliveryError(
        f"{message.kind.value} {message.sender}->{message.receiver} "
        f"not delivered after {retries + 1} attempt(s); last failure: {failure}"
    )


class Network:
    """In-process message fabric connecting cloud, edges and devices.

    The root fabric: owns the (lock-protected) handler table, the global
    ledger, the optional fault policy and the per-network sequence
    counter.  Direct :meth:`send` calls record globally unless an
    ambient :class:`NetworkShard` is active — see the module docstring.
    """

    def __init__(self, ledger: str = "full") -> None:
        if ledger not in ("full", "summary"):
            raise ValueError(
                f"ledger must be 'full' or 'summary', got {ledger!r}"
            )
        #: ``"full"`` (default): every delivered message object is kept
        #: on :attr:`log` — O(messages) memory, the mode Table-I counters
        #: and the conformance/parity tests rely on.  ``"summary"``:
        #: :attr:`log`/:attr:`fault_log` keep only a bounded tail
        #: (:data:`_SUMMARY_TAIL`) and per-pair byte counters collapse to
        #: roles, bounding ledger memory for fleet-scale runs; exact
        #: per-kind message counts stay available as :attr:`kind_counts`.
        self.ledger = ledger
        self._handlers: Dict[str, Callable[[Message], Optional[Message]]] = {}
        self._registry_lock = register_lock("network.handler-registry")
        self._ledger_lock = register_lock("network.ledger")
        self.stats = TrafficStats(collapse_pairs=ledger == "summary")
        self.log = self._new_log()
        #: Exact count of delivered (recorded) messages per kind, in both
        #: ledger modes — the summary-mode replacement for deriving
        #: counts from the full log.
        self.kind_counts: Counter = Counter()
        self.fault_policy: Optional[FaultPolicy] = None
        self.fault_log = self._new_log()
        self._fault_counter: Counter = Counter()
        self.delivery_attempts = 0
        self.retry_count = 0
        self.failed_deliveries = 0
        self._delayed: List[List] = []
        self._draining = False
        self._sequence = itertools.count()
        self._sequence_lock = register_lock("network.sequence")

    def _new_log(self):
        """A mode-appropriate log container (list or bounded deque)."""
        if self.ledger == "summary":
            return deque(maxlen=_SUMMARY_TAIL)
        return []

    @property
    def root(self) -> "Network":
        """Uniform route interface: a network is its own root."""
        return self

    def _next_sequence(self) -> int:
        with self._sequence_lock:
            return next(self._sequence)

    # -- fault policy ---------------------------------------------------
    def install_fault_policy(self, policy: Optional[FaultPolicy]) -> None:
        """Arm (or with ``None`` disarm) fault injection on this fabric.

        Install before any traffic flows: the policy's per-link attempt
        counters start at zero, so a mid-run install would shift every
        subsequent draw and break seed replayability.
        """
        self.fault_policy = policy

    def fault_counts(self) -> Dict[str, int]:
        """Injected faults by class (``drop``/``corrupt``/... → count).

        Maintained as a running counter, so it is exact in both ledger
        modes — including summary mode, whose ``fault_log`` keeps only a
        bounded tail.
        """
        with self._ledger_lock:
            return dict(self._fault_counter)

    # -- registry -------------------------------------------------------
    def register(
        self,
        name: str,
        handler: Callable[[Message], Optional[Message]],
        shard: Optional["NetworkShard"] = None,
    ) -> None:
        """Register a node's message handler under its unique name.

        Names are fabric-global: registering through a shard and through
        the root address the same table, and a collision raises
        immediately instead of silently overwriting the existing node's
        handler — stale registrations from a torn-down system must be
        removed with :meth:`unregister` first.

        Re-registering the *same* handler under its existing name is an
        idempotent no-op (``==`` so a re-taken bound method of the same
        object counts as the same handler).  A reconnecting transport
        replays its registrations without knowing whether the previous
        ones survived; only a genuinely different owner collides.
        """
        with self._registry_lock:
            if name in self._handlers:
                if self._handlers[name] == handler:
                    return
                via = f" (via shard {shard.owner!r})" if shard is not None else ""
                raise ValueError(
                    f"node name {name!r} is already registered on this fabric"
                    f"{via}; names are global across shards — unregister() the "
                    f"existing node (tearing down a previous system?) or pick "
                    f"a unique name"
                )
            self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        """Remove a node, freeing its name for a rebuilt system.

        Raises :class:`KeyError` for unknown names so a teardown that
        drifted out of sync with the registry fails loudly.
        """
        with self._registry_lock:
            if name not in self._handlers:
                raise KeyError(
                    f"cannot unregister unknown node {name!r}; "
                    f"registered nodes: {sorted(self._handlers)}"
                )
            del self._handlers[name]

    def is_registered(self, name: str) -> bool:
        """True if a node currently owns this name (churn-aware checks)."""
        with self._registry_lock:
            return name in self._handlers

    def nodes(self) -> List[str]:
        with self._registry_lock:
            return sorted(self._handlers)

    def _resolve(self, receiver: str, shard: Optional["NetworkShard"] = None):
        with self._registry_lock:
            handler = self._handlers.get(receiver)
        if handler is None:
            via = f" (via shard {shard.owner!r})" if shard is not None else ""
            raise KeyError(
                f"unknown receiver {receiver!r}{via}; "
                f"registered nodes: {self.nodes()}"
            )
        return handler

    # -- route interface (ledger side of a delivery attempt) ------------
    def _record(self, message: Message) -> None:
        with self._ledger_lock:
            self.stats.record(message)
            self.log.append(message)
            self.kind_counts[message.kind.value] += 1

    def _record_fault(self, record: FaultRecord) -> None:
        with self._ledger_lock:
            self.fault_log.append(record)
            self._fault_counter[record.fault] += 1

    def _count_attempt(self) -> None:
        with self._ledger_lock:
            self.delivery_attempts += 1

    def _count_retry(self) -> None:
        with self._ledger_lock:
            self.retry_count += 1

    def _count_failure(self) -> None:
        with self._ledger_lock:
            self.failed_deliveries += 1

    def _invoke(self, handler, message: Message) -> Optional[Message]:
        return handler(message)

    def _drain_delayed(self) -> None:
        _drain_delayed(self)

    # -- delivery -------------------------------------------------------
    def send(self, message: Message) -> Optional[Message]:
        """Deliver a message; returns the receiver's (unrecorded) reply.

        Replies returned by handlers are control-flow conveniences for the
        simulation; protocols that need the reply *transmitted* must send it
        as an explicit message so its bytes are accounted.

        When an ambient shard of this fabric is active (the send happens
        inside a delivery or an :meth:`NetworkShard.activate` scope), the
        transfer is recorded on that shard's local ledger instead of the
        global one.

        Datagram semantics under faults: a dropped, corrupted or delayed
        message returns ``None`` — the bytes are recorded, the fault is
        logged, nothing raises.  Use :meth:`send_reliable` when the
        caller needs delivery confirmation.
        """
        shard = _ACTIVE_SHARD.get()
        if shard is not None and shard.root is self:
            return shard.send(message)
        reply, _ = _attempt(self, message)
        return reply

    def send_reliable(
        self,
        message: Message,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
    ) -> Optional[Message]:
        """Deliver with retries/backoff; :class:`DeliveryError` when exhausted.

        ``retries``/``backoff`` default to the installed policy's config
        (0 extra attempts on a fault-free fabric, where this is exactly
        :meth:`send` plus attempt accounting).  Routes through the
        ambient shard like :meth:`send`.
        """
        shard = _ACTIVE_SHARD.get()
        if shard is not None and shard.root is self:
            return shard.send_reliable(message, retries=retries, backoff=backoff)
        return _send_reliable(self, message, retries, backoff)

    # -- sharding -------------------------------------------------------
    def shard(self, owner: str) -> "NetworkShard":
        """A local ledger view for one edge's conversation."""
        return NetworkShard(self, owner)

    def merge_shards(self, shards: Sequence["NetworkShard"]) -> None:
        """Fold shard ledgers into the global one, in the given order.

        The order is the determinism contract: merging in edge index
        order reproduces the serial edge-by-edge log exactly — for the
        traffic ledger *and* the fault log, which merges the same way.
        Each shard is drained (its local ledgers reset) so a shard can
        never be double-counted.  A shard's still-pending delayed
        messages will never be handled once their pipeline is over; they
        are recorded as ``"expired"`` faults rather than silently
        vanishing.
        """
        with self._ledger_lock:
            for shard in shards:
                if shard.root is not self:
                    raise ValueError(
                        f"shard {shard.owner!r} belongs to a different fabric"
                    )
                self.stats.merge_from(shard.stats)
                self.log.extend(shard.log)
                self.kind_counts.update(shard.kind_counts)
                self.fault_log.extend(shard.fault_log)
                self._fault_counter.update(shard._fault_counter)
                for message, _ in shard._delayed:
                    self.fault_log.append(_fault(message, "expired"))
                    self._fault_counter["expired"] += 1
                self.delivery_attempts += shard.delivery_attempts
                self.retry_count += shard.retry_count
                self.failed_deliveries += shard.failed_deliveries
                shard.stats = TrafficStats(collapse_pairs=self.stats.collapse_pairs)
                shard.log = self._new_log()
                shard.kind_counts = Counter()
                shard.fault_log = self._new_log()
                shard._fault_counter = Counter()
                shard._delayed = []
                shard.delivery_attempts = 0
                shard.retry_count = 0
                shard.failed_deliveries = 0

    # -- inspection -----------------------------------------------------
    def kind_sequence(self) -> List[str]:
        """The ordered kinds of all delivered messages (for conformance tests)."""
        if self.ledger == "summary":
            raise RuntimeError(
                f"kind_sequence() is unavailable on a summary-ledger fabric: "
                f"the bounded log keeps only the last {_SUMMARY_TAIL} "
                f"messages — use kind_counts for exact per-kind totals, or "
                f"build the Network with ledger='full'"
            )
        return [m.kind.value for m in self.log]

    def reset_stats(self) -> None:
        with self._ledger_lock:
            self.stats = TrafficStats(collapse_pairs=self.ledger == "summary")
            self.log = self._new_log()
            self.kind_counts = Counter()
            self.fault_log = self._new_log()
            self._fault_counter = Counter()
            self._delayed = []
            self.delivery_attempts = 0
            self.retry_count = 0
            self.failed_deliveries = 0


class NetworkShard:
    """One edge's ledger view of the fabric.

    Shares the root's handler table and fault policy (delivery semantics
    are identical) but records traffic, faults, stragglers and
    retry/attempt counters into local ledgers that only this shard's
    owner writes — the thread-safety unit of the fabric.  Fold into the
    global ledger with :meth:`Network.merge_shards`.
    """

    def __init__(self, root: Network, owner: str) -> None:
        self.root = root
        self.owner = owner
        # Shard ledgers inherit the root's mode, so a summary-mode
        # fabric stays bounded during the (pre-merge) edge pipelines too.
        self.stats = TrafficStats(collapse_pairs=root.stats.collapse_pairs)
        self.log = root._new_log()
        self.kind_counts: Counter = Counter()
        self.fault_log = root._new_log()
        self._fault_counter: Counter = Counter()
        self.delivery_attempts = 0
        self.retry_count = 0
        self.failed_deliveries = 0
        self._delayed: List[List] = []
        self._draining = False

    def register(self, name: str, handler: Callable[[Message], Optional[Message]]) -> None:
        """Register on the *root* registry (names are fabric-global)."""
        self.root.register(name, handler, shard=self)

    # -- route interface ------------------------------------------------
    def _record(self, message: Message) -> None:
        self.stats.record(message)
        self.log.append(message)
        self.kind_counts[message.kind.value] += 1

    def _record_fault(self, record: FaultRecord) -> None:
        self.fault_log.append(record)
        self._fault_counter[record.fault] += 1

    def _count_attempt(self) -> None:
        self.delivery_attempts += 1

    def _count_retry(self) -> None:
        self.retry_count += 1

    def _count_failure(self) -> None:
        self.failed_deliveries += 1

    def _invoke(self, handler, message: Message) -> Optional[Message]:
        token = _ACTIVE_SHARD.set(self)
        try:
            return handler(message)
        finally:
            _ACTIVE_SHARD.reset(token)

    def _drain_delayed(self) -> None:
        _drain_delayed(self)

    # -- delivery -------------------------------------------------------
    def send(self, message: Message) -> Optional[Message]:
        """Deliver through the root's handler table, record locally.

        The shard is installed as the ambient route for the duration of
        the delivery, so a handler's nested sends through the root land
        on this ledger too.  Datagram semantics under faults, exactly as
        :meth:`Network.send`.
        """
        reply, _ = _attempt(self, message)
        return reply

    def send_reliable(
        self,
        message: Message,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
    ) -> Optional[Message]:
        """Shard-recorded :meth:`Network.send_reliable`."""
        return _send_reliable(self, message, retries, backoff)

    @contextlib.contextmanager
    def activate(self):
        """Scope in which root sends are routed to this shard's ledger."""
        token = _ACTIVE_SHARD.set(self)
        try:
            yield self
        finally:
            _ACTIVE_SHARD.reset(token)

    def kind_sequence(self) -> List[str]:
        """Ordered kinds of this shard's (unmerged) local log."""
        if self.root.ledger == "summary":
            raise RuntimeError(
                "kind_sequence() is unavailable on a summary-ledger "
                "fabric's shard — use kind_counts"
            )
        return [m.kind.value for m in self.log]


#: A delivery route: the root network or one of its shards.
_Route = Union[Network, NetworkShard]
