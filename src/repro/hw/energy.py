"""The paper's parametric energy model (§II-B, Eqs. 1-2).

For device ``n`` running a backbone with width factor ``w`` and depth ``d``
for ``k`` epochs:

.. math::

    E_n = k \\cdot P_n(w, d) \\cdot T_n(w, d)

    P_n(w, d) = (G_n + \\Delta G_n \\cdot w d) + p_n G^{\\beta}_n

    T_n(w, d) = L_n + \\Delta L_n \\cdot w d

with :math:`\\Delta G_n, G^{\\beta}_n \\propto G_n` and
:math:`\\Delta L_n \\propto L_n` — both enforced when profiles are
synthesized (see :mod:`repro.hw.profiles`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.profiles import DeviceProfile

# G^β_n = _GPU_BATCH_COEFF · G_n · β, the per-patch GPU energy estimate for
# batch size β.  The coefficient folds the paper's unspecified constant.
_GPU_BATCH_COEFF = 0.002


@dataclass(frozen=True)
class EnergyReport:
    """Breakdown of one energy evaluation."""

    power_watts: float
    latency_seconds: float
    epochs: int

    @property
    def energy_joules(self) -> float:
        return self.power_watts * self.latency_seconds * self.epochs


def gpu_batch_energy(profile: DeviceProfile) -> float:
    """``G^β_n`` — per-batch GPU energy term, proportional to ``G_n``."""
    return _GPU_BATCH_COEFF * profile.gpu_capacity * profile.batch_size


def power(profile: DeviceProfile, width: float, depth: int) -> float:
    """``P_n(w, d)`` of Eq. (2), in watts."""
    _check(width, depth)
    effective_layers = width * depth
    return (
        profile.base_power
        + profile.power_per_layer * effective_layers
        + profile.num_patches * gpu_batch_energy(profile)
    )


def latency(profile: DeviceProfile, width: float, depth: int) -> float:
    """``T_n(w, d)`` of Eq. (2): average seconds per epoch."""
    _check(width, depth)
    return profile.base_latency + profile.latency_per_layer * (width * depth)


def energy(
    profile: DeviceProfile, width: float, depth: int, epochs: int = 1
) -> EnergyReport:
    """``E_n(θ_n)`` of Eq. (1) for ``epochs`` training epochs."""
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    return EnergyReport(
        power_watts=power(profile, width, depth),
        latency_seconds=latency(profile, width, depth),
        epochs=epochs,
    )


def cluster_energy(profiles, width: float, depth: int, epochs: int = 1) -> float:
    """``E_s = max_{n∈N_s} E_n`` — the cluster representative of Eq. (10)."""
    profiles = list(profiles)
    if not profiles:
        raise ValueError("cluster must contain at least one device")
    return max(energy(p, width, depth, epochs).energy_joules for p in profiles)


def _check(width: float, depth: int) -> None:
    if not 0.0 < width <= 1.0:
        raise ValueError(f"width factor must be in (0, 1], got {width}")
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
