"""Tests for device importance sets (Eqs. 16-18) and Algorithm 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    AGGREGATION_METHODS,
    aggregate_importance_sets,
    aggregation_weights,
    personalized_architecture_aggregation,
)
from repro.core.header_importance import (
    ImportanceConfig,
    compute_importance_set,
    prune_by_importance,
)
from repro.data import make_cifar100_like, partition_iid
from repro.models import DAGHeader, ViTConfig, VisionTransformer
from repro.models.blocks import BlockSpec, HeaderSpec
from repro.train import TrainConfig, train_model


@pytest.fixture(scope="module")
def setup():
    gen = make_cifar100_like(num_classes=5, image_size=8)
    data = gen.generate(samples_per_class=18, seed=1)
    cfg = ViTConfig(image_size=8, patch_size=4, embed_dim=16, depth=2,
                    num_heads=4, num_classes=5)
    model = VisionTransformer(cfg, seed=0)
    train_model(model, data, TrainConfig(epochs=2, seed=0))
    return model, data


def make_header(seed=0):
    spec = HeaderSpec(blocks=(BlockSpec(0, 1, 1, 3), BlockSpec(1, 2, 0, 3)))
    return DAGHeader(16, 4, 5, spec, rng=np.random.default_rng(seed))


class TestImportanceSet:
    def test_length_matches_parameters(self, setup):
        model, data = setup
        header = make_header()
        q = compute_importance_set(model, header, data,
                                   ImportanceConfig(max_batches_per_epoch=2))
        assert q.shape == (header.parameter_count(),)
        assert (q >= 0).all()

    def test_no_train_mode_leaves_weights(self, setup):
        model, data = setup
        header = make_header()
        before = header.parameter_vector()
        compute_importance_set(model, header, data,
                               ImportanceConfig(max_batches_per_epoch=2), train=False)
        np.testing.assert_allclose(header.parameter_vector(), before)

    def test_train_mode_updates_weights(self, setup):
        model, data = setup
        header = make_header()
        before = header.parameter_vector()
        compute_importance_set(model, header, data,
                               ImportanceConfig(max_batches_per_epoch=2))
        assert not np.allclose(header.parameter_vector(), before)


class TestPruning:
    def test_prunes_requested_fraction(self, setup):
        _model, _data = setup
        header = make_header()
        importance = np.random.default_rng(0).random(header.parameter_count())
        keep = prune_by_importance(header, importance, keep_fraction=0.5)
        protected = keep.sum() - int(round(0.5 * (~_classifier_mask(header)).sum()))
        assert header.active_parameter_count() == keep.sum()

    def test_classifier_protected(self, setup):
        header = make_header()
        importance = np.zeros(header.parameter_count())  # everything worthless
        prune_by_importance(header, importance, keep_fraction=0.01)
        # Classifier params survive.
        mask_flags = _classifier_mask(header)
        assert header.active_parameter_count() >= mask_flags.sum()

    def test_keeps_most_important(self, setup):
        header = make_header()
        count = header.parameter_count()
        importance = np.arange(count, dtype=float)  # later params more important
        keep = prune_by_importance(header, importance, 0.3, protect_classifier=False)
        kept_scores = importance[keep]
        dropped_scores = importance[~keep]
        assert kept_scores.min() > dropped_scores.max()

    def test_validation(self, setup):
        header = make_header()
        with pytest.raises(ValueError):
            prune_by_importance(header, np.zeros(3), 0.5)
        with pytest.raises(ValueError):
            prune_by_importance(header, np.zeros(header.parameter_count()), 0.0)

    def test_pruning_guided_beats_random(self, setup):
        """Pruning by real importance must hurt accuracy less than pruning
        randomly — the premise of the whole Phase 2-2."""
        from repro.models.headers import BackboneFeatures
        from repro.train import evaluate_header, train_header

        model, data = setup
        rng = np.random.default_rng(0)

        def accuracy_after(prune_with_importance: bool) -> float:
            header = make_header(seed=1)
            train_header(model, header, data, TrainConfig(epochs=2, seed=0))
            if prune_with_importance:
                q = compute_importance_set(
                    model, header, data,
                    ImportanceConfig(max_batches_per_epoch=4), train=False,
                )
            else:
                q = rng.random(header.parameter_count())
            prune_by_importance(header, q, keep_fraction=0.5)
            return evaluate_header(model, header, data)["accuracy"]

        assert accuracy_after(True) >= accuracy_after(False)


def _classifier_mask(header):
    flags = np.zeros(header.parameter_count(), dtype=bool)
    offset = 0
    for name, p in header._unique_named_parameters():
        if name.startswith("classifier"):
            flags[offset : offset + p.size] = True
        offset += p.size
    return flags


class TestAggregationWeights:
    def test_alone_is_identity(self):
        np.testing.assert_allclose(aggregation_weights("alone", 3), np.eye(3))

    def test_average_is_uniform(self):
        w = aggregation_weights("average", 4)
        np.testing.assert_allclose(w, 0.25)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            aggregation_weights("federated", 3)

    def test_similarity_methods_need_data(self):
        with pytest.raises(ValueError):
            aggregation_weights("ours", 3)

    @pytest.mark.parametrize("method", ["ours", "js"])
    def test_similarity_weights_row_stochastic(self, method, setup):
        model, data = setup
        parts = partition_iid(data, 3, np.random.default_rng(0))
        w = aggregation_weights(method, 3, model, parts)
        np.testing.assert_allclose(w.sum(axis=1), 1.0)


class TestAggregateImportanceSets:
    def test_eq21_convex_combination(self):
        sets = [np.array([1.0, 0.0]), np.array([0.0, 1.0])]
        weights = np.array([[0.75, 0.25], [0.5, 0.5]])
        out = aggregate_importance_sets(sets, weights)
        np.testing.assert_allclose(out[0], [0.75, 0.25])
        np.testing.assert_allclose(out[1], [0.5, 0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            aggregate_importance_sets([np.zeros(2)], np.ones((2, 2)))
        with pytest.raises(ValueError):
            aggregate_importance_sets(
                [np.zeros(2), np.zeros(3)], np.full((2, 2), 0.5)
            )
        with pytest.raises(ValueError):
            aggregate_importance_sets(
                [np.zeros(2), np.zeros(2)], np.ones((2, 2))  # rows sum to 2
            )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 4), st.integers(3, 10))
    def test_property_preserves_scale(self, n, r):
        """Convex combinations stay within the per-coordinate envelope."""
        rng = np.random.default_rng(n * 10 + r)
        sets = [rng.random(r) for _ in range(n)]
        raw = rng.random((n, n))
        weights = raw / raw.sum(axis=1, keepdims=True)
        out = aggregate_importance_sets(sets, weights)
        stacked = np.stack(sets)
        for q in out:
            assert (q <= stacked.max(axis=0) + 1e-9).all()
            assert (q >= stacked.min(axis=0) - 1e-9).all()


class TestAlgorithm2:
    @pytest.mark.parametrize("method", AGGREGATION_METHODS)
    def test_all_methods_run(self, method, setup):
        model, data = setup
        parts = partition_iid(data, 3, np.random.default_rng(0))
        headers = [make_header(seed=i) for i in range(3)]
        result = personalized_architecture_aggregation(
            model, headers, parts, num_rounds=1, method=method,
            importance_config=ImportanceConfig(max_batches_per_epoch=2),
        )
        assert len(result.headers) == 3
        assert result.weights.shape == (3, 3)
        assert len(result.rounds) == 1
        assert result.total_upload_bytes > 0

    def test_headers_are_pruned(self, setup):
        model, data = setup
        parts = partition_iid(data, 2, np.random.default_rng(0))
        headers = [make_header(seed=i) for i in range(2)]
        personalized_architecture_aggregation(
            model, headers, parts, num_rounds=1, keep_fraction=0.5,
            method="average",
            importance_config=ImportanceConfig(max_batches_per_epoch=2),
        )
        for h in headers:
            assert h.active_parameter_count() < h.parameter_count()

    def test_validation(self, setup):
        model, data = setup
        with pytest.raises(ValueError):
            personalized_architecture_aggregation(model, [make_header()], [], num_rounds=1)
        parts = partition_iid(data, 1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            personalized_architecture_aggregation(
                model, [make_header()], parts, num_rounds=0
            )
