"""Header architecture search (Phase 2-1) in isolation.

Runs the ENAS-style loop — LSTM controller, shared-parameter pool,
REINFORCE with a moving-average baseline — and compares the derived header
against the fixed designs on the same backbone.

Run:  python examples/header_search.py
"""

import numpy as np

from repro.core.nas import HeaderSearch, NASConfig
from repro.data import make_cifar100_like
from repro.models import ViTConfig, VisionTransformer, build_fixed_header
from repro.train import TrainConfig, evaluate_header, train_header, train_model


def main() -> None:
    generator = make_cifar100_like(num_classes=8, image_size=16)
    train_data = generator.generate(samples_per_class=30, seed=1)
    test_data = generator.generate(samples_per_class=10, seed=2)

    config = ViTConfig(num_classes=8, embed_dim=32, depth=4, num_heads=4)
    backbone = VisionTransformer(config, seed=0)
    print("pretraining the backbone ...")
    train_model(backbone, train_data, TrainConfig(epochs=3, seed=0))

    print("searching a header architecture (B=3 blocks) ...")
    search = HeaderSearch(
        backbone,
        num_classes=8,
        config=NASConfig(
            num_blocks=3,
            search_epochs=3,
            children_per_epoch=3,
            shared_steps_per_child=2,
            controller_updates_per_epoch=3,
            derive_samples=5,
            train_backbone=False,
            seed=0,
        ),
    )
    result = search.search(train_data)
    print(f"  reward history: {[round(r, 3) for r in result.reward_history]}")
    print(f"  derived spec (input1,input2,op1,op2 per block): "
          f"{result.spec.to_sequence()}")

    header = search.materialize_header(result.spec)
    train_header(backbone, header, train_data, TrainConfig(epochs=3, seed=0))
    nas_acc = evaluate_header(backbone, header, test_data)["accuracy"]

    print("\ncomparison against fixed header designs:")
    for kind in ("linear", "mlp", "cnn"):
        fixed = build_fixed_header(kind, config.embed_dim, config.num_patches, 8)
        train_header(backbone, fixed, train_data, TrainConfig(epochs=3, seed=0))
        acc = evaluate_header(backbone, fixed, test_data)["accuracy"]
        print(f"  {kind:>8}: {acc:.3f}")
    print(f"  {'NAS':>8}: {nas_acc:.3f}  (searched)")


if __name__ == "__main__":
    main()
