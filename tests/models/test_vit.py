"""Tests for the width/depth-scalable Vision Transformer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import ViTConfig, VisionTransformer
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(21)


def small_config(**overrides):
    defaults = dict(
        image_size=8, patch_size=4, embed_dim=16, depth=3, num_heads=4, num_classes=5
    )
    defaults.update(overrides)
    return ViTConfig(**defaults)


def images(n=2, config=None):
    config = config or small_config()
    return Tensor(RNG.normal(size=(n, config.channels, config.image_size, config.image_size)))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ViTConfig(image_size=10, patch_size=4)
        with pytest.raises(ValueError):
            ViTConfig(embed_dim=30, num_heads=4)

    def test_num_patches(self):
        assert small_config().num_patches == 4
        assert ViTConfig(image_size=16, patch_size=4).num_patches == 16

    def test_zeta_formula(self):
        """ζ(θ) = d·w·(H + 2·ξ_h·ξ_f) exactly."""
        cfg = small_config()
        h = 4 * cfg.embed_dim**2 + 4 * cfg.embed_dim
        expected = 2 * 0.5 * (h + 2 * cfg.embed_dim * cfg.mlp_hidden)
        assert cfg.zeta(0.5, 2) == pytest.approx(expected)

    def test_zeta_validation(self):
        cfg = small_config()
        with pytest.raises(ValueError):
            cfg.zeta(0.0, 1)
        with pytest.raises(ValueError):
            cfg.zeta(0.5, 0)
        with pytest.raises(ValueError):
            cfg.zeta(0.5, cfg.depth + 1)


class TestForward:
    def test_logits_shape(self):
        cfg = small_config()
        model = VisionTransformer(cfg, seed=0)
        assert model(images(3, cfg)).shape == (3, 5)

    def test_forward_features_shapes(self):
        cfg = small_config()
        model = VisionTransformer(cfg, seed=0)
        cls, tokens = model.forward_features(images(2, cfg))
        assert cls.shape == (2, 16)
        assert tokens.shape == (2, 4, 16)

    def test_forward_features_multi(self):
        cfg = small_config()
        model = VisionTransformer(cfg, seed=0)
        cls, tokens, penult = model.forward_features_multi(images(2, cfg))
        assert penult.shape == tokens.shape
        assert not np.allclose(penult.data, tokens.data)

    def test_accepts_plain_arrays(self):
        cfg = small_config()
        model = VisionTransformer(cfg, seed=0)
        out = model(RNG.normal(size=(1, 3, 8, 8)))
        assert out.shape == (1, 5)

    def test_gradients_reach_patch_embedding(self):
        cfg = small_config()
        model = VisionTransformer(cfg, seed=0)
        model(images(2, cfg)).sum().backward()
        assert model.patch_embed.proj.weight.grad is not None
        assert model.cls_token.grad is not None
        assert model.pos_embed.grad is not None


class TestScaling:
    def test_width_changes_output(self):
        cfg = small_config()
        model = VisionTransformer(cfg, seed=0)
        x = images(2, cfg)
        full = model(x).data.copy()
        model.set_width(0.5)
        assert not np.allclose(full, model(x).data)
        assert model.width == 0.5

    def test_depth_changes_output(self):
        cfg = small_config()
        model = VisionTransformer(cfg, seed=0)
        x = images(2, cfg)
        full = model(x).data.copy()
        model.set_depth(1)
        assert not np.allclose(full, model(x).data)
        assert model.depth == 1

    def test_scale_chains(self):
        model = VisionTransformer(small_config(), seed=0)
        assert model.scale(0.5, 2) is model
        assert model.zeta() == model.config.zeta(0.5, 2)

    def test_width_validation(self):
        model = VisionTransformer(small_config(), seed=0)
        with pytest.raises(ValueError):
            model.set_width(0.0)
        with pytest.raises(ValueError):
            model.set_width(1.5)

    def test_importance_orders_control_pruning(self):
        cfg = small_config()
        model = VisionTransformer(cfg, seed=0)
        # Rank head 3 most important in every layer → at w=0.25 only head 3
        # survives.
        orders = [np.array([3, 2, 1, 0])] * cfg.depth
        model.set_importance_orders(head_orders=orders)
        model.set_width(0.25)
        for layer in model.encoder.layers:
            np.testing.assert_array_equal(
                layer.attn.head_mask, [False, False, False, True]
            )

    def test_importance_order_validation(self):
        model = VisionTransformer(small_config(), seed=0)
        with pytest.raises(ValueError):
            model.set_importance_orders(head_orders=[np.arange(4)])  # wrong count

    def test_restore_full_configuration(self):
        cfg = small_config()
        model = VisionTransformer(cfg, seed=0)
        x = images(2, cfg)
        full = model(x).data.copy()
        model.scale(0.25, 1)
        model.scale(1.0, cfg.depth)
        np.testing.assert_allclose(model(x).data, full)


class TestMaterialize:
    def test_materialized_matches_masked_sizes(self):
        cfg = small_config()
        model = VisionTransformer(cfg, seed=0)
        model.scale(0.5, 2)
        small = model.materialize()
        assert small.config.num_heads == 2
        assert small.config.depth == 2
        assert small.num_parameters() < model.num_parameters()

    def test_materialized_output_shape(self):
        cfg = small_config()
        model = VisionTransformer(cfg, seed=0)
        model.scale(0.5, 2)
        small = model.materialize()
        assert small(images(2, cfg)).shape == (2, 5)

    def test_full_width_materialization_preserves_logits(self):
        """At w=1, d=max the materialized copy is numerically identical."""
        cfg = small_config()
        model = VisionTransformer(cfg, seed=0)
        small = model.materialize()
        x = images(2, cfg)
        np.testing.assert_allclose(small(x).data, model(x).data, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from([0.25, 0.5, 0.75, 1.0]),
    st.integers(1, 3),
)
def test_property_zeta_monotone(width, depth):
    cfg = ViTConfig(image_size=8, patch_size=4, embed_dim=16, depth=3, num_heads=4)
    base = cfg.zeta(width, depth)
    if width < 1.0:
        assert cfg.zeta(min(1.0, width + 0.25), depth) > base
    if depth < 3:
        assert cfg.zeta(width, depth + 1) > base
