"""Device-side importance sets for header parameters (Eqs. 16-18).

Each device receives the coarse header from its edge server, trains it
briefly on local data with the backbone frozen, and quantifies every header
parameter by the first-order Taylor estimate of the error its removal
would introduce:

.. math:: Q^{(1)}_{n,r} = (g_{n,r} · υ^H_{n,r})²,\\qquad g_{n,r} = ∂L_n/∂υ^H_{n,r}

Importances are accumulated over mini-batches (the paper computes them
"every minibatch", Fig. 6a) and averaged, producing the importance set
``Q_n`` uploaded to the edge server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.importance import header_parameter_importance
from repro.data.dataset import ArrayDataset, DataLoader
from repro.models.header_dag import DAGHeader
from repro.models.headers import BackboneFeatures
from repro.models.vit import VisionTransformer
from repro.nn import functional as F
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


@dataclass
class ImportanceConfig:
    """Local-training hyperparameters for importance estimation."""

    epochs: int = 1
    batch_size: int = 16
    lr: float = 1e-3
    max_batches_per_epoch: int = 8
    seed: int = 0


def compute_importance_set(
    backbone: VisionTransformer,
    header: DAGHeader,
    dataset: ArrayDataset,
    config: Optional[ImportanceConfig] = None,
    train: bool = True,
) -> np.ndarray:
    """Train the header locally and return its importance set ``Q_n``.

    The backbone is used frozen (features detached), matching §III-D:
    "freezing the backbone architecture and its parameters, training the
    header using local private dataset, and generating an importance set".

    Parameters
    ----------
    train:
        When False, skips optimizer updates and only accumulates
        importances (useful for re-scoring an already-trained header).

    Returns
    -------
    numpy.ndarray
        Flat array with one importance per header parameter, aligned with
        ``header.parameter_vector()``.
    """
    config = config or ImportanceConfig()
    rng = np.random.default_rng(config.seed)
    params = header.parameters()
    optimizer = Adam(params, lr=config.lr) if train else None

    accumulated = np.zeros(header.parameter_count())
    batches_seen = 0

    loader = DataLoader(dataset, batch_size=config.batch_size, shuffle=True, rng=rng)
    for _epoch in range(config.epochs):
        for batch_idx, (images, labels) in enumerate(loader):
            if batch_idx >= config.max_batches_per_epoch:
                break
            cls, tokens, penult = backbone.forward_features_multi(Tensor(images))
            features = BackboneFeatures(cls.detach(), tokens.detach(), penult.detach())
            logits = header(features)
            loss = F.cross_entropy(logits, labels)
            # Buffer-reuse mode: each batch's backward accumulates into
            # the previous batch's grad arrays instead of fresh ones.
            header.zero_grad(reuse_buffers=True)
            loss.backward()

            # Eq. (17)-(18): per-parameter (g · υ)², accumulated per batch.
            grads = np.concatenate(
                [
                    (p.grad if p.grad is not None else np.zeros_like(p.data)).reshape(-1)
                    for p in params
                ]
            )
            values = np.concatenate([p.data.reshape(-1) for p in params])
            accumulated += header_parameter_importance(grads, values)
            batches_seen += 1

            if optimizer is not None:
                optimizer.step()
                header.reapply_mask()

    if batches_seen == 0:
        raise ValueError("dataset produced no batches for importance estimation")
    return accumulated / batches_seen


def prune_by_importance(
    header: DAGHeader,
    importance: np.ndarray,
    keep_fraction: float,
    protect_classifier: bool = True,
) -> np.ndarray:
    """Discard the least-important header parameters (Algorithm 2 line 11).

    Parameters
    ----------
    keep_fraction:
        Fraction of prunable parameters to keep (by descending importance).
    protect_classifier:
        Keep the classifier sub-module intact: pruning the final projection
        rows would disconnect output classes entirely.

    Returns
    -------
    numpy.ndarray
        The boolean keep-mask that was applied.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    importance = np.asarray(importance, dtype=np.float64)
    if importance.shape != (header.parameter_count(),):
        raise ValueError(
            f"importance length {importance.shape} != parameter count "
            f"{header.parameter_count()}"
        )

    protected = np.zeros_like(importance, dtype=bool)
    if protect_classifier:
        offset = 0
        for name, p in header._unique_named_parameters():
            if name.startswith("classifier"):
                protected[offset : offset + p.size] = True
            offset += p.size

    prunable = np.flatnonzero(~protected)
    keep_count = int(round(keep_fraction * prunable.size))
    keep = protected.copy()
    if keep_count > 0:
        order = prunable[np.argsort(-importance[prunable], kind="stable")]
        keep[order[:keep_count]] = True
    header.set_parameter_mask(keep)
    return keep
