"""Suite-wide fixtures: deterministic engine state for every test.

The autouse fixture makes each test start from the same engine state
(fallback-init stream at seed 0, float64, grad on, cold caches), so the
suite is order-independent: tests that build unseeded modules draw from
a freshly reset stream instead of inheriting whatever position the
previous test left it at.  This is what keeps the suite safe under
random test ordering without requiring ``-p no:randomly``.
"""

import pytest

from tests.helpers import reset_engine_state


@pytest.fixture(autouse=True)
def _deterministic_engine_state():
    reset_engine_state()
    yield
