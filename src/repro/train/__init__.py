"""Training and evaluation loops."""

from repro.train.evaluate import evaluate_header, evaluate_model
from repro.train.trainer import TrainConfig, TrainReport, train_header, train_model

__all__ = [
    "TrainConfig",
    "TrainReport",
    "evaluate_header",
    "evaluate_model",
    "train_header",
    "train_model",
]
