"""Tests for Wasserstein/JS similarity (Eqs. 19-20, Fig. 10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import (
    build_similarity_matrix,
    distance_matrix,
    extract_features,
    js_divergence,
    regularize_similarity,
    similarity_from_distances,
    sliced_wasserstein,
)

RNG = np.random.default_rng(71)


class TestSlicedWasserstein:
    def test_zero_for_identical(self):
        a = RNG.normal(size=(30, 4))
        assert sliced_wasserstein(a, a.copy()) == pytest.approx(0.0, abs=1e-10)

    def test_detects_mean_shift(self):
        a = RNG.normal(size=(100, 4))
        b = a + 3.0
        assert sliced_wasserstein(a, b) > 1.0

    def test_symmetry(self):
        a = RNG.normal(size=(40, 3))
        b = RNG.normal(size=(40, 3)) + 1.0
        ab = sliced_wasserstein(a, b, seed=5)
        ba = sliced_wasserstein(b, a, seed=5)
        assert ab == pytest.approx(ba, rel=1e-9)

    def test_monotone_in_shift(self):
        a = RNG.normal(size=(80, 3))
        near = sliced_wasserstein(a, a + 0.5, seed=1)
        far = sliced_wasserstein(a, a + 2.0, seed=1)
        assert far > near

    def test_1d_matches_scipy_exactly(self):
        from scipy.stats import wasserstein_distance

        a = RNG.normal(size=(50, 1))
        b = RNG.normal(size=(50, 1)) + 1.0
        ours = sliced_wasserstein(a, b, num_projections=8, seed=0)
        # In 1-D every unit projection is ±identity; distance is unchanged.
        exact = wasserstein_distance(a[:, 0], b[:, 0])
        assert ours == pytest.approx(exact, rel=1e-9)

    def test_p2_supported(self):
        a = RNG.normal(size=(30, 2))
        assert sliced_wasserstein(a, a + 1.0, p=2) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            sliced_wasserstein(np.zeros((3, 2)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            sliced_wasserstein(np.zeros((3, 2)), np.zeros((3, 2)), p=0)


class TestJSDivergence:
    def test_zero_for_identical(self):
        a = RNG.normal(size=(50, 3))
        assert js_divergence(a, a.copy()) == pytest.approx(0.0, abs=1e-9)

    def test_bounded_by_log2(self):
        a = RNG.normal(size=(50, 3))
        b = RNG.normal(size=(50, 3)) + 100.0
        assert 0 <= js_divergence(a, b) <= np.log(2) + 1e-9

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            js_divergence(np.zeros((3, 2)), np.zeros((3, 4)))


class TestSimilarityMatrices:
    def test_distance_matrix_properties(self):
        feats = [RNG.normal(size=(20, 3)) + i for i in range(4)]
        d = distance_matrix(feats, metric="wasserstein")
        assert d.shape == (4, 4)
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0)

    def test_distance_matrix_needs_two(self):
        with pytest.raises(ValueError):
            distance_matrix([np.zeros((5, 2))])

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            distance_matrix([np.zeros((5, 2))] * 2, metric="cosine")

    def test_eq19_similarity(self):
        d = np.array([[0.0, 1.0], [1.0, 0.0]])
        s = similarity_from_distances(d)
        np.testing.assert_allclose(s, [[1.0, 0.5], [0.5, 1.0]])

    def test_similarity_rejects_negative(self):
        with pytest.raises(ValueError):
            similarity_from_distances(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_regularized_is_row_stochastic(self):
        s = similarity_from_distances(RNG.random((5, 5)))
        w = regularize_similarity(s)
        np.testing.assert_allclose(w.sum(axis=1), 1.0)
        assert (w > 0).all()

    def test_regularize_validation(self):
        with pytest.raises(ValueError):
            regularize_similarity(np.zeros((2, 3)))

    def test_similar_devices_weighted_higher(self):
        """Fig. 10's premise: same-distribution devices get higher weights."""
        base = RNG.normal(size=(60, 4))
        feats = [
            base + RNG.normal(scale=0.05, size=base.shape),
            base + RNG.normal(scale=0.05, size=base.shape),
            base + 5.0,
        ]
        w = regularize_similarity(
            similarity_from_distances(distance_matrix(feats, metric="wasserstein"))
        )
        assert w[0, 1] > w[0, 2]
        assert w[1, 0] > w[1, 2]


class TestEndToEnd:
    def test_fig10_block_structure(self):
        """Planted 2-group layout: Wasserstein similarity on *pretrained*
        features recovers the block structure (the Fig. 10 heatmap)."""
        from repro.data import make_cifar100_like, partition_two_groups
        from repro.models import ViTConfig, VisionTransformer
        from repro.train import TrainConfig, train_model

        gen = make_cifar100_like(num_classes=8, image_size=8)
        data = gen.generate(samples_per_class=30, seed=2)
        devices = partition_two_groups(data, (3, 2), np.random.default_rng(0))
        cfg = ViTConfig(image_size=8, patch_size=4, embed_dim=16, depth=2,
                        num_heads=4, num_classes=8)
        model = VisionTransformer(cfg, seed=0)
        train_model(model, data, TrainConfig(epochs=3, seed=0))

        def block_contrast(metric):
            w = build_similarity_matrix(model, devices, metric=metric, max_samples=24)
            same = [w[i, j] for i in range(3) for j in range(3) if i != j]
            same += [w[i, j] for i in (3, 4) for j in (3, 4) if i != j]
            cross = [w[i, j] for i in range(3) for j in (3, 4)]
            cross += [w[i, j] for i in (3, 4) for j in range(3)]
            return np.mean(same) - np.mean(cross)

        assert block_contrast("wasserstein") > 0

    def test_extract_features_shape(self):
        from repro.data import make_cifar100_like
        from repro.models import ViTConfig, VisionTransformer

        gen = make_cifar100_like(num_classes=4, image_size=8)
        data = gen.generate(samples_per_class=10, seed=1)
        cfg = ViTConfig(image_size=8, patch_size=4, embed_dim=16, depth=2,
                        num_heads=4, num_classes=4)
        model = VisionTransformer(cfg, seed=0)
        feats = extract_features(model, data, max_samples=12)
        assert feats.shape == (12, 16)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 5))
def test_property_regularized_rows_sum_to_one(n):
    rng = np.random.default_rng(n)
    s = similarity_from_distances(np.abs(rng.normal(size=(n, n))))
    w = regularize_similarity(s)
    np.testing.assert_allclose(w.sum(axis=1), np.ones(n), atol=1e-9)
