"""Equivalence tests: vectorized similarity kernels vs the loop references."""

import numpy as np
import pytest

from repro.core import similarity
from repro.core.similarity import (
    _js_divergence_loop,
    _sample_projections,
    _sliced_wasserstein_loop,
    distance_matrix,
    js_divergence,
    sliced_wasserstein,
)

RNG = np.random.default_rng(42)


@pytest.fixture(autouse=True)
def _vectorized_on():
    yield
    similarity.set_vectorized(True)


class TestSlicedWassersteinEquivalence:
    @pytest.mark.parametrize("shape_b", [(60, 5), (41, 5)])
    def test_matches_loop_p1(self, shape_b):
        a = RNG.normal(size=(60, 5))
        b = RNG.normal(size=shape_b) + 0.8
        fast = sliced_wasserstein(a, b, seed=3)
        loop = _sliced_wasserstein_loop(a, b, seed=3)
        assert fast == pytest.approx(loop, rel=1e-9)

    def test_matches_loop_p2(self):
        a = RNG.normal(size=(30, 4))
        b = RNG.normal(size=(30, 4)) * 2.0
        fast = sliced_wasserstein(a, b, p=2, seed=5)
        loop = _sliced_wasserstein_loop(a, b, p=2, seed=5)
        assert fast == pytest.approx(loop, rel=1e-9)

    def test_shared_projections_equal_seeded_sampling(self):
        a = RNG.normal(size=(25, 6))
        b = RNG.normal(size=(25, 6)) + 1.0
        projections = _sample_projections(6, 32, np.random.default_rng(7))
        via_seed = sliced_wasserstein(a, b, seed=7)
        via_projections = sliced_wasserstein(a, b, projections=projections)
        assert via_seed == pytest.approx(via_projections, rel=1e-12)

    def test_set_vectorized_false_uses_loop(self):
        a = RNG.normal(size=(20, 3))
        b = RNG.normal(size=(20, 3)) + 0.5
        similarity.set_vectorized(False)
        slow = sliced_wasserstein(a, b, seed=1)
        similarity.set_vectorized(True)
        fast = sliced_wasserstein(a, b, seed=1)
        assert slow == pytest.approx(fast, rel=1e-9)


class TestJSDivergenceEquivalence:
    def test_matches_loop(self):
        a = RNG.normal(size=(50, 7))
        b = RNG.normal(size=(50, 7)) + 0.4
        assert js_divergence(a, b) == pytest.approx(_js_divergence_loop(a, b), rel=1e-9)

    def test_matches_loop_constant_dim(self):
        """A zero-spread dimension is skipped by both implementations."""
        a = RNG.normal(size=(30, 3))
        b = RNG.normal(size=(30, 3))
        a[:, 1] = 2.0
        b[:, 1] = 2.0
        assert js_divergence(a, b) == pytest.approx(_js_divergence_loop(a, b), rel=1e-9)

    def test_matches_loop_other_bins(self):
        a = RNG.normal(size=(40, 4))
        b = RNG.normal(size=(40, 4)) * 1.5
        assert js_divergence(a, b, bins=8) == pytest.approx(
            _js_divergence_loop(a, b, bins=8), rel=1e-9
        )


class TestDistanceMatrixEquivalence:
    def test_hoisted_projections_match_per_pair_loop(self):
        """The shared-projection vectorized matrix equals the seed behavior
        (every pair re-seeding the same generator)."""
        feats = [RNG.normal(size=(24, 5)) + 0.5 * i for i in range(5)]
        fast = distance_matrix(feats, metric="wasserstein", seed=9)
        similarity.set_vectorized(False)
        loop = distance_matrix(feats, metric="wasserstein", seed=9)
        np.testing.assert_allclose(fast, loop, rtol=1e-9, atol=1e-12)

    def test_mixed_sample_counts(self):
        feats = [
            RNG.normal(size=(20, 4)),
            RNG.normal(size=(33, 4)) + 1.0,
            RNG.normal(size=(27, 4)) - 0.5,
        ]
        fast = distance_matrix(feats, seed=2)
        similarity.set_vectorized(False)
        loop = distance_matrix(feats, seed=2)
        np.testing.assert_allclose(fast, loop, rtol=1e-9, atol=1e-12)

    def test_js_metric_matches(self):
        feats = [RNG.normal(size=(30, 3)) + i for i in range(4)]
        fast = distance_matrix(feats, metric="js")
        similarity.set_vectorized(False)
        loop = distance_matrix(feats, metric="js")
        np.testing.assert_allclose(fast, loop, rtol=1e-9, atol=1e-12)

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            distance_matrix([np.zeros((5, 2)), np.zeros((5, 3))])

    def test_float32_inputs_accepted(self):
        """Wire-format float32 feature samples work and match float64."""
        feats64 = [RNG.normal(size=(16, 4)) + i for i in range(3)]
        feats32 = [f.astype(np.float32) for f in feats64]
        d64 = distance_matrix(feats64, seed=0)
        d32 = distance_matrix(feats32, seed=0)
        np.testing.assert_allclose(d64, d32, atol=1e-5)
