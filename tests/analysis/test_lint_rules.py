"""reprolint rule catalogue: every rule's fixtures, suppression mechanics.

Each rule in :data:`repro.analysis.rules.RULES` carries a ``must_flag``
and a ``must_pass`` source fixture; these tests replay them through the
real lint driver (the same check ``lint --self-test`` runs in CI) so a
rule that silently stops firing fails loudly.  The suppression tests pin
the comment grammar: trailing vs. standalone anchoring, multi-line
comment blocks, SUP001/SUP002/SUP003 enforcement.
"""

import subprocess
import sys

import pytest

from repro.analysis.lint import lint_source, self_test
from repro.analysis.rules import RULES, rule_tokens

RULE_IDS = [rule.id for rule in RULES]


@pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
def test_must_flag_fixture_fires(rule):
    findings = lint_source(rule.must_flag, rel=rule.snippet_rel)
    assert any(f.rule == rule.id for f in findings), (
        f"{rule.id} must-flag fixture produced no finding"
    )
    unrelated = [f.rule for f in findings if f.rule != rule.id]
    assert not unrelated, f"{rule.id} fixture leaked other findings: {unrelated}"


@pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
def test_must_pass_fixture_is_clean(rule):
    findings = lint_source(rule.must_pass, rel=rule.snippet_rel)
    assert not findings, [f.render() for f in findings]


@pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
def test_suppression_absorbs_each_rule(rule):
    """A correctly anchored, justified suppression silences every rule."""
    flagged = [
        f for f in lint_source(rule.must_flag, rel=rule.snippet_rel)
        if f.rule == rule.id
    ]
    lines = rule.must_flag.splitlines()
    for finding in flagged:
        lines[finding.line - 1] += (
            f"  # reprolint: {rule.token} -- fixture-level justification"
        )
    suppressed = lint_source("\n".join(lines) + "\n", rel=rule.snippet_rel)
    assert not any(f.rule == rule.id for f in suppressed), (
        f"{rule.id} finding survived its own suppression token"
    )
    assert not any(f.rule == "SUP003" for f in suppressed)


def test_self_test_passes():
    assert self_test() == []


def test_rule_ids_and_tokens_unique():
    assert len(RULE_IDS) == len(set(RULE_IDS))
    tokens = [rule.token for rule in RULES]
    assert len(tokens) == len(set(tokens))
    assert rule_tokens() == frozenset(tokens)


# ---------------------------------------------------------------------------
# Suppression grammar
# ---------------------------------------------------------------------------
def test_standalone_suppression_binds_to_next_code_line():
    src = (
        "import time\n"
        "\n"
        "\n"
        "def f(m):\n"
        "    # reprolint: wallclock -- replayed timestamp, not wall time\n"
        "    m.at = time.time()\n"
    )
    assert lint_source(src, rel="repro/distributed/_s.py") == []


def test_standalone_suppression_skips_continuation_comments():
    """A suppression opening a multi-line comment block still binds to code."""
    src = (
        "import time\n"
        "\n"
        "\n"
        "def f(m):\n"
        "    # reprolint: wallclock -- replayed timestamp, not wall time\n"
        "    # (this continuation line elaborates on the justification)\n"
        "\n"
        "    m.at = time.time()\n"
    )
    assert lint_source(src, rel="repro/distributed/_s.py") == []


def test_missing_justification_is_sup001():
    src = "import time\n\n\ndef f(m):\n    m.at = time.time()  # reprolint: wallclock\n"
    findings = lint_source(src, rel="repro/distributed/_s.py")
    assert any(f.rule == "SUP001" for f in findings)


def test_unknown_token_is_sup002():
    src = "def f():\n    return 1  # reprolint: bogus-rule -- because\n"
    findings = lint_source(src, rel="repro/distributed/_s.py")
    assert any(f.rule == "SUP002" for f in findings)


def test_unused_suppression_is_sup003():
    src = "def f():\n    return 1  # reprolint: wallclock -- nothing here\n"
    findings = lint_source(src, rel="repro/distributed/_s.py")
    assert any(f.rule == "SUP003" for f in findings)


def test_suppression_in_string_literal_is_ignored():
    src = 'DOC = "# reprolint: wallclock -- not a comment"\n'
    assert lint_source(src, rel="repro/distributed/_s.py") == []


def test_syntax_error_is_parse001():
    findings = lint_source("def broken(:\n", rel="repro/distributed/_s.py")
    assert [f.rule for f in findings] == ["PARSE001"]


def test_protocol_rules_scope_to_protocol_paths():
    """DET003 fires under repro/distributed and repro/core, nowhere else."""
    src = "import time\n\n\ndef f(m):\n    m.at = time.time()\n"
    inside = lint_source(src, rel="repro/distributed/_s.py")
    assert any(f.rule == "DET003" for f in inside)
    outside = lint_source(src, rel="repro/train/_s.py")
    assert not any(f.rule == "DET003" for f in outside)


def test_cli_self_test_exits_zero():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", "--self-test", "-q"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
