"""Scale harness invariants: fleet shapes, lazy parity, determinism.

``repro.distributed.scale`` is the million-device synthetic campaign
driver behind ``benchmarks/bench_scale.py``.  These tests pin the parts
the bench itself cannot assert cheaply: the heavy-tailed cluster split
is exact and total, the lazy-LRU fleet observes the *same protocol* as
an always-live fleet (traffic, contributions, serving — everything but
the memory bill), and a campaign replays byte-identically from its seed.
"""

import numpy as np
import pytest

from repro.distributed.scale import (
    ScaleConfig,
    heavy_tailed_sizes,
    run_scale_campaign,
)


class TestHeavyTailedSizes:
    def test_exact_total_and_floor(self):
        sizes = heavy_tailed_sizes(1000, 8, exponent=1.2)
        assert sum(sizes) == 1000
        assert len(sizes) == 8
        assert min(sizes) >= 1

    def test_heavy_tail_is_monotone(self):
        sizes = heavy_tailed_sizes(10_000, 16, exponent=1.5)
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] > sizes[-1] * 3  # genuinely skewed

    def test_degenerate_counts(self):
        assert heavy_tailed_sizes(5, 5) == [1, 1, 1, 1, 1]
        assert heavy_tailed_sizes(7, 1) == [7]
        with pytest.raises(ValueError):
            heavy_tailed_sizes(3, 4)
        with pytest.raises(ValueError):
            heavy_tailed_sizes(3, 0)

    def test_deterministic(self):
        assert heavy_tailed_sizes(12_345, 7) == heavy_tailed_sizes(12_345, 7)


def _campaign_dict(**overrides):
    config = ScaleConfig(
        num_devices=120,
        num_clusters=3,
        rounds=2,
        lru_capacity=8,
        eval_requests=4,
        deadline_quantile=0.8,
        churn=0.05,
        drop=0.02,
        ledger="summary",
        seed=0,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return run_scale_campaign(config).to_dict()


#: Fields that may legitimately differ between runs or modes (wall
#: clock, memory instrumentation, LRU churn counters).
_VOLATILE = {
    "round_seconds",
    "devices_per_round_second",
    "serving_seconds",
    "requests_per_second",
    "peak_memory_mb",
    "hydrations",
    "evictions",
    "live_headers",
}


def _stable(report: dict) -> dict:
    return {k: v for k, v in report.items() if k not in _VOLATILE}


class TestCampaignProperties:
    def test_lazy_matches_always_live(self):
        """Same protocol either way: lazy eviction only changes memory."""
        lazy = _campaign_dict(always_live=False)
        live = _campaign_dict(always_live=True)
        assert _stable(lazy) == _stable(live)
        assert lazy["hydrations"] > 0  # the LRU actually cycled
        assert live["hydrations"] == 0

    def test_replay_determinism(self):
        assert _stable(_campaign_dict()) == _stable(_campaign_dict())

    def test_straggler_and_fault_accounting(self):
        report = _campaign_dict()
        assert report["contributions"] > 0
        assert report["stragglers"] > 0
        assert 0.0 < report["participation"] <= 1.0
        assert report["eval_requests_served"] > 0
        assert report["kind_counts"].get("importance_set", 0) > 0
        assert report["total_megabytes"] > 0.0
