"""Tests for fixed headers and the BackboneFeatures contract."""

import numpy as np
import pytest

from repro.models import (
    BackboneFeatures,
    FIXED_HEADERS,
    ViTConfig,
    VisionTransformer,
    build_fixed_header,
)
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(31)
EMBED, PATCHES, CLASSES = 16, 16, 5


def features(n=2):
    return BackboneFeatures(
        cls=Tensor(RNG.normal(size=(n, EMBED))),
        tokens=Tensor(RNG.normal(size=(n, PATCHES, EMBED))),
        penultimate=Tensor(RNG.normal(size=(n, PATCHES, EMBED))),
    )


class TestBackboneFeatures:
    def test_grid_size(self):
        assert features().grid_size == 4

    def test_non_square_grid_rejected(self):
        bad = BackboneFeatures(
            cls=Tensor(RNG.normal(size=(1, EMBED))),
            tokens=Tensor(RNG.normal(size=(1, 7, EMBED))),
            penultimate=Tensor(RNG.normal(size=(1, 7, EMBED))),
        )
        with pytest.raises(ValueError):
            bad.grid_size

    def test_tokens_as_map_layout(self):
        f = features(1)
        m = f.tokens_as_map()
        assert m.shape == (1, EMBED, 4, 4)
        # Token t maps to spatial position (t // 4, t % 4).
        np.testing.assert_allclose(m.data[0, :, 0, 1], f.tokens.data[0, 1])

    def test_penultimate_source(self):
        f = features(1)
        m = f.tokens_as_map("penultimate")
        np.testing.assert_allclose(m.data[0, :, 0, 0], f.penultimate.data[0, 0])

    def test_from_real_backbone(self):
        cfg = ViTConfig(image_size=8, patch_size=2, embed_dim=EMBED, depth=2,
                        num_heads=4, num_classes=CLASSES)
        model = VisionTransformer(cfg, seed=0)
        cls, tokens, penult = model.forward_features_multi(
            Tensor(RNG.normal(size=(2, 3, 8, 8)))
        )
        f = BackboneFeatures(cls, tokens, penult)
        assert f.grid_size == 4


class TestFixedHeaders:
    @pytest.mark.parametrize("kind", sorted(FIXED_HEADERS))
    def test_output_shape(self, kind):
        header = build_fixed_header(kind, EMBED, PATCHES, CLASSES)
        assert header(features(3)).shape == (3, CLASSES)

    @pytest.mark.parametrize("kind", sorted(FIXED_HEADERS))
    def test_trainable(self, kind):
        header = build_fixed_header(kind, EMBED, PATCHES, CLASSES)
        out = header(features(2))
        out.sum().backward()
        grads = [p.grad for p in header.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_fixed_header("transformer-xxl", EMBED, PATCHES, CLASSES)

    def test_relative_sizes(self):
        """CNN-style headers are bigger than Linear — the Fig. 8 premise."""
        linear = build_fixed_header("linear", EMBED, PATCHES, CLASSES)
        cnn = build_fixed_header("cnn", EMBED, PATCHES, CLASSES)
        mlp = build_fixed_header("mlp", EMBED, PATCHES, CLASSES)
        assert linear.num_parameters() < mlp.num_parameters() < cnn.num_parameters()

    def test_linear_header_uses_only_cls(self):
        header = build_fixed_header("linear", EMBED, PATCHES, CLASSES)
        f1 = features(1)
        f2 = BackboneFeatures(
            cls=f1.cls,
            tokens=Tensor(RNG.normal(size=(1, PATCHES, EMBED))),
            penultimate=f1.penultimate,
        )
        np.testing.assert_allclose(header(f1).data, header(f2).data)

    def test_pool_header_ignores_cls(self):
        header = build_fixed_header("pool", EMBED, PATCHES, CLASSES)
        f1 = features(1)
        f2 = BackboneFeatures(
            cls=Tensor(RNG.normal(size=(1, EMBED))),
            tokens=f1.tokens,
            penultimate=f1.penultimate,
        )
        np.testing.assert_allclose(header(f1).data, header(f2).data)

    def test_hybrid_uses_both(self):
        header = build_fixed_header("hybrid", EMBED, PATCHES, CLASSES)
        f1 = features(1)
        other_cls = BackboneFeatures(
            cls=Tensor(RNG.normal(size=(1, EMBED))),
            tokens=f1.tokens,
            penultimate=f1.penultimate,
        )
        assert not np.allclose(header(f1).data, header(other_cls).data)
