"""ACME core algorithms: Phase 1 (backbone) and Phase 2 (header) customization."""

from repro.core.aggregation import (
    AGGREGATION_METHODS,
    AggregationResult,
    aggregate_importance_sets,
    aggregation_weights,
    personalized_architecture_aggregation,
)
from repro.core.controller import (
    ArchitectureController,
    MovingAverageBaseline,
    SampledArchitecture,
)
from repro.core.distill import DistillConfig, DistillReport, distill
from repro.core.header_importance import (
    ImportanceConfig,
    compute_importance_set,
    prune_by_importance,
)
from repro.core.importance import (
    BackboneImportance,
    estimate_backbone_importance,
    header_parameter_importance,
)
from repro.core.matching import (
    GreedyAccuracyMatcher,
    GreedySizeMatcher,
    MatchResult,
    MatchingPolicy,
    PFGMatcher,
    RandomMatcher,
    make_policies,
    trade_off_score,
)
from repro.core.nas import HeaderSearch, NASConfig, SearchResult, SharedOpPool
from repro.core.pareto import (
    Candidate,
    ParetoFrontGrid,
    build_pfg,
    dominates,
    grid_coordinates,
    pareto_front,
    pfg_members,
    select_model,
)
from repro.core.search_space import (
    SearchSpaceAccounting,
    header_search_space_size,
    table1_search_space_row,
)
from repro.core.segmentation import (
    BackboneGenerationResult,
    clone_model,
    generate_backbone,
)
from repro.core.similarity import (
    build_similarity_matrix,
    distance_matrix,
    extract_features,
    js_divergence,
    regularize_similarity,
    similarity_from_distances,
    sliced_wasserstein,
)

__all__ = [
    "AGGREGATION_METHODS",
    "AggregationResult",
    "ArchitectureController",
    "BackboneGenerationResult",
    "BackboneImportance",
    "Candidate",
    "DistillConfig",
    "DistillReport",
    "GreedyAccuracyMatcher",
    "GreedySizeMatcher",
    "HeaderSearch",
    "ImportanceConfig",
    "MatchResult",
    "MatchingPolicy",
    "MovingAverageBaseline",
    "NASConfig",
    "PFGMatcher",
    "ParetoFrontGrid",
    "RandomMatcher",
    "SampledArchitecture",
    "SearchResult",
    "SearchSpaceAccounting",
    "SharedOpPool",
    "aggregate_importance_sets",
    "aggregation_weights",
    "build_pfg",
    "build_similarity_matrix",
    "clone_model",
    "compute_importance_set",
    "distance_matrix",
    "distill",
    "dominates",
    "estimate_backbone_importance",
    "extract_features",
    "generate_backbone",
    "grid_coordinates",
    "header_parameter_importance",
    "header_search_space_size",
    "js_divergence",
    "make_policies",
    "pareto_front",
    "personalized_architecture_aggregation",
    "pfg_members",
    "prune_by_importance",
    "regularize_similarity",
    "select_model",
    "similarity_from_distances",
    "sliced_wasserstein",
    "table1_search_space_row",
    "trade_off_score",
]
